# Developer entry points.  `make verify` is the tier-1 gate; `make
# test-all` additionally runs the slow-marked golden regressions.

PY := PYTHONPATH=src python

.PHONY: verify test test-all bench bench-smoke lint goldens goldens-check reproduce trace-smoke chaos-smoke campaign-smoke dse-smoke fleet-smoke obs-smoke coverage clean-cache

verify: test

test:
	$(PY) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; pip install -e '.[dev]' to enable linting"; \
	fi

test-all:
	$(PY) -m pytest -x -q -m ""

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

# Tiny sweep-kernel benchmark (synthetic trace, sanity speedup bound)
# plus the bit-exactness suite it depends on; the CI companion of the
# full `pytest benchmarks/test_sweep_bench.py` run that writes
# BENCH_simulator.json (see docs/performance.md).
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PY) -m pytest benchmarks/test_sweep_bench.py -x -q
	$(PY) -m pytest tests/test_batchsim_equivalence.py -x -q

goldens:
	$(PY) -m repro.runtime.goldens --update

goldens-check:
	$(PY) -m repro.runtime.goldens --check

reproduce:
	$(PY) -m repro.experiments.runall --fast --jobs 4 --json report.json

# 30-second seeded chaos soak: the full service (process pools, shared
# trace store, result cache) under worker kills, shm unlinks and cache
# corruption, refereed by the differential oracle.  Fails on any
# silently wrong answer; the same --seed replays the identical fault
# schedule (see docs/testing.md).
chaos-smoke:
	$(PY) -m repro chaos --seed 42 --duration 30

# CI-sized fault-injection campaign: 16 runs of the canned MSR bit-flip
# faultload on two workers, then validate that the HTML report parses
# (see docs/campaigns.md).  Deterministic: --seed 42 replays the exact
# same faultloads and report bytes.
campaign-smoke:
	$(PY) -m repro campaign run --spec msr_bitflip_nginx --seed 42 \
		--samples 4 --jobs 2 --out campaign-smoke.out
	$(PY) -c "from html.parser import HTMLParser; \
		html = open('campaign-smoke.out/index.html').read(); \
		p = HTMLParser(); p.feed(html); p.close(); \
		print('campaign HTML ok (%d bytes)' % len(html))"
	@rm -rf campaign-smoke.out

# CI-sized design-space exploration: the canned 2-generation x
# 8-genome nginx search (NSGA-II over deadline/strategy/offset/corner/
# IMUL depth), then validate that the Pareto dashboard parses (see
# docs/dse.md).  Deterministic: same seed, same report bytes; finishes
# in about a second.
dse-smoke:
	$(PY) -m repro dse run --search nginx_quick --out dse-smoke.out
	$(PY) -c "from html.parser import HTMLParser; \
		html = open('dse-smoke.out/index.html').read(); \
		p = HTMLParser(); p.feed(html); p.close(); \
		print('dse HTML ok (%d bytes)' % len(html))"
	@rm -rf dse-smoke.out

# Chaos-over-fleet smoke: a 3-node in-process fleet behind the
# gateway, a 200-request burst sequence (8 bursts x 25 canonical
# requests), one node killed while its requests are in flight.  The
# differential oracle referees: the gateway must reroute with zero
# wrong answers — and, since simulations are pure, zero degraded ones
# (see docs/fleet.md).  Deterministic via --seed; runs in seconds.
fleet-smoke:
	$(PY) -m repro fleet soak --seed 42 --nodes 3 --requests 25 --bursts 8

# Observability smoke: a 2-node fleet drives 50 requests while the
# scraper samples windowed metrics; asserts a stitched multi-process
# trace (gateway -> node -> worker, time-aligned, no orphan spans), a
# windowed p95 diverging from the cumulative one, a burn-rate alert
# firing then resolving, and an html.parser-valid dashboard (see
# docs/observability.md).  Exit 1 on any failed check.
obs-smoke:
	$(PY) -m repro obs smoke --out obs-smoke.out
	@rm -rf obs-smoke.out

# Tier-1 suite with line coverage (requires pytest-cov: pip install
# -e '.[dev]').  CI enforces the floor; ratchet it upward, never down.
coverage:
	$(PY) -m pytest -x -q --cov=repro --cov-report=term --cov-fail-under=78

# Run a small experiment with execution tracing on and schema-check the
# resulting Chrome trace (see docs/observability.md).
trace-smoke:
	$(PY) -m repro trace fig15_strategies --out trace-smoke.json --validate
	@rm -f trace-smoke.json

clean-cache:
	$(PY) -c "from repro.runtime.cache import ResultCache; print(ResultCache().clear(), 'entries removed')"
