# Developer entry points.  `make verify` is the tier-1 gate; `make
# test-all` additionally runs the slow-marked golden regressions.

PY := PYTHONPATH=src python

.PHONY: verify test test-all bench bench-smoke lint goldens goldens-check reproduce trace-smoke clean-cache

verify: test

test:
	$(PY) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; pip install -e '.[dev]' to enable linting"; \
	fi

test-all:
	$(PY) -m pytest -x -q -m ""

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

# Tiny sweep-kernel benchmark (synthetic trace, sanity speedup bound)
# plus the bit-exactness suite it depends on; the CI companion of the
# full `pytest benchmarks/test_sweep_bench.py` run that writes
# BENCH_simulator.json (see docs/performance.md).
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PY) -m pytest benchmarks/test_sweep_bench.py -x -q
	$(PY) -m pytest tests/test_batchsim_equivalence.py -x -q

goldens:
	$(PY) -m repro.runtime.goldens --update

goldens-check:
	$(PY) -m repro.runtime.goldens --check

reproduce:
	$(PY) -m repro.experiments.runall --fast --jobs 4 --json report.json

# Run a small experiment with execution tracing on and schema-check the
# resulting Chrome trace (see docs/observability.md).
trace-smoke:
	$(PY) -m repro trace fig15_strategies --out trace-smoke.json --validate
	@rm -f trace-smoke.json

clean-cache:
	$(PY) -c "from repro.runtime.cache import ResultCache; print(ResultCache().clear(), 'entries removed')"
