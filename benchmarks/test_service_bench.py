"""Load-generator benchmark for the simulation service.

Open-loop load from 8 concurrent clients: each client fires its
requests on a fixed schedule (independent of completion times, as real
traffic does), mixed across the SPEC catalogue, CPUs and offsets.
Reports sustained RPS and p50/p95/p99 latency through
``benchmark.extra_info``, and asserts every client gets exactly one
correct response per request — zero lost, zero duplicated — which is
the acceptance bar for the serving layer.

Run with:
    pytest benchmarks/test_service_bench.py --benchmark-only -q
"""

import asyncio

from repro.service import ServiceConfig, SimRequest, SimulationService
from repro.workloads.spec import SPEC_PROFILES

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
#: Per-client injection rate; aggregate offered load is 8x this.
CLIENT_RPS = 25


def _client_population(client_id, n):
    """A mixed query population: SPEC workloads, 2 CPUs, 2 offsets."""
    names = sorted(SPEC_PROFILES)
    requests = []
    for i in range(n):
        k = client_id * n + i
        requests.append(SimRequest(
            cpu="C" if k % 2 else "A",
            workload=names[k % len(names)],
            voltage_offset=-0.097 if k % 4 < 2 else -0.07,
            seed=k,
        ))
    return requests


async def _client(service, client_id):
    """One open-loop client; returns its (requests, responses)."""
    loop = asyncio.get_running_loop()
    requests = _client_population(client_id, REQUESTS_PER_CLIENT)
    start = loop.time()
    tasks = []
    for i, request in enumerate(requests):
        delay = start + i / CLIENT_RPS - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(service.submit(request)))
    return requests, await asyncio.gather(*tasks)


def _run_load(config):
    """One full load run; returns (per-client outcomes, elapsed, metrics)."""
    async def scenario():
        async with SimulationService(config) as service:
            loop = asyncio.get_running_loop()
            start = loop.time()
            outcomes = await asyncio.gather(
                *[_client(service, c) for c in range(N_CLIENTS)])
            elapsed = loop.time() - start
            return outcomes, elapsed, service.metrics.snapshot()

    return asyncio.run(scenario())


def _assert_and_annotate(benchmark, outcomes, elapsed, snapshot):
    """Zero lost/duplicated responses + publish the latency profile."""
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    answered = 0
    for requests, responses in outcomes:
        assert len(responses) == len(requests)  # nothing lost
        for request, response in zip(requests, responses):
            assert response.ok, (response.status, response.error)
            assert response.request == request  # answers its own question
            answered += 1
    assert answered == total
    counters = snapshot["counters"]
    assert counters["requests_completed"] == total  # exactly once each
    latency = snapshot["histograms"]["latency_s"]
    benchmark.extra_info.update({
        "clients": N_CLIENTS,
        "sustained_rps": round(total / elapsed, 1),
        "p50_ms": None if latency["p50"] is None
        else round(latency["p50"] * 1e3, 2),
        "p95_ms": None if latency["p95"] is None
        else round(latency["p95"] * 1e3, 2),
        "p99_ms": None if latency["p99"] is None
        else round(latency["p99"] * 1e3, 2),
        "mean_batch_occupancy":
            snapshot["histograms"]["batch_occupancy"]["mean"],
        "batches": counters["batches_dispatched"],
    })


def test_service_open_loop_processes(benchmark):
    """8-client open-loop load on the real process tier (2 shards x 2)."""
    config = ServiceConfig(n_shards=2, workers_per_shard=2,
                           use_processes=True, max_queue_depth=256,
                           max_batch_size=8, batch_window_s=0.004)

    def run():
        outcomes, elapsed, snapshot = _run_load(config)
        _assert_and_annotate(benchmark, outcomes, elapsed, snapshot)
        return elapsed

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def test_service_open_loop_threads(benchmark):
    """Same 8-client load on thread workers: isolates service overhead."""
    config = ServiceConfig(n_shards=2, workers_per_shard=2,
                           use_processes=False, max_queue_depth=256,
                           max_batch_size=8, batch_window_s=0.004)

    def run():
        outcomes, elapsed, snapshot = _run_load(config)
        _assert_and_annotate(benchmark, outcomes, elapsed, snapshot)
        return elapsed

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
