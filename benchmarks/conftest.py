"""Benchmark harness configuration.

Each paper table/figure has a regeneration benchmark in
``test_experiments_bench.py`` (fast mode: trimmed workload sets), and the
core primitives have micro-benchmarks in ``test_micro_bench.py``.

Run with:
    pytest benchmarks/ --benchmark-only
"""
