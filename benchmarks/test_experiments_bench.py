"""One regeneration benchmark per paper table and figure.

Every benchmark reruns the corresponding experiment (fast mode where the
full run takes minutes) and sanity-checks a headline metric, so the
benchmark suite doubles as a reproduction smoke test:

    pytest benchmarks/ --benchmark-only
"""

import importlib

import pytest

_FAST = True


def _run_experiment(benchmark, module_name: str, fast: bool = _FAST):
    module = importlib.import_module(f"repro.experiments.{module_name}")
    return benchmark.pedantic(
        lambda: module.run(seed=0, fast=fast), rounds=1, iterations=1)


def test_table1_fault_characterization(benchmark):
    result = _run_experiment(benchmark, "table1_faults")
    assert result.metric("rank_correlation").measured > 0.9


def test_table2_undervolting_response(benchmark):
    result = _run_experiment(benchmark, "table2_undervolting")
    assert result.metric("i9-9900K.-97mV.eff").abs_error < 0.03


def test_table3_temperature_guardband(benchmark):
    result = _run_experiment(benchmark, "table3_temperature")
    assert result.metric("offset@1800rpm").abs_error < 0.005


def test_table4_nosimd_impact(benchmark):
    result = _run_experiment(benchmark, "table4_nosimd")
    assert result.metric("i9-9900K.fprate").abs_error < 0.02


def test_table6_main_evaluation_cpu_c(benchmark):
    """The Table 6 C.fV row group (full table: runall without --fast)."""
    from repro.experiments.table6_main import evaluate_config

    def run():
        return evaluate_config("C.fV", "C", 1, "fV", -0.097, fast=True)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cells.cells["eff"]["SPECnoSIMD"] > 0.10


def test_table7_parameter_search(benchmark):
    result = _run_experiment(benchmark, "table7_parameters")
    assert result.metric("intel.p_dl").measured <= 120e-6


def test_table8_nosimd_vs_suit(benchmark):
    result = _run_experiment(benchmark, "table8_nosimd_vs_suit")
    assert result.lines  # produced the comparison rows


def test_fig2_guardband_decomposition(benchmark):
    result = _run_experiment(benchmark, "fig2_guardbands")
    assert result.metric("offset_combined").abs_error < 0.002


def test_fig5_burst_detail(benchmark):
    result = _run_experiment(benchmark, "fig5_burst_detail")
    assert result.metric("exceptions").measured == 1.0


def test_fig6_fv_timeline(benchmark):
    result = _run_experiment(benchmark, "fig6_fv_timeline")
    assert result.metric("fig6_sequence_observed").measured == 1.0


def test_fig7_vlc_gap_timeline(benchmark):
    result = _run_experiment(benchmark, "fig7_vlc_timeline")
    assert result.metric("bursty").measured == 1.0


def test_fig8_voltage_delay(benchmark):
    result = _run_experiment(benchmark, "fig8_voltage_delay")
    assert result.metric("mean_settle_us").abs_error < 60e-6


def test_fig9_frequency_delay_intel(benchmark):
    result = _run_experiment(benchmark, "fig9_freq_delay_intel")
    assert result.metric("stalls").measured == 1.0


def test_fig10_frequency_delay_amd(benchmark):
    result = _run_experiment(benchmark, "fig10_freq_delay_amd")
    assert result.metric("no_stall").measured == 1.0


def test_fig11_xeon_pstate_change(benchmark):
    result = _run_experiment(benchmark, "fig11_xeon_pstate")
    assert result.metric("voltage_first").measured == 1.0


def test_fig12_undervolt_sweep(benchmark):
    result = _run_experiment(benchmark, "fig12_undervolt_sweep")
    assert result.metric("power_monotone").measured == 1.0


def test_fig13_dvfs_curves(benchmark):
    result = _run_experiment(benchmark, "fig13_dvfs_curves")
    assert result.metric("headroom@5GHz").abs_error < 0.03


def test_fig14_imul_latency_sweep(benchmark):
    result = _run_experiment(benchmark, "fig14_imul_latency")
    assert result.metric("superlinear_then_linear").measured == 1.0


def test_fig16_per_benchmark(benchmark):
    result = _run_experiment(benchmark, "fig16_per_benchmark")
    assert result.metric("520.omnetpp.occupancy").abs_error < 0.05


def test_table5_gem5_config(benchmark):
    result = _run_experiment(benchmark, "table5_gem5_config")
    assert result.metric("frequency_ghz").measured == 3.0


def test_ablation_imul_hardening(benchmark):
    result = _run_experiment(benchmark, "ablation_imul")
    assert result.metric("hardening_wins").measured == 1.0


def test_ablation_thrashing_prevention(benchmark):
    result = _run_experiment(benchmark, "ablation_thrashing")
    assert result.metric("prevention_improves_perf").measured == 1.0


def test_ablation_core_count(benchmark):
    result = _run_experiment(benchmark, "ablation_cores")
    assert result.metric("eff_monotone_decreasing").measured == 1.0


def test_ablation_uarch_robustness(benchmark):
    result = _run_experiment(benchmark, "ablation_uarch")
    assert result.metric("hardening_stays_cheap").measured == 1.0


def test_ext_adaptive_policy(benchmark):
    result = _run_experiment(benchmark, "ext_adaptive_policy")
    assert result.metric("never_catastrophic").measured == 1.0


def test_ext_baselines(benchmark):
    result = _run_experiment(benchmark, "ext_baselines")
    assert result.metric("suit_secure_and_positive").measured == 1.0


def test_ext_model_check(benchmark):
    result = _run_experiment(benchmark, "ext_model_check")
    assert result.metric("machine_verified").measured == 1.0


def test_ext_tiers(benchmark):
    result = _run_experiment(benchmark, "ext_tiers")
    assert result.metric("ladder_has_multiple_tiers").measured == 1.0


# --- experiment engine: wall time at --jobs 1 vs --jobs N, and warm cache ---
#
# These record the engine's perf trajectory: the serial/parallel pair
# measures pool scaling on this machine, the warm-cache benchmark pins
# the memoized path (which must stay orders of magnitude faster than
# recomputation).

#: Cheap, representative engine workload (sub-second per experiment).
_ENGINE_MODULES = ("table3_temperature", "fig2_guardbands",
                   "table5_gem5_config", "fig5_burst_detail",
                   "fig7_vlc_timeline", "ablation_uarch")


def _run_engine(benchmark, jobs, cache=None):
    from repro.runtime.engine import ExperimentEngine

    engine = ExperimentEngine(jobs=jobs, cache=cache)

    def run():
        return engine.run(seed=0, fast=True, only=list(_ENGINE_MODULES))

    return benchmark.pedantic(run, rounds=1, iterations=1)


def test_engine_fast_jobs1(benchmark):
    report = _run_engine(benchmark, jobs=1)
    assert report.n_failed == 0 and len(report.records) == len(_ENGINE_MODULES)


def test_engine_fast_jobs4(benchmark):
    report = _run_engine(benchmark, jobs=4)
    assert report.n_failed == 0 and len(report.records) == len(_ENGINE_MODULES)


def test_engine_warm_cache(benchmark, tmp_path):
    from repro.runtime.cache import ResultCache
    from repro.runtime.engine import ExperimentEngine

    cache = ResultCache(tmp_path / "cache")
    ExperimentEngine(jobs=1, cache=cache).run(
        seed=0, fast=True, only=list(_ENGINE_MODULES))  # populate
    report = _run_engine(benchmark, jobs=1, cache=cache)
    assert report.n_cache_hits == len(_ENGINE_MODULES)
