"""Fleet breaking-point benchmark: the scaling claim, measured.

Runs :func:`repro.fleet.bench.run_fleet_bench` — the same harness
behind ``python -m repro fleet bench`` — twice over the identical
open-loop ramp and request mix: once against an N-node fleet (process
worker pools, autoscaler live), once against a single node through the
same gateway path.  The acceptance bar: the fleet's max sustainable
RPS must beat the single node's on the same mix.  The full record
(per-step RPS, exact latency percentiles, SLO verdicts, scaling
events) is written to ``BENCH_fleet.json`` at the repo root.

The measured run uses the **capacity mix** (``stall_s`` — constant
per-request service time occupying one worker slot, see
:func:`repro.fleet.loadgen.stall_mix`): throughput is then a pure
function of fleet concurrency, which is the honest scaling measure on
a host with few cores.  On a single-core container the CPU-bound
simulation mix measures the host, not the fleet — N process pools
timesharing one core ramp to the same breaking point as one node's
(we measured ratio 1.00); run ``python -m repro fleet bench`` without
``--stall-s`` on a multi-core host for the CPU-bound variant.

``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` CI hook) shrinks the
run to thread nodes and a two-step ramp, asserts only the harness
contract (report shape, every request answered), and leaves the
committed JSON untouched.

Run with:
    pytest benchmarks/test_fleet_bench.py -x -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fleet.bench import FleetBenchConfig, run_fleet_bench_sync
from repro.fleet.loadgen import LoadGenConfig, write_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _config() -> FleetBenchConfig:
    if SMOKE:
        return FleetBenchConfig(
            n_nodes=2, use_processes=False, workers_per_shard=1,
            autoscale=False, max_nodes=2,
            load=LoadGenConfig(start_rps=50, step_rps=50, max_steps=2,
                               requests_per_step=10, slo_p95_s=5.0))
    return FleetBenchConfig(
        n_nodes=3, use_processes=True, workers_per_shard=2,
        autoscale=True, max_nodes=5,
        load=LoadGenConfig(start_rps=20, step_rps=20, max_steps=12,
                           requests_per_step=150, slo_p95_s=1.0,
                           stall_s=0.05, stop_after_violations=2))


def test_fleet_breaking_point():
    payload = run_fleet_bench_sync(_config())
    print(json.dumps(payload["comparison"], indent=2))

    fleet = payload["fleet"]
    assert fleet["steps"], "the ramp must measure at least one step"
    for step in fleet["steps"]:
        # Open loop never loses requests: every arrival is answered
        # (ok, rejected, failed or timed out) exactly once.
        assert (step["ok"] + step["rejected"] + step["failed"]
                + step["timeout"]) == step["offered"]
    assert payload["single_node"]["steps"]
    comparison = payload["comparison"]
    assert comparison["fleet_max_sustainable_rps"] is not None

    if SMOKE:
        # Thread nodes share the GIL; only the harness contract holds.
        return
    write_bench(BENCH_PATH, payload)
    ratio = comparison["throughput_ratio"]
    assert ratio is not None and ratio > 1.0, (
        f"fleet must out-serve a single node on the same mix "
        f"(got {ratio}x)")
