"""Micro-benchmarks of the core primitives.

Measures the throughput of the hot paths a downstream user cares about:
trace synthesis, the event-based simulator, the out-of-order pipeline
model, and the functional emulators.
"""

import numpy as np
import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.emulation.aes import aes128_encrypt_block
from repro.emulation.bitsliced_aes import aes128_encrypt_block_ct
from repro.emulation.clmul import clmul64
from repro.hardware.models import cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.pipeline.config import GEM5_REFERENCE_CONFIG
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile


@pytest.fixture(scope="module")
def bench_profile():
    return WorkloadProfile(
        name="bench", suite="SPECint", n_instructions=500_000_000, ipc=1.5,
        efficient_occupancy=0.6, n_episodes=50, dense_gap=3_000,
        opcode_mix={Opcode.VOR: 1.0})


@pytest.fixture(scope="module")
def bench_trace(bench_profile):
    return generate_trace(bench_profile, seed=0)


def test_trace_synthesis(benchmark, bench_profile):
    trace = benchmark(generate_trace, bench_profile, seed=1)
    assert trace.n_events > 10_000


def test_trace_simulator_fv(benchmark, bench_profile, bench_trace):
    cpu = cpu_c_xeon_4208()

    def run():
        sim = TraceSimulator(cpu, bench_profile, bench_trace,
                             strategy_for("fV", DEFAULT_PARAMS_INTEL),
                             -0.097, seed=0)
        return sim.run()

    result = benchmark(run)
    assert result.n_exceptions > 0


def test_pipeline_scoreboard(benchmark):
    stream = generate_stream(
        StreamSpec(n_instructions=20_000, imul_density=0.005), seed=0)
    core = OutOfOrderCore(GEM5_REFERENCE_CONFIG)
    stats = benchmark(core.run, stream)
    assert stats.ipc > 1.0


def test_aes_table_based(benchmark):
    out = benchmark(aes128_encrypt_block, b"p" * 16, b"k" * 16)
    assert len(out) == 16


def test_aes_table_free(benchmark):
    out = benchmark(aes128_encrypt_block_ct, b"p" * 16, b"k" * 16)
    assert out == aes128_encrypt_block(b"p" * 16, b"k" * 16)


def test_clmul(benchmark):
    a, b = 0x123456789ABCDEF0, 0x0FEDCBA987654321
    out = benchmark(clmul64, a, b)
    assert out == clmul64(a, b)
