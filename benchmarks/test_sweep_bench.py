"""Sweep-kernel benchmark: vectorized batch replay vs per-config scalar.

Measures the wall time of a >= 64-config sweep over one trap-dense
trace (the paper's Nginx workload) through both evaluation paths:

* **scalar** — one :class:`~repro.core.simulator.TraceSimulator` per
  config, the pre-batchsim hot path of fig15/fig16 and the service;
* **vector** — one :func:`~repro.core.batchsim.simulate_sweep` call
  sharing a single compiled :class:`~repro.core.batchsim.TraceEpisode`
  (episode compilation is charged to the vector side).

Results are bit-identical by construction (asserted here config by
config; ``tests/test_batchsim_equivalence.py`` is the exhaustive
suite), so the comparison is pure speed.  The measurement is written to
``BENCH_simulator.json`` at the repo root — the machine-readable record
of the speedup claim (config count, wall seconds per path, speedup).

``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` CI hook) shrinks the
sweep to a small synthetic trace, asserts only that the fast path wins,
and leaves the committed JSON untouched.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.batchsim import SweepConfig, simulate_sweep
from repro.core.params import default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.models import cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.workloads.generator import generate_trace
from repro.workloads.network import NGINX_PROFILE
from repro.workloads.profile import WorkloadProfile

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Dense enough (~hundreds of thousands of events) that the scan cost
#: dominates and the smoke comparison is not timer noise.
_SMOKE_PROFILE = WorkloadProfile(
    name="smoke", suite="SPECint", n_instructions=50_000_000, ipc=1.2,
    efficient_occupancy=0.1, n_episodes=20, dense_gap=50,
    imul_density=0.1, opcode_mix={Opcode.VOR: 1.0})


def _configs(n_offsets: int, n_seeds: int):
    """fV and V sweeps across offsets x seeds (the scan-heavy paths)."""
    offsets = [-0.070 - 0.004 * i for i in range(n_offsets)]
    return [SweepConfig(strategy=s, voltage_offset=off, seed=seed)
            for s in ("fV", "V")
            for off in offsets
            for seed in range(n_seeds)]


def _run_scalar(cpu, profile, trace, configs, params):
    results = []
    for c in configs:
        sim = TraceSimulator(cpu, profile, trace,
                             strategy_for(c.strategy, params),
                             c.voltage_offset, seed=c.seed)
        results.append(sim.run())
    return results


def test_sweep_vectorization_speedup():
    cpu = cpu_c_xeon_4208()
    params = default_params_for(cpu.vendor)
    profile = _SMOKE_PROFILE if SMOKE else NGINX_PROFILE
    configs = _configs(2, 2) if SMOKE else _configs(8, 4)
    assert SMOKE or len(configs) >= 64
    trace = generate_trace(profile, seed=0)

    start = time.perf_counter()
    scalar = _run_scalar(cpu, profile, trace, configs, params)
    scalar_s = time.perf_counter() - start

    # Fresh episode: compilation is part of the vector wall time.
    trace._batchsim_episode = None
    start = time.perf_counter()
    vector = simulate_sweep(cpu, profile, trace, configs, params=params)
    vector_s = time.perf_counter() - start

    for fast, slow in zip(vector, scalar):
        assert fast.duration_s == slow.duration_s
        assert fast.energy_rel == slow.energy_rel
        assert fast.n_exceptions == slow.n_exceptions

    speedup = scalar_s / vector_s
    record = {
        "benchmark": "sweep_vectorization",
        "workload": profile.name,
        "n_events": int(trace.n_events),
        "n_configs": len(configs),
        "scalar_wall_s": round(scalar_s, 3),
        "vector_wall_s": round(vector_s, 3),
        "speedup": round(speedup, 2),
        "smoke": SMOKE,
    }
    print(json.dumps(record, indent=2))
    if SMOKE:
        # CI machines vary; just require the fast path to win.
        assert speedup > 1.0
    else:
        BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        assert speedup >= 5.0, f"sweep speedup regressed: {speedup:.2f}x"


@pytest.mark.skipif(SMOKE, reason="store fan-out timing is full-mode only")
def test_shared_store_attach_beats_regeneration():
    """Attaching a published trace must be far cheaper than
    re-synthesising it — the point of the zero-copy store."""
    from repro.workloads.tracestore import SharedTraceStore

    store = SharedTraceStore.create("bench")
    try:
        start = time.perf_counter()
        trace = generate_trace(NGINX_PROFILE, seed=0)
        generate_s = time.perf_counter() - start

        store.publish("bench-key", trace)
        store._traces.clear()  # force a true re-attach, not the cache
        start = time.perf_counter()
        attached = store.get("bench-key")
        attach_s = time.perf_counter() - start

        assert attached is not None
        assert attached.n_events == trace.n_events
        assert attach_s < generate_s / 10
        print(f"generate {generate_s * 1e3:.1f} ms vs "
              f"attach {attach_s * 1e3:.3f} ms")
    finally:
        store.cleanup()
