"""Kogler-style undervolting characterization sweep (paper Table 1).

Kogler et al.'s Minefield framework stress-tests every instruction on
every core, at several fixed frequencies, while stepping the voltage
offset down, and records each (core, frequency, offset) point where an
instruction produced a wrong result as one *fault*.  More
voltage-sensitive instructions fault on more grid points, so the fault
counts order the instructions by sensitivity — the ordering SUIT's
faultable set is built from.

:class:`CharacterizationSweep` reruns that campaign against sampled chip
instances of our fault model and aggregates the counts like Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.faults.model import CpuInstanceFaults, FaultModel
from repro.isa.faultable import FAULTABLE_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve


@dataclass(frozen=True)
class SweepConfig:
    """Grid of the characterization campaign.

    Attributes:
        offsets_v: voltage offsets to test (negative volts), shallow to
            deep.  Kogler et al. step in coarse increments.
        frequencies: fixed core clocks to test at (Hz).
        cores_per_chip: cores exercised on each chip.
        n_chips: chips in the population.
        exhibit_all: force every chip to exhibit the variation effect
            (set False to include non-exhibiting chips, like Intel gen 6).
    """

    offsets_v: Sequence[float] = (-0.050, -0.075, -0.100, -0.125, -0.150)
    frequencies: Sequence[float] = (2.0e9, 3.0e9, 4.0e9)
    cores_per_chip: int = 4
    n_chips: int = 2
    exhibit_all: bool = True


@dataclass
class CharacterizationSweep:
    """Run the fault-characterization campaign over a chip population."""

    model: FaultModel
    curve: DVFSCurve
    config: SweepConfig = field(default_factory=SweepConfig)

    def run(self, rng: np.random.Generator,
            opcodes: Sequence[Opcode] = tuple(sorted(FAULTABLE_OPCODES,
                                                     key=lambda o: o.value)),
            ) -> Dict[Opcode, int]:
        """Execute the sweep; return fault counts per opcode.

        One fault is counted per (chip, core, frequency, offset) grid
        point at which the opcode's result is wrong — exactly the Table 1
        metric.
        """
        chips = self._sample_population(rng)
        counts: Dict[Opcode, int] = {op: 0 for op in opcodes}
        for chip in chips:
            for core in range(chip.n_cores):
                for freq in self.config.frequencies:
                    v_curve = chip.curve.voltage_at(freq)
                    for offset in self.config.offsets_v:
                        if offset >= 0:
                            raise ValueError("sweep offsets must be negative")
                        voltage = v_curve + offset
                        for op in opcodes:
                            if chip.faults(op, core, freq, voltage):
                                counts[op] += 1
        return counts

    def first_fault_share(self, rng: np.random.Generator) -> Dict[Opcode, float]:
        """Fraction of (chip, core, frequency) points where each opcode is
        the *first* to fault while stepping the offset down.

        Kogler et al. report IMUL faulting first in 91.2 % of cases
        (paper section 4.2); this reproduces that statistic.
        """
        chips = self._sample_population(rng)
        firsts: Dict[Opcode, int] = {op: 0 for op in FAULTABLE_OPCODES}
        total = 0
        for chip in chips:
            for core in range(chip.n_cores):
                for freq in self.config.frequencies:
                    winner = max(
                        FAULTABLE_OPCODES,
                        key=lambda op: chip.max_safe_offset(op, core, freq),
                    )
                    firsts[winner] += 1
                    total += 1
        if total == 0:
            raise RuntimeError("empty sweep grid")
        return {op: n / total for op, n in firsts.items()}

    def _sample_population(self, rng: np.random.Generator) -> List[CpuInstanceFaults]:
        cfg = self.config
        return [
            self.model.sample_chip(
                self.curve, cfg.cores_per_chip, rng,
                exhibits=True if cfg.exhibit_all else None,
            )
            for _ in range(cfg.n_chips)
        ]
