"""Undervolting fault model.

Models *which* instruction faults at *which* voltage (paper sections 2.3
and 3.1): each instruction class has a minimum stable voltage a fixed
margin below the conservative DVFS curve, spread by per-chip and per-core
process variation.  :mod:`repro.faults.characterize` reruns the
Kogler-style sweep that produced Table 1, and :mod:`repro.faults.injector`
corrupts computation results when an instruction executes below its
minimum voltage — the primitive behind the Plundervolt-style attacks SUIT
defends against.
"""

from repro.faults.model import (
    FaultModel,
    CpuInstanceFaults,
    BASE_VMIN_MARGINS,
    NON_FAULTABLE_MARGIN_V,
)
from repro.faults.injector import FaultInjector, FaultEvent
from repro.faults.characterize import CharacterizationSweep, SweepConfig

__all__ = [
    "FaultModel",
    "CpuInstanceFaults",
    "BASE_VMIN_MARGINS",
    "NON_FAULTABLE_MARGIN_V",
    "FaultInjector",
    "FaultEvent",
    "CharacterizationSweep",
    "SweepConfig",
]
