"""Fault injection: corrupting results of undervolted instructions.

When an instruction executes below its minimum stable voltage the typical
silicon failure mode is a late-arriving data signal — observed by
software as one or a few flipped bits in the result (Plundervolt,
V0LTpwn).  :class:`FaultInjector` reproduces that: given a chip instance
and an operating point, it decides per execution whether to fault and, if
so, flips a random low-weight bit pattern in the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.faults.model import CpuInstanceFaults
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class FaultEvent:
    """Record of one injected fault.

    Attributes:
        opcode: the faulting instruction class.
        core: core it executed on.
        frequency: clock at execution time (Hz).
        voltage: supply at execution time (V).
        flipped_mask: XOR mask applied to the result.
    """

    opcode: Opcode
    core: int
    frequency: float
    voltage: float
    flipped_mask: int


class FaultInjector:
    """Stateful injector bound to one chip instance.

    Args:
        chip: the sampled chip (fault thresholds).
        rng: randomness source for fault occurrence and bit positions.
            When omitted, a private ``np.random.default_rng(seed)`` is
            created — pass ``seed`` (e.g. from the engine's
            ``derive_seed``) to make the injection sequence reproducible
            instead of sharing an ambient random stream.
        max_flips: maximum number of simultaneously flipped bits.
        seed: seed for the private generator (mutually exclusive with
            *rng*).
    """

    def __init__(self, chip: CpuInstanceFaults,
                 rng: Optional[np.random.Generator] = None,
                 max_flips: int = 2, *, seed: Optional[int] = None) -> None:
        if max_flips < 1:
            raise ValueError("max_flips must be at least 1")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self._chip = chip
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._max_flips = max_flips
        self.events: List[FaultEvent] = []

    def execute(self, opcode: Opcode, correct_result: int, *,
                core: int, frequency: float, voltage: float,
                result_bits: int = 64) -> int:
        """Execute an instruction; return its (possibly corrupted) result.

        A fault is injected with the chip's soft probability at the given
        operating point; the corruption is an XOR with 1..``max_flips``
        random bits within ``result_bits``.
        """
        p = self._chip.fault_probability(opcode, core, frequency, voltage)
        if p <= 0.0 or self._rng.random() >= p:
            return correct_result
        n_flips = int(self._rng.integers(1, self._max_flips + 1))
        positions = self._rng.choice(result_bits, size=n_flips, replace=False)
        mask = 0
        for pos in positions:
            mask |= 1 << int(pos)
        self.events.append(FaultEvent(opcode, core, frequency, voltage, mask))
        return correct_result ^ mask

    def would_fault(self, opcode: Opcode, *, core: int, frequency: float,
                    voltage: float) -> bool:
        """Deterministic threshold check (no randomness, no event)."""
        return self._chip.faults(opcode, core, frequency, voltage)

    @property
    def fault_count(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        """Forget recorded fault events."""
        self.events.clear()


def faulty_imul(a: int, b: int, injector: FaultInjector, *,
                core: int, frequency: float, voltage: float,
                bits: int = 64) -> int:
    """A 64-bit IMUL routed through the fault injector.

    Used by the security demos: multiplications inside RSA-CRT become
    corruptible when the CPU is undervolted without SUIT's protections.
    """
    mask = (1 << bits) - 1
    correct = (a * b) & mask
    return injector.execute(Opcode.IMUL, correct, core=core,
                            frequency=frequency, voltage=voltage,
                            result_bits=bits)
