"""Per-instruction minimum-voltage model (paper sections 2.3, 3.1).

Undervolting studies (Murdock et al., Kogler et al.) consistently find
that data-path-heavy instructions fault *first* when the voltage drops:
``IMUL`` starts producing wrong results around 45-100 mV below the
guardbanded supply, the SIMD/crypto instructions of Table 1 follow over
the next ~100 mV, and everything else (control logic, simple ALU ops)
stays correct down to roughly -250 mV.

We model each instruction class's minimum stable voltage as the
conservative-curve voltage plus a negative *margin* drawn around a
class-specific mean, with Gaussian per-chip and per-core process
variation.  Some chips (e.g. Intel 6th gen) do not exhibit the
instruction-variation effect at all; the model reproduces that with a
per-chip flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.isa.faultable import FAULTABLE_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve

#: Mean margin (volts, negative) below the conservative curve at which
#: each faultable instruction starts to fault.  The ordering follows the
#: sensitivity ranking of Table 1: IMUL faults first (smallest margin).
BASE_VMIN_MARGINS: Dict[Opcode, float] = {
    Opcode.IMUL: -0.048,
    Opcode.VOR: -0.068,
    Opcode.AESENC: -0.078,
    Opcode.VXOR: -0.078,
    Opcode.VANDN: -0.088,
    Opcode.VAND: -0.091,
    Opcode.VSQRTPD: -0.095,
    Opcode.VPCLMULQDQ: -0.105,
    Opcode.VPSRAD: -0.118,
    Opcode.VPCMP: -0.128,
    Opcode.VPMAX: -0.136,
    Opcode.VPADDQ: -0.148,
}

#: Margin for instructions outside the faultable set (Murdock et al.:
#: stable down to about -250 mV).
NON_FAULTABLE_MARGIN_V: float = -0.250


@dataclass(frozen=True)
class FaultModel:
    """Population-level fault model; sample chips from it.

    Attributes:
        chip_sigma_v: per-chip Gaussian shift of all margins (process
            variation between dies).
        core_sigma_v: additional per-core shift within a die.
        instr_sigma_v: residual per-(core, instruction) spread.
        frequency_slope_v_per_hz: margins shrink (get closer to the
            curve) at higher frequency: timing slack decreases, so faults
            appear at smaller undervolts.
        exhibit_probability: fraction of chips that exhibit the
            instruction-variation effect at all (Intel 6th gen did not).
    """

    chip_sigma_v: float = 0.012
    core_sigma_v: float = 0.008
    instr_sigma_v: float = 0.009
    frequency_slope_v_per_hz: float = 4.0e-12  # 4 mV per GHz
    exhibit_probability: float = 0.8

    def sample_chip(self, curve: DVFSCurve, n_cores: int,
                    rng: np.random.Generator,
                    exhibits: Optional[bool] = None) -> "CpuInstanceFaults":
        """Sample one concrete chip.

        Args:
            curve: the chip's conservative DVFS curve.
            n_cores: cores on the die.
            rng: randomness source (seeded for reproducibility).
            exhibits: force the instruction-variation effect on/off, or
                None to sample it with ``exhibit_probability``.
        """
        if n_cores < 1:
            raise ValueError("chips need at least one core")
        if exhibits is None:
            exhibits = bool(rng.random() < self.exhibit_probability)
        chip_shift = rng.normal(0.0, self.chip_sigma_v)
        margins: Dict[Opcode, np.ndarray] = {}
        core_shift = rng.normal(0.0, self.core_sigma_v, size=n_cores)
        for op in Opcode:
            base = BASE_VMIN_MARGINS.get(op, NON_FAULTABLE_MARGIN_V)
            if not exhibits and op in FAULTABLE_OPCODES and op is not Opcode.IMUL:
                # Chips without the effect: everything but IMUL behaves
                # like the non-faultable mass.
                base = NON_FAULTABLE_MARGIN_V
            noise = rng.normal(0.0, self.instr_sigma_v, size=n_cores)
            margins[op] = base + chip_shift + core_shift + noise
        return CpuInstanceFaults(
            curve=curve,
            margins=margins,
            frequency_slope_v_per_hz=self.frequency_slope_v_per_hz,
            exhibits_variation=exhibits,
        )

    def corner_chip(self, curve: DVFSCurve, shift_sigmas: float,
                    n_cores: int = 1,
                    exhibits: bool = True) -> "CpuInstanceFaults":
        """A deterministic process-variation *corner* of this model.

        Unlike :meth:`sample_chip` there is no randomness: every margin
        shifts uniformly by ``shift_sigmas * chip_sigma_v`` — negative
        sigmas model strong silicon (margins move away from the curve),
        positive sigmas weak silicon — with no per-core or
        per-instruction noise.  Corners are what design-space
        exploration audits: a security margin that holds at the slow
        corner holds for the population the corner bounds.

        Args:
            curve: the chip's conservative DVFS curve.
            shift_sigmas: uniform margin shift in units of
                ``chip_sigma_v`` (e.g. -1.5 fast, 0 typical, +3 worst).
            n_cores: cores on the die (margins are identical per core).
            exhibits: whether the corner exhibits the
                instruction-variation effect.
        """
        if n_cores < 1:
            raise ValueError("chips need at least one core")
        shift = shift_sigmas * self.chip_sigma_v
        margins: Dict[Opcode, np.ndarray] = {}
        for op in Opcode:
            base = BASE_VMIN_MARGINS.get(op, NON_FAULTABLE_MARGIN_V)
            if not exhibits and op in FAULTABLE_OPCODES and op is not Opcode.IMUL:
                base = NON_FAULTABLE_MARGIN_V
            margins[op] = np.full(n_cores, base + shift)
        return CpuInstanceFaults(
            curve=curve,
            margins=margins,
            frequency_slope_v_per_hz=self.frequency_slope_v_per_hz,
            exhibits_variation=exhibits,
        )


@dataclass
class CpuInstanceFaults:
    """Fault behaviour of one concrete chip.

    Attributes:
        curve: conservative DVFS curve of the chip.
        margins: per-opcode array of per-core margins (negative volts).
        frequency_slope_v_per_hz: margin shrink per Hz of clock.
        exhibits_variation: whether this chip shows the
            instruction-voltage-variation effect.
    """

    curve: DVFSCurve
    margins: Dict[Opcode, np.ndarray]
    frequency_slope_v_per_hz: float
    exhibits_variation: bool
    _reference_frequency: float = field(init=False)

    def __post_init__(self) -> None:
        self._reference_frequency = self.curve.f_max

    @property
    def n_cores(self) -> int:
        return len(next(iter(self.margins.values())))

    def vmin(self, opcode: Opcode, core: int, frequency: float) -> float:
        """Minimum stable voltage for *opcode* on *core* at *frequency*.

        Above the reference frequency the margin shrinks (less slack),
        below it grows, at ``frequency_slope_v_per_hz``.
        """
        margin = float(self.margins[opcode][core])
        margin += (frequency - self._reference_frequency) * self.frequency_slope_v_per_hz
        return self.curve.voltage_at(frequency) + margin

    def faults(self, opcode: Opcode, core: int, frequency: float,
               voltage: float) -> bool:
        """Whether *opcode* produces wrong results at this operating point."""
        return voltage < self.vmin(opcode, core, frequency)

    def fault_probability(self, opcode: Opcode, core: int, frequency: float,
                          voltage: float, width_v: float = 0.004) -> float:
        """Soft fault probability near the threshold.

        Real faults are intermittent close to Vmin; probability ramps from
        0 to 1 over a ~``width_v`` band below the threshold.
        """
        depth = self.vmin(opcode, core, frequency) - voltage
        if depth <= 0:
            return 0.0
        return min(1.0, depth / width_v)

    def max_safe_offset(self, opcode: Opcode, core: int, frequency: float) -> float:
        """Largest (most negative) curve offset at which *opcode* is still
        stable, i.e. the margin itself."""
        return self.vmin(opcode, core, frequency) - self.curve.voltage_at(frequency)

    def aged(self, years: float, temp_c: float = 60.0,
             lifetime_degradation: float = 0.15,
             lifetime_years: float = 10.0) -> "CpuInstanceFaults":
        """This chip after *years* of operation at *temp_c*.

        Two effects raise every transistor's voltage requirement, both
        applied as a uniform margin shift toward the conservative curve:

        * BTI/HCI aging — the delay degradation accumulated over the
          years at *temp_c*, converted through the local curve gradient
          (the aging-guardband construction of section 5.6);
        * operating temperature — hot silicon needs more voltage *now*
          (section 5.7's 35 mV guardband between 50 and 88 degC).
        """
        from repro.power.guardband import AgingModel, TemperatureGuardband

        aging = AgingModel(lifetime_degradation=lifetime_degradation,
                           lifetime_years=lifetime_years)
        degradation = aging.degradation(years, temp_c)
        f_ref = self._reference_frequency
        # Voltage needed to compensate the slowed transistors.
        shift = f_ref * degradation * self.curve.gradient_at(f_ref)
        # Plus the instantaneous temperature requirement above the cool
        # reference point the margins were characterised at.
        temp_band = TemperatureGuardband()
        shift += max(0.0, temp_band.max_undervolt(min(temp_c,
                                                      temp_band.hot_temp_c))
                     - temp_band.max_undervolt(temp_band.cool_temp_c))
        margins = {op: values + shift for op, values in self.margins.items()}
        return CpuInstanceFaults(
            curve=self.curve,
            margins=margins,
            frequency_slope_v_per_hz=self.frequency_slope_v_per_hz,
            exhibits_variation=self.exhibits_variation,
        )

    def with_hardened_imul(self, old_latency: int = 3,
                           new_latency: int = 4) -> "CpuInstanceFaults":
        """A copy of this chip with the SUIT-hardened IMUL (section 4.2).

        Stretching IMUL's critical path over one more cycle moves its
        minimum voltage down to the conservative voltage at
        ``frequency * old/new`` — the same construction as
        :func:`repro.power.dvfs.modified_imul_curve`.  The per-core
        process-variation component is preserved.
        """
        if new_latency <= old_latency:
            raise ValueError("latency must increase")
        scale = old_latency / new_latency
        f_ref = self._reference_frequency
        v_ref = self.curve.voltage_at(f_ref)
        # Voltage head-room gained at the reference frequency.
        gain = v_ref - self.curve.voltage_at(f_ref * scale)
        margins = dict(self.margins)
        margins[Opcode.IMUL] = self.margins[Opcode.IMUL] - gain
        return CpuInstanceFaults(
            curve=self.curve,
            margins=margins,
            frequency_slope_v_per_hz=self.frequency_slope_v_per_hz,
            exhibits_variation=self.exhibits_variation,
        )
