"""Consistent-hash placement of canonical requests on fleet nodes.

Why consistent hashing (and not round-robin): a node's whole speed
advantage is its warm state — the per-process ``SuitSystem`` cache in
its pool workers, the synthesized-trace L1/L2 caches, the on-disk
result cache.  Routing on a stable hash of ``(cpu, workload)`` sends
the same question to the same node every time, so that state keeps
paying; and when a node joins or dies, only ~1/N of the key space
moves (round-robin or modulo hashing would reshuffle nearly all of
it, stampeding every node's caches at once).

The ring is the textbook construction: every node projects
``replicas`` virtual points onto a 64-bit circle (SHA-256 of
``"node\\x1fi"``), a key routes to the first point clockwise of its
own hash.  Everything is a pure function of the member set — two
processes that agree on the node names agree on every placement,
which is what lets a restarted gateway (or a second gateway) route
identically without any coordination.  ``tests/test_fleet_ring.py``
pins both properties: bounded remapping and cross-process agreement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual points per node.  128 keeps the max/mean load ratio of a
#: small fleet near 1.2 while the ring stays tiny (N*128 ints).
DEFAULT_REPLICAS = 128

#: Field separator of hash material; cannot appear in CPU/workload
#: names, so distinct tuples can never collide into one key string.
_SEP = "\x1f"


def _hash64(material: str) -> int:
    """SHA-256 of *material*, folded to the ring's 64-bit circle."""
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def route_key(cpu: str, workload: str) -> str:
    """The placement key of one canonical request.

    Deliberately **only** ``(cpu, workload)``: strategy, offset and
    seed steer the simulation but share the same synthesized trace and
    CPU model, so co-locating them is exactly what keeps a node's
    caches hot.
    """
    return f"{cpu}{_SEP}{workload}"


class ConsistentHashRing:
    """A consistent-hash ring over named nodes.

    Args:
        nodes: initial member names.
        replicas: virtual points per node (>= 1).
    """

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        """See class docstring."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._nodes: Dict[str, List[int]] = {}
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------

    def add(self, node: str) -> None:
        """Add *node*; idempotent."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        points = [_hash64(f"{node}{_SEP}{i}") for i in range(self.replicas)]
        self._nodes[node] = points
        for point in points:
            entry = (point, node)
            index = bisect.bisect_left(self._points, entry)
            self._points.insert(index, entry)
            self._keys.insert(index, point)

    def remove(self, node: str) -> None:
        """Remove *node*; idempotent."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        self._points = [(p, n) for (p, n) in self._points if n != node]
        self._keys = [p for (p, _) in self._points]

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Member names, sorted."""
        return tuple(sorted(self._nodes))

    # -- routing --------------------------------------------------------

    def route(self, key: str) -> Optional[str]:
        """The owning node of *key*, or None on an empty ring."""
        if not self._points:
            return None
        point = _hash64(key)
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._points):
            index = 0  # wrap: first point clockwise of the top
        return self._points[index][1]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """The first *n* **distinct** nodes clockwise of *key*.

        Element 0 is :meth:`route`'s answer; the rest are the failover
        order the gateway walks when the owner is down.  Every member
        appears exactly once, so with ``n=len(ring)`` this is a
        deterministic permutation of the fleet.
        """
        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        point = _hash64(key)
        start = bisect.bisect_right(self._keys, point)
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(ordered) >= want:
                    break
        return ordered

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """Map each key to its owner (diagnostics / property tests)."""
        return {key: owner for key in keys
                if (owner := self.route(key)) is not None}
