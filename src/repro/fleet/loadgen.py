"""Closed+open-loop load harness and the breaking-point report.

Two complementary load shapes, both driven against anything with an
``async submit(SimRequest) -> SimResponse`` — a
:class:`~repro.service.server.SimulationService`, a
:class:`~repro.fleet.gateway.FleetGateway`, or a test stub:

* **open loop** (:func:`run_step`) — arrivals on a fixed schedule,
  independent of completion times, the way real traffic behaves.  The
  breaking-point ramp (:func:`run_breaking_point`) raises the target
  RPS step by step until the SLO (p95 latency + error rate) breaks;
  the last compliant step is the fleet's *max sustainable RPS*.  Open
  loop is the honest measure of capacity: a closed-loop client slows
  down with the server and hides the collapse.
* **closed loop** (:func:`run_closed_loop`) — N workers firing
  back-to-back, which measures peak completion throughput with
  built-in backpressure.  The report carries both numbers; the gap
  between them is the queueing headroom.

Two request populations, picked by ``LoadGenConfig.stall_s``:

* **simulation mix** (:func:`default_mix`) — real simulations, half
  fresh, half repeated.  CPU-bound: its breaking point scales with
  host cores, so it only supports a fleet-scaling claim on a
  multi-core host.
* **capacity mix** (:func:`stall_mix`) — deterministic worker stalls
  with constant service time.  Throughput is a pure function of fleet
  concurrency, so it measures the serving tier itself (routing,
  queueing, worker occupancy) independent of host CPU — the mode the
  committed ``BENCH_fleet.json`` uses, because CI runs on one core.

Latency percentiles are **exact** (sorted client-observed samples),
not histogram-bucket approximations — the load generator holds every
sample anyway, and a breaking-point claim should not inherit bucket
rounding.

:func:`write_bench` writes the machine-readable ``BENCH_fleet.json``
record (see ``benchmarks/test_fleet_bench.py`` and ``docs/fleet.md``
for the methodology).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.service.request import STATUS_OK, STATUS_REJECTED, SimRequest
from repro.service.workers import SLEEP_PREFIX

#: The fast, cache-diverse workload mix the default population cycles
#: (all warm-simulate in milliseconds; nginx is the trap-dense one).
_MIX_CPUS = ("A", "C")
_MIX_WORKLOADS = ("557.xz", "541.leela", "nginx", "vlc")
_MIX_OFFSETS = (-0.097, -0.070)


def default_mix(n: int, seed: int = 0, fresh_fraction: float = 0.5) -> List[SimRequest]:
    """A deterministic *n*-request population for one load step.

    Cycles CPUs, workloads and offsets; a ``fresh_fraction`` of the
    requests get per-call unique voltage offsets (they must actually
    run the sweep kernel — on warm traces, the hot serving path), the
    rest repeat exactly (they exercise the in-flight dedup and any
    result cache).  Real traffic is exactly this blend, and a breaking
    point measured on 100% cache hits would be fiction.  Seeds stay in
    a small fixed set so trace synthesis — a per-``(workload, seed)``
    cold cost — amortises instead of dominating.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    requests = []
    fresh_every = max(1, round(1 / fresh_fraction)) if fresh_fraction > 0 \
        else n + 1
    for i in range(n):
        base = _MIX_OFFSETS[(i // 4) % len(_MIX_OFFSETS)]
        if fresh_fraction > 0 and (i % fresh_every) == 0:
            # Unique per (seed, i) while staying inside the plausible
            # undervolt band; the trace is warm, the sweep is not.
            base -= 1e-6 * ((seed * 131 + i) % 2003 + 1)
        requests.append(SimRequest(
            cpu=_MIX_CPUS[i % len(_MIX_CPUS)],
            workload=_MIX_WORKLOADS[(i // 2) % len(_MIX_WORKLOADS)],
            voltage_offset=round(base, 9),
            seed=i % 3,
        ))
    return requests


def stall_mix(n: int, seed: int = 0, stall_s: float = 0.05,
              lanes: int = 48) -> List[SimRequest]:
    """A constant-service-time population: the *capacity* load mode.

    Every request is a deterministic worker stall
    (``__sleep__:<seconds>``, the service's own saturation hook): it
    occupies one worker slot for ``stall_s`` without needing host CPU.
    That makes throughput a pure function of fleet concurrency
    (nodes x workers / stall), which is the honest way to measure
    *serving capacity* — routing, queueing, worker occupancy — on a
    host whose core count cannot carry a CPU-parallel claim: the
    breaking-point benchmark runs in CI containers with a single core,
    where N process pools timeshare one CPU and a simulation mix
    measures the host, not the fleet (we measured exactly ratio 1.0).

    ``lanes`` distinct stall durations (within 5% of ``stall_s``) give
    the consistent-hash ring that many distinct ``(cpu, workload)``
    routing keys, so load spreads — few lanes mean coarse key
    granularity and one overloaded owner caps the fleet.  Per-request
    unique seeds keep every request a distinct canonical identity (no
    dedup or cache hits — each answer really occupies a worker slot).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if stall_s <= 0:
        raise ValueError("stall_s must be positive")
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    requests = []
    for i in range(n):
        duration = round(stall_s * (1 + 0.001 * (i % lanes)), 9)
        requests.append(SimRequest(
            cpu=_MIX_CPUS[i % len(_MIX_CPUS)],
            workload=f"{SLEEP_PREFIX}{duration}",
            voltage_offset=_MIX_OFFSETS[i % len(_MIX_OFFSETS)],
            seed=seed * 100_003 + i,
        ))
    return requests


@dataclass
class LoadGenConfig:
    """Knobs of one breaking-point run.

    Attributes:
        start_rps / step_rps / max_steps: the offered-load ramp.
        requests_per_step: open-loop arrivals per step (more = tighter
            percentiles, longer run).
        slo_p95_s: the latency SLO; a step whose p95 exceeds it is a
            violation.
        slo_error_rate: tolerated fraction of non-ok answers
            (rejections under overload count — shedding load *is* the
            breaking point).
        stop_after_violations: consecutive violating steps before the
            ramp stops (1 = stop at first break).
        seed: population seed (the request mix is a pure function of
            ``(seed, step)``).
        fresh_fraction: fraction of per-step requests with unique
            seeds (see :func:`default_mix`).
        stall_s: when set, switch every population to the
            constant-service-time capacity mix (:func:`stall_mix`)
            with this per-request stall; ``None`` keeps the
            CPU-bound simulation mix.
        stall_lanes: distinct stall durations (= ring routing keys)
            of the capacity mix.
        closed_clients / closed_requests: the closed-loop phase run
            before the ramp (0 requests skips it).
        warmup: run every distinct ``(cpu, workload, seed)`` of the
            mix once, unmeasured, before the ramp — trace synthesis is
            a cold per-pair cost that would otherwise be billed to the
            first step.
    """

    start_rps: float = 25.0
    step_rps: float = 25.0
    max_steps: int = 8
    requests_per_step: int = 50
    slo_p95_s: float = 1.0
    slo_error_rate: float = 0.02
    stop_after_violations: int = 1
    seed: int = 0
    fresh_fraction: float = 0.5
    stall_s: Optional[float] = None
    stall_lanes: int = 48
    closed_clients: int = 8
    closed_requests: int = 0
    warmup: bool = True


def step_population(config: LoadGenConfig, n: int,
                    seed: int) -> List[SimRequest]:
    """The *n*-request population for one step under *config*'s mode:
    :func:`stall_mix` when ``stall_s`` is set, else :func:`default_mix`."""
    if config.stall_s is not None:
        return stall_mix(n, seed=seed, stall_s=config.stall_s,
                         lanes=config.stall_lanes)
    return default_mix(n, seed=seed, fresh_fraction=config.fresh_fraction)


def _percentile(sorted_samples: Sequence[float], p: float) -> Optional[float]:
    """Exact nearest-rank percentile of pre-sorted *sorted_samples*."""
    if not sorted_samples:
        return None
    rank = max(1, round(p * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass
class LoadStep:
    """Measured outcome of one offered-load step."""

    target_rps: float
    offered: int
    ok: int = 0
    rejected: int = 0
    failed: int = 0
    timeout: int = 0
    duration_s: float = 0.0
    achieved_rps: float = 0.0
    p50_s: Optional[float] = None
    p95_s: Optional[float] = None
    p99_s: Optional[float] = None
    slo_ok: bool = True
    violations: List[str] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        """Fraction of answers that were not ok."""
        return 0.0 if not self.offered else \
            (self.offered - self.ok) / self.offered

    def to_json_dict(self) -> dict:
        """JSON form (breaking-point report)."""
        def ms(v: Optional[float]) -> Optional[float]:
            return None if v is None else round(v * 1e3, 3)

        return {"target_rps": round(self.target_rps, 3),
                "offered": self.offered, "ok": self.ok,
                "rejected": self.rejected, "failed": self.failed,
                "timeout": self.timeout,
                "error_rate": round(self.error_rate, 4),
                "duration_s": round(self.duration_s, 3),
                "achieved_rps": round(self.achieved_rps, 2),
                "p50_ms": ms(self.p50_s), "p95_ms": ms(self.p95_s),
                "p99_ms": ms(self.p99_s),
                "slo_ok": self.slo_ok, "violations": self.violations}


async def run_step(submit: Callable, requests: Sequence[SimRequest],
                   target_rps: float) -> LoadStep:
    """Drive one open-loop step: fixed-schedule arrivals at
    *target_rps*, completion whenever the service answers."""
    if target_rps <= 0:
        raise ValueError("target_rps must be positive")
    loop = asyncio.get_running_loop()
    step = LoadStep(target_rps=target_rps, offered=len(requests))
    latencies: List[float] = []

    async def one(request: SimRequest) -> None:
        started = loop.time()
        response = await submit(request)
        latencies.append(loop.time() - started)
        if response.status == STATUS_OK:
            step.ok += 1
        elif response.status == STATUS_REJECTED:
            step.rejected += 1
        elif response.status == "timeout":
            step.timeout += 1
        else:
            step.failed += 1

    start = loop.time()
    tasks = []
    for i, request in enumerate(requests):
        delay = start + i / target_rps - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(one(request)))
    await asyncio.gather(*tasks)
    step.duration_s = loop.time() - start
    if step.duration_s > 0:
        step.achieved_rps = step.ok / step.duration_s
    latencies.sort()
    step.p50_s = _percentile(latencies, 0.50)
    step.p95_s = _percentile(latencies, 0.95)
    step.p99_s = _percentile(latencies, 0.99)
    return step


async def run_closed_loop(submit: Callable,
                          requests: Sequence[SimRequest],
                          clients: int = 8) -> LoadStep:
    """Drive *requests* with *clients* back-to-back workers: the peak
    completion throughput with natural backpressure."""
    loop = asyncio.get_running_loop()
    step = LoadStep(target_rps=0.0, offered=len(requests))
    latencies: List[float] = []
    queue: "asyncio.Queue" = asyncio.Queue()
    for request in requests:
        queue.put_nowait(request)

    async def worker() -> None:
        while True:
            try:
                request = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            started = loop.time()
            response = await submit(request)
            latencies.append(loop.time() - started)
            if response.status == STATUS_OK:
                step.ok += 1
            elif response.status == STATUS_REJECTED:
                step.rejected += 1
            else:
                step.failed += 1

    start = loop.time()
    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    step.duration_s = loop.time() - start
    if step.duration_s > 0:
        step.achieved_rps = step.ok / step.duration_s
    latencies.sort()
    step.p50_s = _percentile(latencies, 0.50)
    step.p95_s = _percentile(latencies, 0.95)
    step.p99_s = _percentile(latencies, 0.99)
    return step


@dataclass
class LoadReport:
    """The breaking-point curve and its headline numbers."""

    config: LoadGenConfig
    steps: List[LoadStep] = field(default_factory=list)
    closed_loop: Optional[LoadStep] = None
    scaling_events: List[dict] = field(default_factory=list)

    @property
    def breaking_point_rps(self) -> Optional[float]:
        """Target RPS of the first SLO-violating step (None: never broke)."""
        for step in self.steps:
            if not step.slo_ok:
                return step.target_rps
        return None

    @property
    def max_sustainable_rps(self) -> Optional[float]:
        """Achieved RPS of the best SLO-compliant step."""
        compliant = [s.achieved_rps for s in self.steps if s.slo_ok]
        return max(compliant) if compliant else None

    def to_json_dict(self) -> dict:
        """The ``BENCH_fleet.json`` payload section for one target."""
        return {
            "slo": {"p95_s": self.config.slo_p95_s,
                    "error_rate": self.config.slo_error_rate},
            "ramp": {"start_rps": self.config.start_rps,
                     "step_rps": self.config.step_rps,
                     "requests_per_step": self.config.requests_per_step,
                     "seed": self.config.seed,
                     "mix": ("stall" if self.config.stall_s is not None
                             else "sim"),
                     "stall_s": self.config.stall_s,
                     "fresh_fraction": self.config.fresh_fraction},
            "steps": [s.to_json_dict() for s in self.steps],
            "closed_loop": (None if self.closed_loop is None
                            else self.closed_loop.to_json_dict()),
            "breaking_point_rps": self.breaking_point_rps,
            "max_sustainable_rps": (
                None if self.max_sustainable_rps is None
                else round(self.max_sustainable_rps, 2)),
            "scaling_events": self.scaling_events,
        }


def warm_population(config: LoadGenConfig) -> List[SimRequest]:
    """One representative per distinct ``(cpu, workload, seed)`` of
    every step population — the requests that pay cold trace
    synthesis.  The autoscaler warms scale-up nodes with exactly this
    set before they join the ring."""
    if config.stall_s is not None:
        return []  # stalls have no cold cost: nothing to warm
    seen = set()
    warmers: List[SimRequest] = []
    for index in range(config.max_steps + 1):
        for request in default_mix(config.requests_per_step,
                                   seed=config.seed + index,
                                   fresh_fraction=config.fresh_fraction):
            key = (request.cpu, request.workload, request.seed)
            if key not in seen:
                seen.add(key)
                warmers.append(request)
    return warmers


async def warm_traces(submit: Callable,
                      config: LoadGenConfig) -> int:
    """Run each distinct ``(cpu, workload, seed)`` of the ramp's mix
    once, unmeasured, so trace synthesis happens before the clock
    starts.  Returns how many warmers ran."""
    warmers = warm_population(config)
    await asyncio.gather(*(submit(request) for request in warmers))
    return len(warmers)


def _check_slo(step: LoadStep, config: LoadGenConfig) -> None:
    """Stamp the SLO verdict onto *step*."""
    if step.p95_s is not None and step.p95_s > config.slo_p95_s:
        step.violations.append(
            f"p95 {step.p95_s * 1e3:.1f}ms > SLO "
            f"{config.slo_p95_s * 1e3:.1f}ms")
    if step.error_rate > config.slo_error_rate:
        step.violations.append(
            f"error rate {step.error_rate:.3f} > SLO "
            f"{config.slo_error_rate:.3f}")
    step.slo_ok = not step.violations


async def run_breaking_point(submit: Callable,
                             config: Optional[LoadGenConfig] = None,
                             events: Optional[List] = None) -> LoadReport:
    """Ramp offered RPS until the SLO breaks; return the full curve.

    Args:
        submit: ``async (SimRequest) -> SimResponse`` — a service, a
            gateway, or a stub.
        config: ramp and SLO knobs.
        events: a live list of autoscaler
            :class:`~repro.fleet.autoscale.ScalingEvent`\\ s to embed
            (snapshotted after the ramp).
    """
    config = config or LoadGenConfig()
    report = LoadReport(config=config)
    if config.warmup:
        await warm_traces(submit, config)
    if config.closed_requests > 0:
        report.closed_loop = await run_closed_loop(
            submit, step_population(config, config.closed_requests,
                                    seed=config.seed),
            clients=config.closed_clients)
    violations = 0
    for index in range(config.max_steps):
        rps = config.start_rps + index * config.step_rps
        population = step_population(
            config, config.requests_per_step,
            seed=config.seed + index + 1)
        step = await run_step(submit, population, rps)
        _check_slo(step, config)
        report.steps.append(step)
        violations = 0 if step.slo_ok else violations + 1
        if violations >= config.stop_after_violations:
            break
    if events is not None:
        report.scaling_events = [
            e.to_json_dict() if hasattr(e, "to_json_dict") else dict(e)
            for e in events]
    return report


def write_bench(path: Path, payload: Dict[str, object]) -> None:
    """Write the ``BENCH_fleet.json`` record (sorted keys, stable)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
