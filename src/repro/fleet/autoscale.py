"""The fleet's autoscaling control loop.

A small, boring controller — deliberately.  Every decision is made in
:meth:`Autoscaler.step` from one scrape of the nodes'
:mod:`repro.obs` signals (queue depth, in-flight count, p95 latency),
so tests drive it step by step with a
:class:`~repro.testkit.clock.FakeClock` and assert exact decisions;
``run()`` just calls ``step()`` on an interval.

Stability comes from three guards, all tunable:

* **hysteresis** — a single hot (or idle) sample never scales; the
  condition must hold for ``up_breaches`` (``down_breaches``)
  consecutive evaluations.  Scale-down is much slower than scale-up
  by default: under-provisioning costs latency now, over-provisioning
  costs only idle workers.
* **cooldown** — after any action the controller holds still for
  ``cooldown_s``, giving the fleet time to absorb the change before
  it is measured again (otherwise one burst triggers a spawn *per
  evaluation* while the backlog drains).
* **bounds** — ``min_nodes``/``max_nodes`` are enforced structurally
  before any signal is consulted.

Scaling up spawns through the
:class:`~repro.fleet.node.NodeSupervisor` and registers with the
:class:`~repro.fleet.gateway.FleetGateway`; scaling down removes the
victim from the gateway **first** (no new traffic), then drains it
politely so accepted work still completes.  Every action lands in
:attr:`Autoscaler.events` — the scaling-event record the
breaking-point report embeds — and in the gateway registry's
``fleet_scale_events_total{action}`` counter.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.fleet.gateway import FleetGateway
from repro.fleet.node import NodeSupervisor
from repro.service.client import ServiceClient
from repro.service.request import SimRequest
from repro.testkit.clock import SYSTEM_CLOCK


@dataclass
class AutoscalerConfig:
    """Tunables of one :class:`Autoscaler`.

    Attributes:
        min_nodes / max_nodes: hard fleet-size bounds.
        interval_s: delay between ``run()`` evaluations.
        scale_up_queue_depth: mean healthy-node queue depth above
            which the fleet counts as hot.
        scale_up_p95_s: p95 latency (any node) above which the fleet
            counts as hot — the autoscaler's SLO signal.
        scale_down_queue_depth: mean queue depth below which (with no
            meaningful in-flight work) the fleet counts as idle.
        up_breaches: consecutive hot evaluations before scaling up.
        down_breaches: consecutive idle evaluations before scaling
            down (defaults slower than up — see module docstring).
        cooldown_s: hold-still time after any scaling action.
    """

    min_nodes: int = 1
    max_nodes: int = 8
    interval_s: float = 0.5
    scale_up_queue_depth: float = 8.0
    scale_up_p95_s: float = 2.0
    scale_down_queue_depth: float = 0.5
    up_breaches: int = 2
    down_breaches: int = 6
    cooldown_s: float = 3.0


@dataclass
class ScalingEvent:
    """One autoscaler action, as recorded in reports."""

    action: str            # "scale_up" | "scale_down"
    reason: str
    node: str
    fleet_size: int        # size *after* the action
    t_s: float             # seconds since the autoscaler started

    def to_json_dict(self) -> dict:
        """JSON form (breaking-point report)."""
        return {"action": self.action, "reason": self.reason,
                "node": self.node, "fleet_size": self.fleet_size,
                "t_s": round(self.t_s, 3)}


@dataclass
class _Signals:
    """One evaluation's distilled fleet signals."""

    n_reporting: int = 0
    mean_queue_depth: float = 0.0
    total_inflight: float = 0.0
    worst_p95_s: Optional[float] = None


class Autoscaler:
    """Grows and shrinks the fleet from its observed load.

    Args:
        gateway: the fleet's gateway (routing membership + signals).
        supervisor: the node supervisor (spawn/drain).
        config: tunables.
        clock: time source (tests inject a FakeClock).
        warmers: requests driven through every scale-up node *before*
            it joins the ring — production slow-start.  A fresh node's
            first trace syntheses cost seconds each; served cold, they
            read as serving latency on whatever keys remapped to it.
    """

    def __init__(self, gateway: FleetGateway, supervisor: NodeSupervisor,
                 config: Optional[AutoscalerConfig] = None,
                 clock=SYSTEM_CLOCK,
                 warmers: Optional[Sequence[SimRequest]] = None) -> None:
        """See class docstring."""
        self.gateway = gateway
        self.supervisor = supervisor
        self.config = config or AutoscalerConfig()
        self.warmers: List[SimRequest] = list(warmers or [])
        if self.config.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.config.max_nodes < self.config.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        self.clock = clock
        self.events: List[ScalingEvent] = []
        self._m_events = gateway.registry.counter(
            "fleet_scale_events_total", "autoscaler actions, by kind",
            label_names=("action",))
        self._started_at = clock.monotonic()
        self._last_action_at: Optional[float] = None
        self._hot_streak = 0
        self._idle_streak = 0
        self._task: Optional["asyncio.Task"] = None

    # -- decisions ------------------------------------------------------

    def _collect(self, raw: dict) -> _Signals:
        """Distil one fan-out scrape into the decision signals.

        Latency prefers the gateway's ``windowed_p95_latency_s`` when
        that key is reported: the windowed p95 forgets a cold node's
        warm-up as soon as the warm-up leaves the window, where the
        cumulative ``p95_latency_s`` remembers it forever (and held the
        fleet permanently "hot").  A present-but-``None`` windowed
        value means the last window saw no traffic — no latency signal
        at all, rather than a stale cumulative one.
        """
        signals = _Signals()
        depths: List[float] = []
        for entry in raw.values():
            if not isinstance(entry, dict) or "error" in entry:
                continue
            if entry.get("draining"):
                continue
            signals.n_reporting += 1
            depths.append(float(entry.get("queue_depth", 0.0)))
            signals.total_inflight += float(entry.get("inflight", 0.0))
            if "windowed_p95_latency_s" in entry:
                p95 = entry.get("windowed_p95_latency_s")
            else:
                p95 = entry.get("p95_latency_s")
            if p95 is not None and (signals.worst_p95_s is None
                                    or p95 > signals.worst_p95_s):
                signals.worst_p95_s = float(p95)
        if depths:
            signals.mean_queue_depth = sum(depths) / len(depths)
        return signals

    def _in_cooldown(self) -> bool:
        return (self._last_action_at is not None
                and self.clock.monotonic() - self._last_action_at
                < self.config.cooldown_s)

    async def step(self) -> Optional[ScalingEvent]:
        """One evaluation: scrape, decide, (maybe) act.

        Returns the action taken, or None.  Structural bound
        enforcement (below ``min_nodes``) acts even during cooldown —
        replacing dead capacity is not a tuning decision.
        """
        cfg = self.config
        size = len(self.gateway.node_names)
        if size < cfg.min_nodes:
            return await self._scale_up("below min_nodes")
        signals = self._collect(await self.gateway.node_signals())
        hot = (signals.mean_queue_depth > cfg.scale_up_queue_depth
               or (signals.worst_p95_s is not None
                   and signals.worst_p95_s > cfg.scale_up_p95_s))
        idle = (signals.mean_queue_depth <= cfg.scale_down_queue_depth
                and signals.total_inflight < 1.0)
        self._hot_streak = self._hot_streak + 1 if hot else 0
        self._idle_streak = self._idle_streak + 1 if idle else 0
        if self._in_cooldown():
            return None
        if (hot and self._hot_streak >= cfg.up_breaches
                and size < cfg.max_nodes):
            reason = (f"mean queue depth {signals.mean_queue_depth:.1f}"
                      if signals.mean_queue_depth > cfg.scale_up_queue_depth
                      else f"p95 {signals.worst_p95_s:.3f}s over SLO")
            return await self._scale_up(reason)
        if (idle and self._idle_streak >= cfg.down_breaches
                and size > cfg.min_nodes):
            return await self._scale_down(
                f"idle for {self._idle_streak} evaluations")
        return None

    async def _scale_up(self, reason: str) -> ScalingEvent:
        handle = await self.supervisor.spawn()
        if self.warmers:
            await self._warm(handle.host, handle.port)
        self.gateway.add_node(handle.name, handle.host, handle.port)
        return self._record("scale_up", reason, handle.name)

    async def _warm(self, host: str, port: int) -> None:
        """Drive the warm-up population through a node not yet in the
        ring; a node that cannot be warmed still joins (the gateway's
        health loop owns reachability verdicts)."""
        try:
            client = await ServiceClient.connect(host, port)
            try:
                await asyncio.gather(
                    *(client.submit(request) for request in self.warmers))
            finally:
                await client.close()
        except (ConnectionError, OSError, ValueError):
            pass

    async def _scale_down(self, reason: str) -> Optional[ScalingEvent]:
        victim = self._pick_victim()
        if victim is None:
            return None
        # Out of the ring first — no new traffic — then a polite
        # drain so everything the node accepted still completes.
        await self.gateway.remove_node(victim)
        await self.supervisor.drain(victim)
        return self._record("scale_down", reason, victim)

    def _pick_victim(self) -> Optional[str]:
        """Retire the youngest healthy node (LIFO keeps the veterans'
        caches, which are the warmest, in service)."""
        healthy = self.gateway.healthy_nodes
        if not healthy:
            return None
        live = [h.name for h in self.supervisor.nodes
                if h.name in healthy]
        return live[-1] if live else healthy[-1]

    def _record(self, action: str, reason: str, node: str) -> ScalingEvent:
        self._last_action_at = self.clock.monotonic()
        self._hot_streak = 0
        self._idle_streak = 0
        event = ScalingEvent(
            action=action, reason=reason, node=node,
            fleet_size=len(self.gateway.node_names),
            t_s=self.clock.monotonic() - self._started_at)
        self.events.append(event)
        self._m_events.inc(action=action)
        return event

    # -- lifecycle ------------------------------------------------------

    async def run(self) -> None:
        """Evaluate forever on the configured interval (cancellable)."""
        while True:
            await self.clock.sleep(self.config.interval_s)
            await self.step()

    async def start(self) -> "Autoscaler":
        """Run the control loop as a background task; idempotent."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())
        return self

    async def stop(self) -> None:
        """Cancel the background control loop."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
