"""The fleet gateway: one JSON-lines front door over N service nodes.

The gateway speaks the *same* protocol as a single
:class:`~repro.service.server.SimulationService` — a client cannot
tell (and must not care) whether it connected to one node or a fleet.
Behind the socket:

* **Routing** — a :class:`~repro.fleet.ring.ConsistentHashRing` on
  :func:`~repro.fleet.ring.route_key` ``(cpu, workload)`` sends equal
  questions to the same node, keeping that node's ``SuitSystem`` /
  trace / result caches hot and its in-flight dedup effective
  fleet-wide.
* **Forwarding** — per-node pools of pipelined
  :class:`~repro.service.client.ServiceClient` connections; one
  connection carries many concurrent requests.
* **Reroute** — a forward that dies (connection reset, refused,
  timeout) walks the ring's preference order to the next node,
  bounded by ``max_forward_attempts``.  Simulation requests are pure,
  so the resend is safe by construction; every reroute is counted in
  ``fleet_reroutes_total{reason}``.
* **Health** — a background loop pings every node; after
  ``health_fail_threshold`` consecutive failures the node leaves the
  ring (it stays in the member table and rejoins on recovery).
* **Fan-out** — the ``metrics`` and ``trace`` verbs aggregate every
  node's answer next to the gateway's own; Prometheus rendering
  exposes the gateway's fleet families (size, per-node inflight,
  reroutes, forward latency).

Chaos sites (:func:`repro.testkit.chaos.inject`): ``fleet.route`` on
every routing decision, ``fleet.forward`` on every node forward,
``fleet.health`` on every health probe — the hooks
:class:`~repro.fleet.soak.FleetSoak` attacks.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set

from repro import __version__ as REPRO_VERSION
from repro.obs.context import TraceContext, merge_process_traces
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import MetricsRegistry, latency_bounds
from repro.obs.slo import FlightRecorder
from repro.obs.timeseries import histogram_delta, percentile_of
from repro.obs.tracer import get_tracer
from repro.service.client import ServiceClient
from repro.service.request import (
    STATUS_FAILED,
    InvalidRequestError,
    SimRequest,
    SimResponse,
)
from repro.testkit.chaos import inject
from repro.testkit.clock import SYSTEM_CLOCK

#: ``source`` value of responses the gateway failed without an answer.
SOURCE_GATEWAY = "gateway"


@dataclass
class GatewayConfig:
    """Tunables of one :class:`FleetGateway`.

    Attributes:
        max_forward_attempts: distinct nodes tried per request before
            the gateway gives up and fails it explicitly.
        forward_timeout_s: per-forward bound when the request carries
            no deadline (a node that neither answers nor resets must
            not wedge the gateway).
        pool_size: pipelined connections kept per node.
        health_interval_s: delay between health sweeps.
        health_timeout_s: per-probe bound.
        health_fail_threshold: consecutive probe failures that demote
            a node out of the ring.
        ring_replicas: virtual points per node on the hash ring.
    """

    max_forward_attempts: int = 3
    forward_timeout_s: float = 30.0
    pool_size: int = 2
    health_interval_s: float = 0.25
    health_timeout_s: float = 2.0
    health_fail_threshold: int = 2
    ring_replicas: int = 128


class _NodeState:
    """The gateway's book-keeping for one member node."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.healthy = True
        self.consecutive_failures = 0
        self.inflight = 0
        self.clients: List[ServiceClient] = []
        self.next_client = 0
        self.connect_lock = asyncio.Lock()

    def to_json_dict(self) -> dict:
        """Status form."""
        return {"name": self.name, "host": self.host, "port": self.port,
                "healthy": self.healthy, "inflight": self.inflight,
                "consecutive_failures": self.consecutive_failures,
                "connections": len(self.clients)}


class FleetGateway:
    """Routes one logical service's traffic across N nodes.

    Args:
        config: tunables (defaults suit tests and the smoke fleet).
        registry: backing metrics registry; private when omitted so
            two gateways never share series.
        clock: time source (tests inject a
            :class:`~repro.testkit.clock.FakeClock`).
    """

    def __init__(self, config: Optional[GatewayConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        from repro.fleet.ring import ConsistentHashRing

        self.config = config or GatewayConfig()
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ring = ConsistentHashRing(
            replicas=self.config.ring_replicas)
        self._nodes: Dict[str, _NodeState] = {}
        self._health_task: Optional["asyncio.Task"] = None
        self._closed = False
        #: Fleet-level exemplars (slowest / failed requests' trace ids).
        self.flight = FlightRecorder()
        #: Last ``latency_s`` histogram snapshot per node — the delta
        #: base that turns each node's cumulative histogram into the
        #: windowed p95 the autoscaler scales on.
        self._last_node_hist: Dict[str, dict] = {}
        # The fleet metric families, pre-registered so an idle
        # gateway's scrape still shows every series dashboards use.
        reg = self.registry
        self._m_size = reg.gauge("fleet_size", "nodes in the member table")
        self._m_healthy = reg.gauge("fleet_nodes_healthy",
                                    "nodes currently in the routing ring")
        self._m_inflight = reg.gauge(
            "fleet_node_inflight", "requests in flight per node",
            label_names=("node",))
        self._m_requests = reg.counter(
            "fleet_requests_total", "requests seen by the gateway, by verb",
            label_names=("verb",))
        self._m_forwards = reg.counter(
            "fleet_forwards_total", "successful forwards per node",
            label_names=("node",))
        self._m_reroutes = reg.counter(
            "fleet_reroutes_total", "forwards retried on another node",
            label_names=("reason",))
        self._m_health = reg.counter(
            "fleet_health_transitions_total",
            "node health transitions, by new state",
            label_names=("to",))
        self._m_gaveups = reg.counter(
            "fleet_forward_failures_total",
            "requests failed after exhausting every candidate node")
        self._m_latency = reg.histogram(
            "fleet_latency_s", "gateway-observed forward latency",
            bounds=latency_bounds())
        self._m_size.set(0)
        self._m_healthy.set(0)

    # -- membership -----------------------------------------------------

    def add_node(self, name: str, host: str, port: int) -> None:
        """Add a member and put it in the routing ring (idempotent)."""
        if name in self._nodes:
            return
        self._nodes[name] = _NodeState(name, host, port)
        self.ring.add(name)
        self._m_inflight.set(0, node=name)
        self._refresh_gauges()

    async def remove_node(self, name: str) -> None:
        """Remove a member: out of the ring, connections closed."""
        state = self._nodes.pop(name, None)
        self.ring.remove(name)
        self._last_node_hist.pop(name, None)
        if state is not None:
            for client in state.clients:
                await _close_quietly(client)
            state.clients.clear()
        self._refresh_gauges()

    @property
    def node_names(self) -> List[str]:
        """Member names, sorted."""
        return sorted(self._nodes)

    @property
    def healthy_nodes(self) -> List[str]:
        """Names currently in the routing ring, sorted."""
        return sorted(n for n, s in self._nodes.items() if s.healthy)

    def _refresh_gauges(self) -> None:
        self._m_size.set(len(self._nodes))
        self._m_healthy.set(sum(1 for s in self._nodes.values()
                                if s.healthy))

    # -- connections ----------------------------------------------------

    async def _client(self, state: _NodeState) -> ServiceClient:
        """A pooled, connected client of *state* (round-robin).

        A concurrent failure handler may empty the pool between the
        growth check and the pick — retry once, then surface a
        :class:`ConnectionError` (which feeds the reroute path).
        """
        for _ in range(2):
            if len(state.clients) < self.config.pool_size:
                async with state.connect_lock:
                    if len(state.clients) < self.config.pool_size:
                        state.clients.append(await ServiceClient.connect(
                            state.host, state.port))
            clients = list(state.clients)
            if clients:
                state.next_client = (state.next_client + 1) % len(clients)
                return clients[state.next_client]
        raise ConnectionError(f"no connection to node {state.name}")

    async def _drop_connections(self, state: _NodeState) -> None:
        """Forget a node's pooled connections (after a failure)."""
        clients, state.clients = state.clients, []
        for client in clients:
            await _close_quietly(client)

    # -- health ---------------------------------------------------------

    def _mark_unhealthy(self, state: _NodeState) -> None:
        if state.healthy:
            state.healthy = False
            self.ring.remove(state.name)
            self._m_health.inc(to="unhealthy")
            self._refresh_gauges()

    def _mark_healthy(self, state: _NodeState) -> None:
        state.consecutive_failures = 0
        if not state.healthy:
            state.healthy = True
            self.ring.add(state.name)
            self._m_health.inc(to="healthy")
            self._refresh_gauges()

    def _note_forward_failure(self, state: _NodeState) -> None:
        """A failed forward is evidence: demote fast, recover via probes."""
        state.consecutive_failures += 1
        if state.consecutive_failures >= self.config.health_fail_threshold:
            self._mark_unhealthy(state)

    async def check_health_once(self) -> Dict[str, bool]:
        """Probe every member once; returns the health verdicts.

        The background loop calls this on its interval; tests call it
        directly for deterministic health transitions.
        """
        verdicts: Dict[str, bool] = {}
        for name in list(self._nodes):
            state = self._nodes.get(name)
            if state is None:
                continue
            try:
                inject("fleet.health", node=name)
                client = await self._client(state)
                await asyncio.wait_for(client.ping(),
                                       self.config.health_timeout_s)
            except (ConnectionError, OSError, ValueError,
                    asyncio.TimeoutError):
                state.consecutive_failures += 1
                await self._drop_connections(state)
                if (state.consecutive_failures
                        >= self.config.health_fail_threshold):
                    self._mark_unhealthy(state)
            else:
                self._mark_healthy(state)
            verdicts[name] = state.healthy
        return verdicts

    async def _health_loop(self) -> None:
        while True:
            await self.clock.sleep(self.config.health_interval_s)
            await self.check_health_once()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "FleetGateway":
        """Start the background health loop; idempotent."""
        if self._health_task is None:
            self._closed = False
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop())
        return self

    async def close(self) -> None:
        """Stop the health loop and close every pooled connection."""
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for state in self._nodes.values():
            await self._drop_connections(state)

    async def __aenter__(self) -> "FleetGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- the submit path ------------------------------------------------

    async def submit(self, request: SimRequest) -> SimResponse:
        """Answer one request through the fleet; never raises for
        per-request problems (statuses, like the service itself).

        With tracing on, the gateway is where a request's ``trace_id``
        is minted (unless the client already sent one): the forwarded
        frame carries ``trace_id`` plus the gateway span's id as
        ``parent_span``, so every node/worker span downstream — across
        retries and reroutes — stitches under one ``gateway.submit``
        root span.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return await self._submit_inner(request, ctx=None)
        ctx = TraceContext.from_request(request.trace_id,
                                        request.parent_span)
        request = replace(request, trace_id=ctx.trace_id,
                          parent_span=ctx.span_id)
        start_s = tracer.now_s()
        started = self.clock.monotonic()
        response = await self._submit_inner(request, ctx=ctx)
        tracer.complete(
            "gateway.submit", "fleet", ts_s=start_s,
            dur_s=tracer.now_s() - start_s,
            args=ctx.args(proc="gateway", status=response.status,
                          source=response.source))
        self.flight.record(ctx.trace_id,
                           self.clock.monotonic() - started,
                           response.status, source=response.source)
        return response

    async def _submit_inner(self, request: SimRequest,
                            ctx: Optional[TraceContext]) -> SimResponse:
        """The untraced forward path (see :meth:`submit`)."""
        from repro.fleet.ring import route_key

        tracer = get_tracer()
        trace_id = ctx.trace_id if ctx else None
        self._m_requests.inc(verb="submit")
        try:
            request.validate()
        except InvalidRequestError as exc:
            return SimResponse(request=request, status=STATUS_FAILED,
                               error=str(exc), source=SOURCE_GATEWAY)
        if self._closed:
            return SimResponse(request=request, status=STATUS_FAILED,
                               error="gateway is shutting down",
                               source=SOURCE_GATEWAY)
        key = route_key(request.cpu, request.workload)
        try:
            inject("fleet.route", key=key)
            candidates = self._candidates(key)
        except Exception as exc:  # injected routing fault
            self._m_reroutes.inc(reason="route_fault", exemplar=trace_id)
            return SimResponse(request=request, status=STATUS_FAILED,
                               error=f"routing failed: {exc}",
                               source=SOURCE_GATEWAY)
        if not candidates:
            self._m_gaveups.inc()
            return SimResponse(request=request, status=STATUS_FAILED,
                               error="no healthy fleet nodes",
                               source=SOURCE_GATEWAY)
        timeout = (request.deadline_s if request.deadline_s is not None
                   else self.config.forward_timeout_s)
        last_error: Optional[str] = None
        for name in candidates[:self.config.max_forward_attempts]:
            state = self._nodes.get(name)
            if state is None:
                continue
            started = self.clock.monotonic()
            try:
                inject("fleet.forward", node=name)
                client = await self._client(state)
                state.inflight += 1
                self._m_inflight.set(state.inflight, node=name)
                try:
                    response = await asyncio.wait_for(
                        client.submit(request), timeout)
                finally:
                    state.inflight -= 1
                    self._m_inflight.set(state.inflight, node=name)
            except asyncio.TimeoutError:
                last_error = f"node {name} timed out after {timeout:.3f}s"
                self._m_reroutes.inc(reason="timeout", exemplar=trace_id)
                self._note_reroute(ctx, tracer, node=name, reason="timeout")
                self._note_forward_failure(state)
                continue
            except (ConnectionError, OSError) as exc:
                last_error = f"node {name} unreachable: {exc!r}"
                self._m_reroutes.inc(reason="connection", exemplar=trace_id)
                self._note_reroute(ctx, tracer, node=name,
                                   reason="connection")
                await self._drop_connections(state)
                self._note_forward_failure(state)
                continue
            except ValueError as exc:
                # Protocol-level error reply (not a node death): the
                # request itself is the problem; do not reroute it.
                return SimResponse(request=request, status=STATUS_FAILED,
                                   error=str(exc), source=SOURCE_GATEWAY)
            self._m_forwards.inc(node=name)
            self._m_latency.observe(self.clock.monotonic() - started)
            self._mark_healthy(state)
            return response
        self._m_gaveups.inc()
        return SimResponse(
            request=request, status=STATUS_FAILED,
            error="all fleet candidates failed: "
                  + (last_error or "none attempted"),
            source=SOURCE_GATEWAY)

    @staticmethod
    def _note_reroute(ctx: Optional[TraceContext], tracer,
                      node: str, reason: str) -> None:
        """Record a reroute instant inside the request's trace, so the
        merged view shows *why* a span tree hopped nodes."""
        if ctx is not None and tracer.enabled:
            tracer.instant("fleet.reroute", "fleet",
                           args=ctx.args(proc="gateway", node=node,
                                         reason=reason))

    def _candidates(self, key: str) -> List[str]:
        """Forward order for *key*: ring preference, then (only when
        the whole ring is empty) every member as a last resort."""
        ordered = self.ring.preference(key)
        if ordered:
            return ordered
        return sorted(self._nodes)

    # -- fan-out verbs --------------------------------------------------

    async def _fan_out(self, call) -> Dict[str, dict]:
        """Run ``call(client)`` on every member; errors become entries."""
        async def one(state: _NodeState) -> dict:
            try:
                client = await self._client(state)
                return await asyncio.wait_for(
                    call(client), self.config.forward_timeout_s)
            except (ConnectionError, OSError, ValueError,
                    asyncio.TimeoutError) as exc:
                await self._drop_connections(state)
                return {"error": repr(exc)}

        states = list(self._nodes.values())
        answers = await asyncio.gather(*(one(s) for s in states))
        return {state.name: answer
                for state, answer in zip(states, answers)}

    async def metrics(self) -> dict:
        """Aggregated metrics: the gateway's own families plus every
        node's snapshot (unreachable nodes appear as errors)."""
        self._m_requests.inc(verb="metrics")
        nodes = await self._fan_out(lambda c: c.metrics())
        return {"gateway": self.registry.snapshot(), "nodes": nodes}

    def metrics_text(self) -> str:
        """The gateway's fleet families in Prometheus text format."""
        return render_prometheus(self.registry)

    async def trace(self) -> dict:
        """Fan-out of every node's tracer events, plus the merged view.

        Each process's tracer stamps wall timestamps as seconds since
        *its own* creation, so the per-node answers are mutually
        misaligned by process start skew.  The ``merged`` trace rebases
        every answer (and the gateway's own buffer) onto the gateway
        tracer's wall-clock origin via
        :func:`~repro.obs.context.merge_process_traces`, yielding one
        time-aligned Chrome trace with a lane per gateway/node/worker.
        """
        self._m_requests.inc(verb="trace")
        nodes = await self._fan_out(lambda c: c.trace())
        tracer = get_tracer()
        own = tracer.to_chrome_trace()
        processes = [{"name": "gateway",
                      "origin_unix_s": tracer.origin_unix_s,
                      "tracer_id": tracer.tracer_id,
                      "events": own["traceEvents"]}]
        for name in sorted(nodes):
            answer = nodes[name]
            events = answer.get("events")
            if not isinstance(events, list):
                continue  # unreachable node or tracing off
            processes.append({
                "name": str(answer.get("proc") or name),
                "origin_unix_s": float(answer.get("origin_unix_s")
                                       or tracer.origin_unix_s),
                "tracer_id": answer.get("tracer_id"),
                "events": events,
            })
        merged = merge_process_traces(
            processes, base_origin_unix_s=tracer.origin_unix_s)
        return {"nodes": nodes, "merged": merged,
                "origin_unix_s": tracer.origin_unix_s,
                "flight": self.flight.to_json_dict()}

    async def node_signals(self) -> Dict[str, dict]:
        """The autoscaler's inputs, scraped per node.

        Distils each node's ``health`` verb and :mod:`repro.obs`
        metrics snapshot into ``{queue_depth, inflight, p95_latency_s,
        windowed_p95_latency_s, draining}``; unreachable nodes come
        back as ``{"error": ...}`` entries the control loop skips.

        ``p95_latency_s`` reads the node's *cumulative* histogram and
        never forgets a cold warm-up; ``windowed_p95_latency_s`` is the
        p95 of only the observations since the previous scrape (delta
        against the remembered snapshot), and is ``None`` when that
        window saw no traffic or no previous scrape exists — the
        signal the autoscaler prefers.
        """
        async def scrape(client: ServiceClient) -> dict:
            health = await client.health()
            snapshot = await client.metrics()
            hist = snapshot.get("histograms", {}).get("latency_s", {})
            return {
                "queue_depth": float(health.get("queue_depth", 0)),
                "inflight": float(health.get("inflight", 0)),
                "draining": health.get("status") != "ok",
                "p95_latency_s": hist.get("p95"),
                "_latency_hist": hist,
            }

        signals = await self._fan_out(scrape)
        for name, entry in signals.items():
            hist = entry.pop("_latency_hist", None)
            if not isinstance(hist, dict):
                continue
            prev = self._last_node_hist.get(name)
            self._last_node_hist[name] = hist
            entry["windowed_p95_latency_s"] = (
                percentile_of(histogram_delta(hist, prev), 0.95)
                if prev is not None else None)
        return signals

    async def status(self) -> dict:
        """The fleet control-plane view (``status`` verb, CLI)."""
        def flat(counter) -> Dict[str, int]:
            return {labels[0] if labels else "": value
                    for labels, value in counter.series().items()}

        self._m_requests.inc(verb="status")
        return {
            "nodes": [self._nodes[n].to_json_dict()
                      for n in sorted(self._nodes)],
            "healthy": self.healthy_nodes,
            "ring_size": len(self.ring),
            "counters": {
                "requests": flat(self._m_requests),
                "forwards": flat(self._m_forwards),
                "reroutes": flat(self._m_reroutes),
            },
        }


async def _close_quietly(client: ServiceClient) -> None:
    try:
        await client.close()
    except (ConnectionError, OSError, RuntimeError):
        pass


# -- the TCP front-end --------------------------------------------------

async def _handle_gateway_message(gateway: FleetGateway, message: dict,
                                  writer: "asyncio.StreamWriter",
                                  lock: "asyncio.Lock") -> None:
    """Answer one decoded frame on the gateway's front door."""
    msg_id = message.get("id")
    op = message.get("op", "submit")
    try:
        if op == "submit":
            try:
                request = SimRequest.from_dict(message.get("request") or {})
                request.validate()
            except InvalidRequestError as exc:
                out = {"op": "error", "error": str(exc)}
            else:
                response = await gateway.submit(request)
                out = response.to_dict()
                out["op"] = "response"
        elif op == "metrics":
            if message.get("format") == "prometheus":
                out = {"op": "metrics", "format": "prometheus",
                       "text": gateway.metrics_text()}
            else:
                out = {"op": "metrics", "metrics": await gateway.metrics()}
        elif op == "trace":
            out = {"op": "trace"}
            out.update(await gateway.trace())
        elif op == "status":
            out = {"op": "status", "fleet": await gateway.status()}
        elif op == "ping":
            out = {"op": "pong", "version": REPRO_VERSION,
                   "role": "gateway",
                   "fleet_size": len(gateway.node_names)}
        else:
            out = {"op": "error", "error": f"unknown op {op!r}"}
    except Exception as exc:  # an unanswered frame wedges the client
        out = {"op": "error", "error": f"internal gateway error: {exc!r}"}
    if msg_id is not None:
        out["id"] = msg_id
    try:
        async with lock:
            writer.write(json.dumps(out).encode("utf-8") + b"\n")
            await writer.drain()
    except (ConnectionError, RuntimeError):
        pass  # client went away mid-response


async def _handle_gateway_connection(gateway: FleetGateway,
                                     reader: "asyncio.StreamReader",
                                     writer: "asyncio.StreamWriter") -> None:
    """One JSON-lines connection on the front door; frames run
    concurrently, exactly like the single-service server."""
    lock = asyncio.Lock()
    tasks: Set["asyncio.Task"] = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = json.loads(line)
            except ValueError:
                async with lock:
                    writer.write(b'{"op": "error", "error": "bad json"}\n')
                    await writer.drain()
                continue
            if not isinstance(message, dict):
                async with lock:
                    writer.write(b'{"op": "error", '
                                 b'"error": "frame must be a JSON object"}\n')
                    await writer.drain()
                continue
            task = asyncio.get_running_loop().create_task(
                _handle_gateway_message(gateway, message, writer, lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    finally:
        try:
            writer.close()
        except RuntimeError:
            pass


async def start_fleet_server(gateway: FleetGateway,
                             host: str = "127.0.0.1",
                             port: int = 0) -> "asyncio.AbstractServer":
    """Expose *gateway* over JSON-lines TCP (same protocol as a node).

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()[1]``.
    """
    async def handler(reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        await _handle_gateway_connection(gateway, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
