"""The breaking-point benchmark: one harness, CLI and pytest callers.

:func:`run_fleet_bench` builds an in-process fleet (real worker-pool
parallelism when ``use_processes=True``), ramps open-loop load through
the gateway until the SLO breaks (:mod:`repro.fleet.loadgen`), and —
for the scaling claim — repeats the identical ramp against a
single-node fleet through the same gateway path, so the comparison
varies exactly one thing: node count.  The optional autoscaler runs
live during the fleet ramp; its scaling events land in the report.

The payload this returns *is* the ``BENCH_fleet.json`` record:

* ``fleet`` / ``single_node`` — the full breaking-point curves
  (per-step RPS, exact latency percentiles, SLO verdicts).
* ``comparison`` — max sustainable RPS of both targets and their
  ratio; the acceptance bar is ratio > 1 (the fleet must out-serve
  one node on the same mix).
* ``autoscaler`` — bounds and the scaling events the ramp triggered.

Callers: ``python -m repro fleet bench`` (writes the JSON) and
``benchmarks/test_fleet_bench.py`` (asserts the bar; smoke-sized
under ``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.fleet.autoscale import Autoscaler, AutoscalerConfig
from repro.fleet.gateway import FleetGateway, GatewayConfig
from repro.fleet.loadgen import (
    LoadGenConfig,
    LoadReport,
    run_breaking_point,
    warm_population,
    warm_traces,
)
from repro.fleet.node import NodeConfig, NodeSupervisor


@dataclass
class FleetBenchConfig:
    """Knobs of one benchmark run (fleet ramp + single-node baseline).

    Attributes:
        n_nodes: fleet size the scaled ramp starts with.
        use_processes: per-node worker pools as processes — required
            for a fair scaling claim (thread nodes share the GIL).
        n_shards / workers_per_shard: per-node worker-tier topology
            (identical for fleet nodes and the baseline node).
        autoscale: run the autoscaler control loop during the fleet
            ramp (the baseline never autoscales).
        max_nodes: autoscaler growth ceiling (min is ``n_nodes``).
        baseline: also measure the single-node target; False skips it
            (the comparison section then reports only the fleet).
        load: the shared ramp/SLO knobs — both targets get the exact
            same offered-load schedule and request mix.
    """

    n_nodes: int = 3
    use_processes: bool = True
    n_shards: int = 1
    workers_per_shard: int = 2
    autoscale: bool = True
    max_nodes: int = 5
    baseline: bool = True
    load: LoadGenConfig = field(default_factory=LoadGenConfig)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.max_nodes < self.n_nodes:
            raise ValueError("max_nodes must be >= n_nodes")


async def _measure_target(config: FleetBenchConfig, n_nodes: int,
                          autoscale: bool) -> Tuple[LoadReport, dict]:
    """One full breaking-point ramp against an *n_nodes* fleet."""
    supervisor = NodeSupervisor(NodeConfig(
        in_process=True,
        use_processes=config.use_processes,
        n_shards=config.n_shards,
        workers_per_shard=config.workers_per_shard,
    ))
    gateway = FleetGateway(GatewayConfig(health_interval_s=0.25))
    scaler: Optional[Autoscaler] = None
    try:
        for _ in range(n_nodes):
            handle = await supervisor.spawn()
            gateway.add_node(handle.name, handle.host, handle.port)
        await gateway.start()
        # Warm every distinct (cpu, workload, seed) of the ramp's mix
        # *before* the autoscaler watches: the warmup flood is not
        # load, and scaling on it would seed the ramp with a cold node
        # whose first trace syntheses masquerade as serving latency.
        load = config.load
        if load.warmup:
            await warm_traces(gateway.submit, load)
            load = replace(load, warmup=False)
        if autoscale:
            # Scale on queue depth, not the nodes' p95: the node-side
            # latency histogram is cumulative since service start, so
            # the (slow, cold) warm-up pass would read as a permanent
            # SLO breach.  Queue depth is instantaneous.  Scale-up
            # nodes are warmed before they join the ring.
            scaler = Autoscaler(
                gateway, supervisor,
                AutoscalerConfig(
                    min_nodes=n_nodes, max_nodes=config.max_nodes,
                    interval_s=0.25, cooldown_s=2.0,
                    scale_up_p95_s=1e9),
                warmers=warm_population(load))
            await scaler.start()
        report = await run_breaking_point(
            gateway.submit, load,
            events=scaler.events if scaler is not None else None)
        status = await gateway.status()
        return report, status
    finally:
        if scaler is not None:
            await scaler.stop()
        await gateway.close()
        await supervisor.stop_all(drain=True)


def _ratio(fleet: Optional[float],
           single: Optional[float]) -> Optional[float]:
    if fleet is None or single is None or single <= 0:
        return None
    return round(fleet / single, 2)


async def run_fleet_bench(config: Optional[FleetBenchConfig] = None) -> dict:
    """Run the full benchmark; returns the ``BENCH_fleet.json`` payload."""
    config = config or FleetBenchConfig()
    fleet_report, fleet_status = await _measure_target(
        config, config.n_nodes, autoscale=config.autoscale)
    single_report: Optional[LoadReport] = None
    if config.baseline:
        single_report, _ = await _measure_target(config, 1, autoscale=False)

    def r2(value: Optional[float]) -> Optional[float]:
        return None if value is None else round(value, 2)

    fleet_rps = r2(fleet_report.max_sustainable_rps)
    single_rps = (None if single_report is None
                  else r2(single_report.max_sustainable_rps))
    final_nodes: List[dict] = fleet_status.get("nodes", [])
    return {
        "benchmark": "fleet_breaking_point",
        "config": {
            "n_nodes": config.n_nodes,
            "use_processes": config.use_processes,
            "n_shards": config.n_shards,
            "workers_per_shard": config.workers_per_shard,
            "autoscale": config.autoscale,
            "max_nodes": config.max_nodes,
        },
        "fleet": fleet_report.to_json_dict(),
        "single_node": (None if single_report is None
                        else single_report.to_json_dict()),
        "comparison": {
            "fleet_max_sustainable_rps": fleet_rps,
            "single_node_max_sustainable_rps": single_rps,
            "throughput_ratio": _ratio(fleet_rps, single_rps),
        },
        "autoscaler": {
            "enabled": config.autoscale,
            "min_nodes": config.n_nodes,
            "max_nodes": config.max_nodes,
            "events": fleet_report.scaling_events,
            "final_fleet_size": len(final_nodes),
        },
    }


def run_fleet_bench_sync(config: Optional[FleetBenchConfig] = None) -> dict:
    """Synchronous convenience wrapper over :func:`run_fleet_bench`."""
    return asyncio.run(run_fleet_bench(config))
