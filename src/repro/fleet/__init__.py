"""``repro.fleet``: N simulation services behind one logical front door.

SUIT's economics are fleet economics — guardband shaving pays off in
aggregate power across racks of machines, so the serving layer has to
scale horizontally too.  This package promotes the single asyncio
:class:`~repro.service.server.SimulationService` into a fleet:

* :class:`~repro.fleet.ring.ConsistentHashRing` — deterministic
  placement of canonical requests on nodes, keyed on
  ``(cpu, workload)`` so each node's per-process ``SuitSystem`` /
  trace / L1 caches stay hot; removing one of N nodes remaps only
  ~1/N of the key space.
* :class:`~repro.fleet.node.NodeSupervisor` — spawns and drains
  worker-service nodes, either in-process (tests, smoke) or as real
  ``python -m repro serve`` subprocesses.
* :class:`~repro.fleet.gateway.FleetGateway` — the asyncio front-end
  speaking the existing JSON-lines protocol: per-node health checks,
  pooled :class:`~repro.service.client.ServiceClient` connections,
  bounded retry-with-reroute on node failure, and fan-out aggregation
  for the ``metrics`` / ``trace`` verbs.
* :class:`~repro.fleet.autoscale.Autoscaler` — a control loop over
  the nodes' :mod:`repro.obs` signals (queue depth, p95 latency,
  utilization) with hysteresis and min/max bounds.
* :mod:`repro.fleet.loadgen` — the closed+open-loop load harness that
  ramps RPS until SLO violation and writes the ``BENCH_fleet.json``
  breaking-point report.
* :class:`~repro.fleet.soak.FleetSoak` — chaos-over-fleet: kill a
  live node mid-load and let the differential oracle assert the
  gateway rerouted with zero wrong answers.

See ``docs/fleet.md`` for the architecture and operating guide.
"""

from repro.fleet.autoscale import Autoscaler, AutoscalerConfig
from repro.fleet.bench import (
    FleetBenchConfig,
    run_fleet_bench,
    run_fleet_bench_sync,
)
from repro.fleet.gateway import (
    FleetGateway,
    GatewayConfig,
    start_fleet_server,
)
from repro.fleet.loadgen import (
    LoadGenConfig,
    LoadReport,
    LoadStep,
    default_mix,
    run_breaking_point,
    stall_mix,
    write_bench,
)
from repro.fleet.node import NodeConfig, NodeHandle, NodeSupervisor
from repro.fleet.ring import ConsistentHashRing, route_key
from repro.fleet.soak import FleetSoak, FleetSoakConfig, FleetSoakResult

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ConsistentHashRing",
    "FleetBenchConfig",
    "FleetGateway",
    "FleetSoak",
    "FleetSoakConfig",
    "FleetSoakResult",
    "GatewayConfig",
    "LoadGenConfig",
    "LoadReport",
    "LoadStep",
    "NodeConfig",
    "NodeHandle",
    "NodeSupervisor",
    "default_mix",
    "route_key",
    "run_breaking_point",
    "stall_mix",
    "run_fleet_bench",
    "run_fleet_bench_sync",
    "start_fleet_server",
    "write_bench",
]
