"""Fleet nodes and the supervisor that spawns and drains them.

A **node** is one :class:`~repro.service.server.SimulationService`
reachable over the JSON-lines TCP protocol.  The supervisor runs them
in either of two modes:

* **in-process** (``NodeConfig.in_process=True``) — the node's service
  and TCP server live on the supervisor's own event loop.  This is the
  mode of tests, ``make fleet-smoke`` and the breaking-point benchmark:
  zero spawn latency, and with ``use_processes=True`` the nodes still
  get real CPU parallelism from their worker *pools* even though their
  asyncio front-ends share one loop.
* **subprocess** — a real ``python -m repro serve --port 0`` child per
  node, its bound port read back from the startup banner.  This is
  what ``python -m repro fleet serve`` uses: node death is process
  death, exactly what the gateway's reroute path is built for.

Draining is polite in both modes: the node stops admitting, finishes
what it accepted, then goes away (the ``drain`` verb added to the
service protocol for exactly this).  :meth:`NodeSupervisor.kill` is
the impolite version — the chaos scenario's mid-load node loss.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.client import ServiceClient
from repro.service.server import (
    ServiceConfig,
    SimulationService,
    start_tcp_server,
)

#: Node lifecycle states.
STATE_UP = "up"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"


@dataclass
class NodeConfig:
    """How the supervisor builds each worker node.

    Attributes:
        in_process: run nodes on the supervisor's event loop instead
            of spawning ``python -m repro serve`` children.
        use_processes: worker pools as processes (real parallelism)
            vs threads (fast tests); forwarded to the node's
            :class:`~repro.service.server.ServiceConfig`.
        n_shards / workers_per_shard: per-node worker-tier topology.
        max_queue_depth: per-node admission bound.
        max_batch_size / batch_window_s: per-node micro-batching.
        default_timeout_s: per-node request timeout.
        host: bind address of node TCP servers.
        spawn_timeout_s: how long to wait for a subprocess node's
            startup banner before declaring the spawn failed.
    """

    in_process: bool = True
    use_processes: bool = False
    n_shards: int = 1
    workers_per_shard: int = 1
    max_queue_depth: int = 256
    max_batch_size: int = 8
    batch_window_s: float = 0.002
    default_timeout_s: float = 30.0
    host: str = "127.0.0.1"
    spawn_timeout_s: float = 20.0

    def service_config(self) -> ServiceConfig:
        """The node-side :class:`ServiceConfig` this node config implies."""
        return ServiceConfig(
            n_shards=self.n_shards,
            workers_per_shard=self.workers_per_shard,
            use_processes=self.use_processes,
            max_queue_depth=self.max_queue_depth,
            max_batch_size=self.max_batch_size,
            batch_window_s=self.batch_window_s,
            default_timeout_s=self.default_timeout_s,
        )


@dataclass
class NodeHandle:
    """One live (or formerly live) node, however it is hosted.

    Attributes:
        name: stable node name ("node-0", ...) — the ring identity.
        host / port: where the node's JSON-lines server listens.
        state: :data:`STATE_UP` / :data:`STATE_DRAINING` /
            :data:`STATE_STOPPED`.
        service / server: the in-process objects (None for subprocess
            nodes).
        process: the child process (None for in-process nodes).
    """

    name: str
    host: str
    port: int
    state: str = STATE_UP
    service: Optional[SimulationService] = None
    server: Optional["asyncio.AbstractServer"] = None
    process: Optional["asyncio.subprocess.Process"] = None
    #: Live connection writers of an in-process node's TCP server;
    #: :meth:`NodeSupervisor.kill` aborts these so peers see resets.
    connections: set = field(default_factory=set)

    @property
    def address(self) -> str:
        """``host:port`` for logs and status output."""
        return f"{self.host}:{self.port}"

    def to_json_dict(self) -> dict:
        """Status form (fleet ``status`` verb, reports)."""
        return {"name": self.name, "host": self.host, "port": self.port,
                "state": self.state,
                "mode": "subprocess" if self.process is not None
                else "in-process"}


class NodeSupervisor:
    """Spawns, drains and kills the fleet's worker nodes.

    The supervisor owns node *lifecycle* only; membership in the
    routing ring is the gateway's business (the autoscaler wires the
    two together).  Names are handed out sequentially and never
    reused, so a node that died and a node that replaced it are always
    distinguishable in logs and metrics.

    Args:
        config: per-node build recipe.
    """

    def __init__(self, config: Optional[NodeConfig] = None) -> None:
        """See class docstring."""
        self.config = config or NodeConfig()
        self._names = itertools.count()
        self._nodes: Dict[str, NodeHandle] = {}

    @property
    def nodes(self) -> List[NodeHandle]:
        """Handles of every non-stopped node, in spawn order."""
        return [h for h in self._nodes.values() if h.state != STATE_STOPPED]

    def get(self, name: str) -> Optional[NodeHandle]:
        """The handle of *name*, stopped or not."""
        return self._nodes.get(name)

    async def spawn(self) -> NodeHandle:
        """Start one new node and return its handle once reachable."""
        name = f"node-{next(self._names)}"
        if self.config.in_process:
            handle = await self._spawn_in_process(name)
        else:
            handle = await self._spawn_subprocess(name)
        self._nodes[name] = handle
        return handle

    async def _spawn_in_process(self, name: str) -> NodeHandle:
        """An event-loop-resident node: service + ephemeral TCP server."""
        service = SimulationService(self.config.service_config())
        # In-process nodes share the supervisor's global tracer; the
        # node name as the span lane label is what keeps each node a
        # distinct Chrome process in the merged fleet trace.
        service.proc_name = name
        await service.start()
        connections: set = set()
        server = await start_tcp_server(service, host=self.config.host,
                                        port=0, connections=connections)
        port = server.sockets[0].getsockname()[1]
        return NodeHandle(name=name, host=self.config.host, port=port,
                          service=service, server=server,
                          connections=connections)

    async def _spawn_subprocess(self, name: str) -> NodeHandle:
        """A ``python -m repro serve`` child; port read from its banner."""
        cfg = self.config
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", cfg.host, "--port", "0",
                "--shards", str(cfg.n_shards),
                "--workers-per-shard", str(cfg.workers_per_shard),
                "--max-queue", str(cfg.max_queue_depth),
                "--batch-size", str(cfg.max_batch_size),
                "--batch-window-ms", str(cfg.batch_window_s * 1e3),
                "--timeout", str(cfg.default_timeout_s),
                "--no-cache"]
        if not cfg.use_processes:
            argv.append("--inline")
        process = await asyncio.create_subprocess_exec(
            *argv, stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL)
        try:
            assert process.stdout is not None
            banner = await asyncio.wait_for(process.stdout.readline(),
                                            cfg.spawn_timeout_s)
            # "repro service listening on 127.0.0.1:PORT  [...]"
            text = banner.decode("utf-8", "replace")
            marker = "listening on "
            start = text.index(marker) + len(marker)
            address = text[start:].split()[0]
            port = int(address.rsplit(":", 1)[1])
        except (asyncio.TimeoutError, ValueError, IndexError) as exc:
            process.kill()
            raise RuntimeError(
                f"node {name} failed to start: no banner ({exc})") from exc
        return NodeHandle(name=name, host=cfg.host, port=port,
                          process=process)

    async def drain(self, name: str, timeout_s: float = 30.0) -> None:
        """Politely retire node *name*: stop admitting, finish, stop.

        Safe to call on an already stopped node (no-op).
        """
        handle = self._nodes.get(name)
        if handle is None or handle.state == STATE_STOPPED:
            return
        handle.state = STATE_DRAINING
        if handle.service is not None:
            if handle.server is not None:
                handle.server.close()
                await handle.server.wait_closed()
            await handle.service.stop(drain=True, timeout_s=timeout_s)
        elif handle.process is not None:
            try:
                client = await ServiceClient.connect(handle.host,
                                                     handle.port)
                try:
                    await asyncio.wait_for(client.drain(), timeout_s)
                finally:
                    await client.close()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass  # unreachable node: escalate to termination below
            handle.process.terminate()
            try:
                await asyncio.wait_for(handle.process.wait(), timeout_s)
            except asyncio.TimeoutError:
                handle.process.kill()
                await handle.process.wait()
        handle.state = STATE_STOPPED

    async def kill(self, name: str) -> None:
        """Abruptly take node *name* down — the chaos scenario.

        In-process nodes lose their TCP server and their service
        without a drain (in-flight work is failed, exactly what an
        OS-level kill does to connections); subprocess nodes get
        SIGKILL.
        """
        handle = self._nodes.get(name)
        if handle is None or handle.state == STATE_STOPPED:
            return
        if handle.service is not None:
            if handle.server is not None:
                handle.server.close()
                await handle.server.wait_closed()
            # Reset established connections the way a process death
            # would — peers must see ConnectionResetError, not a
            # polite shutdown answer.
            for writer in list(handle.connections):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            handle.connections.clear()
            await handle.service.stop(drain=False, timeout_s=1.0)
        elif handle.process is not None:
            handle.process.kill()
            await handle.process.wait()
        handle.state = STATE_STOPPED

    async def stop_all(self, drain: bool = True) -> None:
        """Retire every node (politely by default)."""
        for handle in list(self._nodes.values()):
            if handle.state == STATE_STOPPED:
                continue
            if drain:
                await self.drain(handle.name)
            else:
                await self.kill(handle.name)
