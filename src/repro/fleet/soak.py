"""Chaos-over-fleet: kill a live node mid-load, demand right answers.

:class:`FleetSoak` is the fleet's acceptance experiment, the
fleet-shaped sibling of :class:`repro.testkit.soak.ChaosSoak`.  It
builds a real in-process fleet (N
:class:`~repro.service.server.SimulationService` nodes behind one
:class:`~repro.fleet.gateway.FleetGateway`), computes the
differential oracle's chaos-free scalar reference, then drives
canonical bursts through the gateway while:

* a deterministic :class:`~repro.testkit.chaos.FaultPlan` fires on the
  gateway's own sites (``fleet.route``, ``fleet.forward``,
  ``fleet.health``), and
* one live node is **killed mid-burst** — TCP server gone, service
  stopped without a drain, connections reset under in-flight requests.

The verdict is the oracle's: explicit failures (the gateway saying
"all fleet candidates failed") are *degraded* and tolerated; an ``ok``
answer whose payload differs from the scalar reference is *silent
corruption* and fails the soak.  A healthy gateway should in fact
degrade nothing — the killed node's in-flight requests surface as
connection errors, the reroute path resends them on a sibling node
(simulations are pure, so the resend is safe), and the burst completes
with zero wrong **and** zero lost answers.  ``require_all_ok`` makes
the stricter claim part of the verdict.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fleet.gateway import FleetGateway, GatewayConfig
from repro.fleet.node import NodeConfig, NodeSupervisor
from repro.testkit.chaos import ChaosController, FaultPlan, FaultSpec
from repro.testkit.oracle import ChannelReport, DifferentialOracle


@dataclass
class FleetSoakConfig:
    """Knobs of one fleet soak run.

    Attributes:
        seed: master seed — fixes the canonical request set and the
            fault schedule.
        n_nodes: fleet size at the start of the run.
        n_requests: canonical request-set size per burst.
        bursts: how many bursts to drive through the gateway.
        kill_node: kill one live node mid-burst (the scenario's
            centrepiece; False leaves the fleet intact).
        kill_burst: zero-based burst index the kill lands in.
        kill_delay_s: head start the victim burst gets before the node
            dies, so the kill meets genuinely in-flight requests.
        forward_fault_rate: P(injected ConnectionResetError) per
            ``fleet.forward`` — reroutes beyond the ones the kill
            itself causes.
        health_fault_rate: P(injected OSError) per ``fleet.health``
            probe.
        horizon: invocation-index horizon of the fault plan.
        require_all_ok: fold "every answer was ok" into the verdict —
            the gateway must absorb the kill with zero degraded
            answers, not merely zero wrong ones.
        max_forward_attempts: gateway reroute budget.
        use_processes: node worker pools as processes (real
            parallelism) vs threads (fast tests).
    """

    seed: int = 0
    n_nodes: int = 3
    n_requests: int = 8
    bursts: int = 4
    kill_node: bool = True
    kill_burst: int = 1
    kill_delay_s: float = 0.01
    forward_fault_rate: float = 0.0
    health_fault_rate: float = 0.0
    horizon: int = 10_000
    require_all_ok: bool = True
    max_forward_attempts: int = 3
    use_processes: bool = False

    def fault_specs(self) -> List[FaultSpec]:
        """The armed gateway-site faults (zero rates drop out)."""
        armed = [
            FaultSpec("fleet.forward", "raise", self.forward_fault_rate,
                      exception="ConnectionResetError"),
            FaultSpec("fleet.health", "raise", self.health_fault_rate,
                      exception="OSError"),
        ]
        return [spec for spec in armed if spec.rate > 0]

    def build_plan(self) -> Optional[FaultPlan]:
        """The deterministic fault plan, or None when nothing is armed."""
        specs = self.fault_specs()
        if not specs:
            return None
        return FaultPlan.generate(self.seed, specs, self.horizon)


@dataclass
class FleetSoakResult:
    """Everything one fleet soak produced."""

    config: FleetSoakConfig
    bursts: int = 0
    wall_time_s: float = 0.0
    killed_node: Optional[str] = None
    channels: List[ChannelReport] = field(default_factory=list)
    reroutes: Dict[str, int] = field(default_factory=dict)
    #: Latest trace id attached to each reroute reason (tracing on);
    #: the link from "a reroute happened" to the affected span tree.
    reroute_exemplars: Dict[str, str] = field(default_factory=dict)
    health_transitions: Dict[str, int] = field(default_factory=dict)
    chaos_report: dict = field(default_factory=dict)
    fleet_status: dict = field(default_factory=dict)

    @property
    def wrong_answers(self) -> int:
        """Silent corruptions across every burst (must be zero)."""
        return sum(c.wrong for c in self.channels)

    @property
    def degraded_answers(self) -> int:
        """Explicit failures across every burst."""
        return sum(c.degraded for c in self.channels)

    @property
    def passed(self) -> bool:
        """The soak verdict (see :class:`FleetSoakConfig`)."""
        if self.bursts < 1 or self.wrong_answers:
            return False
        if self.config.require_all_ok and self.degraded_answers:
            return False
        return True

    def to_json_dict(self) -> dict:
        """The JSON report of the run."""
        return {
            "passed": self.passed,
            "seed": self.config.seed,
            "bursts": self.bursts,
            "wall_time_s": round(self.wall_time_s, 3),
            "killed_node": self.killed_node,
            "summary": {
                "checked": sum(c.checked for c in self.channels),
                "ok": sum(c.ok for c in self.channels),
                "degraded": self.degraded_answers,
                "wrong_answers": self.wrong_answers,
                "reroutes": self.reroutes,
                "reroute_exemplars": self.reroute_exemplars,
                "health_transitions": self.health_transitions,
            },
            "channels": [c.to_json_dict() for c in self.channels],
            "chaos": self.chaos_report,
            "fleet_status": self.fleet_status,
        }


def _label_totals(series: Dict[tuple, int]) -> Dict[str, int]:
    """Collapse a one-label counter's series to ``{label_value: n}``."""
    return {labels[0] if labels else "": value
            for labels, value in series.items()}


class FleetSoak:
    """Runs one fleet soak (see module docstring).

    Args:
        config: the soak's knobs.
    """

    def __init__(self, config: Optional[FleetSoakConfig] = None) -> None:
        """See class docstring."""
        self.config = config or FleetSoakConfig()
        if self.config.n_nodes < 2 and self.config.kill_node:
            raise ValueError("killing a node needs n_nodes >= 2")

    async def run(self) -> FleetSoakResult:
        """Execute the soak; always tears chaos and the fleet down."""
        cfg = self.config
        oracle = DifferentialOracle(DifferentialOracle.canonical_requests(
            n=cfg.n_requests, seed=cfg.seed))
        # The yardstick first, before any fault can fire.
        oracle.reference()

        result = FleetSoakResult(config=cfg)
        plan = cfg.build_plan()
        controller = ChaosController(plan) if plan is not None else None
        supervisor = NodeSupervisor(NodeConfig(
            in_process=True, use_processes=cfg.use_processes))
        gateway = FleetGateway(GatewayConfig(
            max_forward_attempts=cfg.max_forward_attempts,
            forward_timeout_s=30.0,
            health_interval_s=0.05))
        started = time.monotonic()
        if controller is not None:
            # In-process fleet: no child processes to export the plan to.
            controller.activate(export=False)
        try:
            for _ in range(cfg.n_nodes):
                handle = await supervisor.spawn()
                gateway.add_node(handle.name, handle.host, handle.port)
            await gateway.start()
            for burst in range(cfg.bursts):
                if cfg.kill_node and burst == cfg.kill_burst:
                    result.channels.append(
                        await self._burst_with_kill(oracle, gateway,
                                                    supervisor, result))
                else:
                    result.channels.append(
                        await oracle.check_service(gateway))
                result.bursts += 1
            result.reroutes = _label_totals(gateway._m_reroutes.series())
            result.reroute_exemplars = {
                labels[0] if labels else "": trace_id
                for labels, trace_id in gateway._m_reroutes.exemplars().items()
                if trace_id}
            result.health_transitions = _label_totals(
                gateway._m_health.series())
            result.fleet_status = await gateway.status()
        finally:
            await gateway.close()
            await supervisor.stop_all(drain=True)
            if controller is not None:
                result.chaos_report = controller.report()
                controller.cleanup()
        result.wall_time_s = time.monotonic() - started
        return result

    async def _burst_with_kill(self, oracle: DifferentialOracle,
                               gateway: FleetGateway,
                               supervisor: NodeSupervisor,
                               result: FleetSoakResult) -> ChannelReport:
        """One burst with a node killed while its requests are in flight."""
        burst = asyncio.get_running_loop().create_task(
            oracle.check_service(gateway))
        await asyncio.sleep(self.config.kill_delay_s)
        victim = self._pick_victim(gateway, supervisor)
        if victim is not None:
            await supervisor.kill(victim)
            result.killed_node = victim
        return await burst

    def _pick_victim(self, gateway: FleetGateway,
                     supervisor: NodeSupervisor) -> Optional[str]:
        """A currently-routable node with in-flight work if any has it
        (killing an idle node would not test the reroute path)."""
        healthy = set(gateway.healthy_nodes)
        live = [h.name for h in supervisor.nodes if h.name in healthy]
        if not live:
            return None
        loaded = [name for name in live
                  if gateway._nodes[name].inflight > 0]
        return (loaded or live)[0]
