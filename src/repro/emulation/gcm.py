"""AES-128-GCM built from the faultable-instruction primitives.

The Nginx workload of the paper is HTTPS, i.e. AES-GCM records: counter-
mode AES (AESENC bursts) plus GHASH authentication (carry-less
multiplies).  This module assembles the real mode of operation from the
emulation layer's AESENC and CLMUL primitives, following NIST SP 800-38D:
GHASH over the bit-reflected GF(2^128), J0 counter formation, and the
length block.  The recorded TLS-server program uses the same pieces; the
full mode here also gives the fault-attack demos an authenticated-mode
target (a corrupted AESENC round breaks the tag).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.emulation.aes import aes128_encrypt_block
from repro.emulation.clmul import clmul64

_MASK128 = (1 << 128) - 1
#: GHASH reduction polynomial in the bit-reflected domain.
_R = 0xE1000000000000000000000000000000


def _bytes_to_int(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes(16, "big")


def ghash_mul(x: int, h: int) -> int:
    """GF(2^128) multiply in GHASH's bit-reflected representation
    (NIST SP 800-38D algorithm 1), built on shift/xor like the
    PCLMULQDQ+reduction sequence real code uses."""
    if not 0 <= x <= _MASK128 or not 0 <= h <= _MASK128:
        raise ValueError("operands must be 128-bit")
    z = 0
    v = h
    for i in range(128):
        if (x >> (127 - i)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h: int, data: bytes) -> int:
    """GHASH of *data* (zero-padded to blocks) under hash key *h*."""
    y = 0
    for off in range(0, len(data), 16):
        block = data[off: off + 16].ljust(16, b"\0")
        y = ghash_mul(y ^ _bytes_to_int(block), h)
    return y


def _inc32(counter: bytes) -> bytes:
    prefix, ctr = counter[:12], int.from_bytes(counter[12:], "big")
    return prefix + ((ctr + 1) & 0xFFFFFFFF).to_bytes(4, "big")


class Aes128Gcm:
    """AES-128-GCM authenticated encryption.

    Args:
        key: 16-byte key.

    The implementation is the spec construction over the repository's
    own AES primitives — slow, clear, and byte-exact (validated against
    roundtrip, tamper and cross-implementation properties in the tests).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128-GCM keys are 16 bytes")
        self._key = key
        self._h = _bytes_to_int(aes128_encrypt_block(b"\0" * 16, key))

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == 12:
            return nonce + b"\x00\x00\x00\x01"
        pad = ghash(self._h, nonce.ljust((len(nonce) + 15) // 16 * 16, b"\0")
                    + b"\0" * 8 + (8 * len(nonce)).to_bytes(8, "big"))
        return _int_to_bytes(pad)

    def _ctr_stream(self, j0: bytes, length: int) -> bytes:
        out = bytearray()
        counter = j0
        for _ in range((length + 15) // 16):
            counter = _inc32(counter)
            out.extend(aes128_encrypt_block(counter, self._key))
        return bytes(out[:length])

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        def padded(data: bytes) -> bytes:
            return data.ljust((len(data) + 15) // 16 * 16, b"\0") if data else b""

        lengths = ((8 * len(aad)).to_bytes(8, "big")
                   + (8 * len(ciphertext)).to_bytes(8, "big"))
        s = ghash(self._h, padded(aad) + padded(ciphertext) + lengths)
        e_j0 = aes128_encrypt_block(j0, self._key)
        return _int_to_bytes(s ^ _bytes_to_int(e_j0))

    def encrypt(self, nonce: bytes, plaintext: bytes,
                aad: bytes = b"") -> Tuple[bytes, bytes]:
        """Returns (ciphertext, 16-byte tag)."""
        j0 = self._j0(nonce)
        stream = self._ctr_stream(j0, len(plaintext))
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, stream))
        return ciphertext, self._tag(j0, aad, ciphertext)

    def decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> Optional[bytes]:
        """Returns the plaintext, or None when authentication fails."""
        j0 = self._j0(nonce)
        if self._tag(j0, aad, ciphertext) != tag:
            return None
        stream = self._ctr_stream(j0, len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, stream))


def ghash_mul_via_clmul(x: int, h: int) -> int:
    """GHASH multiply computed the way AES-NI code does: bit-reflect,
    four CLMULs (Karatsuba), reduce, reflect back.  Must agree with
    :func:`ghash_mul` — the cross-check the tests pin."""
    def reflect(v: int) -> int:
        return int(format(v, "0128b")[::-1], 2)

    a, b = reflect(x), reflect(h)
    a_lo, a_hi = a & (2 ** 64 - 1), a >> 64
    b_lo, b_hi = b & (2 ** 64 - 1), b >> 64
    lo = clmul64(a_lo, b_lo)
    hi = clmul64(a_hi, b_hi)
    mid = clmul64(a_lo ^ a_hi, b_lo ^ b_hi) ^ lo ^ hi
    product = (hi << 128) ^ (mid << 64) ^ lo
    # In the reflected (polynomial) domain this is a plain carry-less
    # product; reduce modulo x^128 + x^7 + x^2 + x + 1 and reflect back.
    poly = (1 << 128) | 0x87
    while product.bit_length() > 128:
        product ^= poly << (product.bit_length() - 129)
    return reflect(product)
