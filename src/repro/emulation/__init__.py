"""User-space instruction emulation (paper section 3.4).

When SUIT handles a #DO exception by emulation, the kernel returns into
emulation code mapped into the user process, which computes the trapped
instruction's result with *non-faultable* scalar instructions — e.g.
``VOR`` with general-purpose ORs, and ``AESENC`` with a table-free,
side-channel-resilient AES round.  This package implements those
emulators functionally (so they can be tested against reference
semantics) plus the cycle-cost model the simulator charges.
"""

from repro.emulation.vector import Vec128
from repro.emulation.aes import (
    aesenc,
    aes128_expand_key,
    aes128_encrypt_block,
    sbox_lookup,
)
from repro.emulation.bitsliced_aes import (
    sbox_constant_time,
    aesenc_constant_time,
    aes128_encrypt_block_ct,
)
from repro.emulation.aes_decrypt import (
    aesdec,
    aesdeclast,
    aesimc,
    aes128_decrypt_block,
)
from repro.emulation.gcm import Aes128Gcm, ghash_mul
from repro.emulation.clmul import clmul64, pclmulqdq
from repro.emulation.dispatch import (
    emulate,
    emulation_cycles,
    EMULATION_CYCLE_COSTS,
)

__all__ = [
    "Vec128",
    "aesenc",
    "aes128_expand_key",
    "aes128_encrypt_block",
    "sbox_lookup",
    "sbox_constant_time",
    "aesenc_constant_time",
    "aes128_encrypt_block_ct",
    "aesdec",
    "aesdeclast",
    "aesimc",
    "aes128_decrypt_block",
    "Aes128Gcm",
    "ghash_mul",
    "clmul64",
    "pclmulqdq",
    "emulate",
    "emulation_cycles",
    "EMULATION_CYCLE_COSTS",
]
