"""Table-free, side-channel-resilient AES round (paper section 3.4).

SUIT emulates ``AESENC`` with a *bit-sliced* AES implementation: no
secret-indexed table lookups, so the emulation cannot reintroduce the
cache side channel AES-NI was designed to close.

The S-box here is computed arithmetically as ``affine(x^254)`` in
GF(2^8): the inverse via square-and-multiply (13 GF multiplications, all
data-independent) followed by the AES affine map.  Every operation is a
fixed sequence of shifts, ANDs and XORs with no secret-dependent control
flow or memory access — the same property real bit-sliced
implementations provide, in the clearest-possible Python form.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.emulation.aes import _mix_columns, _shift_rows
from repro.emulation.vector import Vec128


def _gf_mul(a: int, b: int) -> int:
    """Constant-time-style GF(2^8) multiply (fixed 8-iteration loop)."""
    result = 0
    for _ in range(8):
        result ^= a * (b & 1)  # branch-free select
        b >>= 1
        high = (a >> 7) & 1
        a = ((a << 1) & 0xFF) ^ (0x1B * high)
    return result & 0xFF


def _gf_inverse(x: int) -> int:
    """x^254 = x^-1 in GF(2^8) (0 maps to 0), by square-and-multiply.

    Addition-chain exponentiation with a fixed operation sequence.
    """
    x2 = _gf_mul(x, x)          # x^2
    x3 = _gf_mul(x2, x)         # x^3
    x6 = _gf_mul(x3, x3)        # x^6
    x12 = _gf_mul(x6, x6)       # x^12
    x15 = _gf_mul(x12, x3)      # x^15
    x30 = _gf_mul(x15, x15)     # x^30
    x60 = _gf_mul(x30, x30)     # x^60
    x120 = _gf_mul(x60, x60)    # x^120
    x126 = _gf_mul(x120, x6)    # x^126
    x252 = _gf_mul(x126, x126)  # x^252
    return _gf_mul(x252, x2)    # x^254


def _affine(x: int) -> int:
    """The AES affine transformation over GF(2)."""
    result = 0
    for i in range(8):
        bit = ((x >> i) ^ (x >> ((i + 4) % 8)) ^ (x >> ((i + 5) % 8))
               ^ (x >> ((i + 6) % 8)) ^ (x >> ((i + 7) % 8)) ^ (0x63 >> i)) & 1
        result |= bit << i
    return result


def sbox_constant_time(x: int) -> int:
    """The AES S-box computed without any table lookup."""
    return _affine(_gf_inverse(x & 0xFF))


def _sub_bytes_ct(state: Sequence[int]) -> List[int]:
    return [sbox_constant_time(b) for b in state]


def aesenc_constant_time(state: Vec128, round_key: Vec128) -> Vec128:
    """AESENC computed with the table-free S-box.

    Bit-for-bit equivalent to :func:`repro.emulation.aes.aesenc`.
    """
    s = list(state.to_bytes())
    s = _shift_rows(s)
    s = _sub_bytes_ct(s)
    s = _mix_columns(s)
    mixed = Vec128.from_bytes(bytes(s))
    return Vec128(mixed.value ^ round_key.value)


def aesenclast_constant_time(state: Vec128, round_key: Vec128) -> Vec128:
    """AESENCLAST with the table-free S-box."""
    s = list(state.to_bytes())
    s = _shift_rows(s)
    s = _sub_bytes_ct(s)
    subbed = Vec128.from_bytes(bytes(s))
    return Vec128(subbed.value ^ round_key.value)


def aes128_encrypt_block_ct(block: bytes, key: bytes) -> bytes:
    """AES-128 block encryption using only table-free rounds."""
    from repro.emulation.aes import aes128_expand_key  # local: avoid cycle at import

    if len(block) != 16:
        raise ValueError("AES blocks are 16 bytes")
    keys = aes128_expand_key(key)
    state = Vec128(Vec128.from_bytes(block).value ^ keys[0].value)
    for r in range(1, 10):
        state = aesenc_constant_time(state, keys[r])
    state = aesenclast_constant_time(state, keys[10])
    return state.to_bytes()
