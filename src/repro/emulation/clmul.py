"""Carry-less multiplication (VPCLMULQDQ emulation).

``PCLMULQDQ`` multiplies two 64-bit operands as polynomials over GF(2),
producing a 128-bit product — the core of GHASH (AES-GCM) and CRC
computations.  The scalar emulation is shift-and-xor.
"""

from __future__ import annotations

from repro.emulation.vector import Vec128

_MASK64 = (1 << 64) - 1


def clmul64(a: int, b: int) -> int:
    """Carry-less 64x64 -> 128 bit multiply.

    Args:
        a, b: unsigned 64-bit operands.
    """
    if not 0 <= a <= _MASK64 or not 0 <= b <= _MASK64:
        raise ValueError("operands must be unsigned 64-bit")
    result = 0
    while b:
        low = b & -b  # lowest set bit
        result ^= a * low  # multiplying by a power of two = shift
        b ^= low
    return result


def pclmulqdq(a: Vec128, b: Vec128, imm8: int) -> Vec128:
    """The PCLMULQDQ instruction.

    ``imm8`` bit 0 selects the lane of *a*, bit 4 the lane of *b*.
    """
    lane_a = a.u64()[imm8 & 1]
    lane_b = b.u64()[(imm8 >> 4) & 1]
    return Vec128(clmul64(lane_a, lane_b))


def gf128_reduce(x: int) -> int:
    """Reduce a 256-bit carry-less product modulo the GHASH polynomial
    ``x^128 + x^7 + x^2 + x + 1`` (bit-reflected convention omitted:
    this is the plain polynomial view used for testing algebra)."""
    poly = (1 << 128) | 0x87  # x^128 + x^7 + x^2 + x + 1 (low form 0x87)
    while x.bit_length() > 128:
        shift = x.bit_length() - 129
        x ^= poly << shift
    return x


def gf128_mul(a: int, b: int) -> int:
    """GF(2^128) multiplication via two carry-less halves + reduction."""
    if not 0 <= a < (1 << 128) or not 0 <= b < (1 << 128):
        raise ValueError("operands must be 128-bit")
    a_lo, a_hi = a & _MASK64, a >> 64
    b_lo, b_hi = b & _MASK64, b >> 64
    lo = clmul64(a_lo, b_lo)
    hi = clmul64(a_hi, b_hi)
    mid = clmul64(a_lo ^ a_hi, b_lo ^ b_hi) ^ lo ^ hi  # Karatsuba middle
    product = (hi << 128) ^ (mid << 64) ^ lo
    return gf128_reduce(product)
