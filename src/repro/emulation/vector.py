"""128-bit vector values and scalar emulations of the Table 1 SIMD ops.

A :class:`Vec128` wraps one XMM register value (an unsigned 128-bit
integer) and implements the faultable SIMD instructions with plain
integer arithmetic — exactly what SUIT's user-space emulation code does
with non-vectorised instructions.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import List, Sequence

_MASK128 = (1 << 128) - 1
_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1


@dataclass(frozen=True)
class Vec128:
    """One 128-bit SIMD register value.

    Attributes:
        value: the register contents as an unsigned 128-bit integer,
            lane 0 in the least significant bits (little-endian lanes,
            as on x86).
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MASK128:
            raise ValueError("Vec128 value outside 128-bit range")

    # --- lane views -----------------------------------------------------

    @classmethod
    def from_u64(cls, lanes: Sequence[int]) -> "Vec128":
        """Build from two 64-bit lanes (lane 0 first)."""
        if len(lanes) != 2:
            raise ValueError("need exactly 2 lanes")
        v = 0
        for i, lane in enumerate(lanes):
            v |= (lane & _MASK64) << (64 * i)
        return cls(v)

    @classmethod
    def from_u32(cls, lanes: Sequence[int]) -> "Vec128":
        """Build from four 32-bit lanes (lane 0 first)."""
        if len(lanes) != 4:
            raise ValueError("need exactly 4 lanes")
        v = 0
        for i, lane in enumerate(lanes):
            v |= (lane & _MASK32) << (32 * i)
        return cls(v)

    @classmethod
    def from_f64(cls, lanes: Sequence[float]) -> "Vec128":
        """Build from two float64 lanes."""
        if len(lanes) != 2:
            raise ValueError("need exactly 2 lanes")
        raw = [struct.unpack("<Q", struct.pack("<d", x))[0] for x in lanes]
        return cls.from_u64(raw)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Vec128":
        """Build from 16 little-endian bytes."""
        if len(data) != 16:
            raise ValueError("need exactly 16 bytes")
        return cls(int.from_bytes(data, "little"))

    def u64(self) -> List[int]:
        """The two unsigned 64-bit lanes, lane 0 first."""
        return [(self.value >> (64 * i)) & _MASK64 for i in range(2)]

    def u32(self) -> List[int]:
        """The four unsigned 32-bit lanes, lane 0 first."""
        return [(self.value >> (32 * i)) & _MASK32 for i in range(4)]

    def i32(self) -> List[int]:
        """The four lanes interpreted as signed 32-bit integers."""
        return [x - (1 << 32) if x >= (1 << 31) else x for x in self.u32()]

    def f64(self) -> List[float]:
        """The two float64 lanes."""
        return [struct.unpack("<d", struct.pack("<Q", x))[0] for x in self.u64()]

    def to_bytes(self) -> bytes:
        """The register as 16 little-endian bytes."""
        return self.value.to_bytes(16, "little")


# --- scalar emulations of the faultable SIMD instructions ---------------


def vor(a: Vec128, b: Vec128) -> Vec128:
    """VOR / VPOR: bitwise OR."""
    return Vec128(a.value | b.value)


def vand(a: Vec128, b: Vec128) -> Vec128:
    """VAND / VPAND: bitwise AND."""
    return Vec128(a.value & b.value)


def vandn(a: Vec128, b: Vec128) -> Vec128:
    """VANDN / VPANDN: ``(~a) & b`` (x86 operand order)."""
    return Vec128((~a.value & _MASK128) & b.value)


def vxor(a: Vec128, b: Vec128) -> Vec128:
    """VXOR / VPXOR: bitwise XOR."""
    return Vec128(a.value ^ b.value)


def vpaddq(a: Vec128, b: Vec128) -> Vec128:
    """VPADDQ: lane-wise 64-bit addition with wraparound."""
    return Vec128.from_u64([(x + y) & _MASK64 for x, y in zip(a.u64(), b.u64())])


def vpmaxsd(a: Vec128, b: Vec128) -> Vec128:
    """VPMAXSD: lane-wise signed 32-bit maximum."""
    return Vec128.from_u32([max(x, y) & _MASK32 for x, y in zip(a.i32(), b.i32())])


def vpcmpeqd(a: Vec128, b: Vec128) -> Vec128:
    """VPCMPEQD: lane-wise 32-bit equality, all-ones on match."""
    return Vec128.from_u32([_MASK32 if x == y else 0 for x, y in zip(a.u32(), b.u32())])


def vpsrad(a: Vec128, count: int) -> Vec128:
    """VPSRAD: lane-wise 32-bit arithmetic shift right by *count*.

    Counts of 32 or more saturate to the sign fill, as on hardware.
    """
    if count < 0:
        raise ValueError("shift count must be non-negative")
    count = min(count, 31) if count < 32 else 31
    return Vec128.from_u32([(x >> count) & _MASK32 for x in a.i32()])


def vsqrtpd(a: Vec128) -> Vec128:
    """VSQRTPD: lane-wise float64 square root.

    Negative inputs produce NaN (a quiet default NaN), like the IEEE
    default-exception behaviour hardware uses.
    """
    out = []
    for x in a.f64():
        if x < 0 or math.isnan(x):
            out.append(float("nan"))
        else:
            out.append(math.sqrt(x))
    return Vec128.from_f64(out)
