"""AES decryption: AESDEC/AESDECLAST and the equivalent inverse cipher.

The AES-NI decryption instructions mirror the encryption ones with the
inverse transformations: ``AESDEC`` computes
``InvMixColumns(InvSubBytes(InvShiftRows(state))) xor rk`` and is used
with the *equivalent inverse cipher* key schedule (round keys in
reverse order, InvMixColumns applied to the middle ones).  They share
IMUL-free datapaths with AESENC and belong to the same fault class.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.emulation.aes import SBOX, _xtime, aes128_expand_key
from repro.emulation.vector import Vec128

#: The inverse AES S-box (derived, not retyped: SBOX is a bijection).
INV_SBOX: bytes = bytes(
    SBOX.index(x) for x in range(256)
)


def _inv_shift_rows(state: Sequence[int]) -> List[int]:
    """InvShiftRows on the x86 byte layout (byte 4c+r = row r, col c)."""
    out = [0] * 16
    for c in range(4):
        for r in range(4):
            out[4 * c + r] = state[4 * ((c - r) % 4) + r]
    return out


def _inv_sub_bytes(state: Sequence[int]) -> List[int]:
    return [INV_SBOX[b] for b in state]


def _gf_mul_small(x: int, factor: int) -> int:
    """Multiply by the small constants InvMixColumns needs (9, 11, 13, 14)."""
    result = 0
    power = x
    while factor:
        if factor & 1:
            result ^= power
        power = _xtime(power)
        factor >>= 1
    return result & 0xFF


def _inv_mix_columns(state: Sequence[int]) -> List[int]:
    out = [0] * 16
    for c in range(4):
        col = state[4 * c: 4 * c + 4]
        for r in range(4):
            out[4 * c + r] = (
                _gf_mul_small(col[r], 14)
                ^ _gf_mul_small(col[(r + 1) % 4], 11)
                ^ _gf_mul_small(col[(r + 2) % 4], 13)
                ^ _gf_mul_small(col[(r + 3) % 4], 9))
    return out


def aesdec(state: Vec128, round_key: Vec128) -> Vec128:
    """The AESDEC instruction: one inverse AES round."""
    s = list(state.to_bytes())
    s = _inv_shift_rows(s)
    s = _inv_sub_bytes(s)
    s = _inv_mix_columns(s)
    mixed = Vec128.from_bytes(bytes(s))
    return Vec128(mixed.value ^ round_key.value)


def aesdeclast(state: Vec128, round_key: Vec128) -> Vec128:
    """The AESDECLAST instruction: final inverse round, no InvMixColumns."""
    s = list(state.to_bytes())
    s = _inv_shift_rows(s)
    s = _inv_sub_bytes(s)
    subbed = Vec128.from_bytes(bytes(s))
    return Vec128(subbed.value ^ round_key.value)


def aesimc(round_key: Vec128) -> Vec128:
    """The AESIMC instruction: InvMixColumns on a round key (builds the
    equivalent inverse cipher schedule)."""
    return Vec128.from_bytes(bytes(_inv_mix_columns(list(round_key.to_bytes()))))


def aes128_decrypt_round_keys(key: bytes) -> List[Vec128]:
    """The equivalent-inverse-cipher schedule AES-NI uses: encryption
    keys reversed, AESIMC applied to the nine middle ones."""
    enc = aes128_expand_key(key)
    dec = [enc[10]]
    for r in range(9, 0, -1):
        dec.append(aesimc(enc[r]))
    dec.append(enc[0])
    return dec


def aes128_decrypt_block(block: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block (the AES-NI AESDEC sequence)."""
    if len(block) != 16:
        raise ValueError("AES blocks are 16 bytes")
    keys = aes128_decrypt_round_keys(key)
    state = Vec128(Vec128.from_bytes(block).value ^ keys[0].value)
    for r in range(1, 10):
        state = aesdec(state, keys[r])
    state = aesdeclast(state, keys[10])
    return state.to_bytes()
