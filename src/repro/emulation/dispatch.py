"""Emulation dispatch and cycle-cost model.

Maps each trapped opcode to its functional emulator and to the cycle
count the scalar replacement code takes — the second overhead component
of the emulation strategy (the first is the double kernel transition,
section 5.3).  Logic ops cost a handful of scalar instructions per lane;
the table-free AES round dominates at a few thousand cycles (13 GF
multiplies x 16 bytes, each a fixed 8-step loop).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.emulation import vector as v
from repro.emulation.aes import aesenc
from repro.emulation.bitsliced_aes import aesenc_constant_time
from repro.emulation.clmul import pclmulqdq
from repro.emulation.vector import Vec128
from repro.isa.opcodes import Opcode

#: Approximate scalar-emulation cost in clock cycles per instruction.
EMULATION_CYCLE_COSTS: Dict[Opcode, int] = {
    Opcode.VOR: 12,
    Opcode.VAND: 12,
    Opcode.VANDN: 14,
    Opcode.VXOR: 12,
    Opcode.VPADDQ: 16,
    Opcode.VPMAX: 24,
    Opcode.VPCMP: 24,
    Opcode.VPSRAD: 20,
    Opcode.VSQRTPD: 80,
    Opcode.VPCLMULQDQ: 260,
    Opcode.AESENC: 2600,  # table-free S-box x 16 bytes
}


def emulation_cycles(opcode: Opcode) -> int:
    """Cycle cost of emulating *opcode* (raises KeyError if untrappable)."""
    return EMULATION_CYCLE_COSTS[opcode]


_TWO_OPERAND: Dict[Opcode, Callable[[Vec128, Vec128], Vec128]] = {
    Opcode.VOR: v.vor,
    Opcode.VAND: v.vand,
    Opcode.VANDN: v.vandn,
    Opcode.VXOR: v.vxor,
    Opcode.VPADDQ: v.vpaddq,
    Opcode.VPMAX: v.vpmaxsd,
    Opcode.VPCMP: v.vpcmpeqd,
    Opcode.AESENC: aesenc_constant_time,
}


def emulate(opcode: Opcode, operands: Tuple[Vec128, ...], imm8: int = 0) -> Vec128:
    """Functionally emulate one trapped instruction.

    Args:
        opcode: the trapped instruction class.
        operands: register operands (1 or 2 :class:`Vec128` values).
        imm8: immediate byte, used by VPSRAD (count) and VPCLMULQDQ
            (lane selector).

    Raises:
        ValueError: for opcodes SUIT never emulates (e.g. IMUL, which is
            statically hardened instead).
    """
    if opcode in _TWO_OPERAND:
        if len(operands) != 2:
            raise ValueError(f"{opcode.name} needs two operands")
        return _TWO_OPERAND[opcode](*operands)
    if opcode is Opcode.VPSRAD:
        if len(operands) != 1:
            raise ValueError("VPSRAD needs one register operand")
        return v.vpsrad(operands[0], imm8)
    if opcode is Opcode.VSQRTPD:
        if len(operands) != 1:
            raise ValueError("VSQRTPD needs one operand")
        return v.vsqrtpd(operands[0])
    if opcode is Opcode.VPCLMULQDQ:
        if len(operands) != 2:
            raise ValueError("VPCLMULQDQ needs two operands")
        return pclmulqdq(operands[0], operands[1], imm8)
    raise ValueError(f"SUIT does not emulate {opcode.name}")


def reference_result(opcode: Opcode, operands: Tuple[Vec128, ...], imm8: int = 0) -> Vec128:
    """Reference semantics for testing: same as :func:`emulate` but with
    the table-based AES round."""
    if opcode is Opcode.AESENC:
        return aesenc(*operands)
    return emulate(opcode, operands, imm8)
