"""Campaign execution: the sample matrix, crash-isolated and resumable.

:class:`CampaignRunner` mirrors the experiment engine's execution
semantics (:mod:`repro.runtime.engine`): a never-raising worker
function, optional process-pool fan-out, and results keyed by a
deterministic plan so order of completion never matters.  On top it
adds a ``campaign.ckpt.json`` checkpoint — atomically rewritten after
every completed run — so a campaign killed at any point resumes with
``run(resume=True)`` and produces the byte-identical final report.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaigns.classify import OUTCOMES, classify_run, tally
from repro.campaigns.plan import RunPlan, expand
from repro.campaigns.run import execute_run
from repro.campaigns.spec import FaultloadSpec
from repro.obs import get_registry

#: Schema tags; bump on layout changes so stale artifacts fail loudly.
CKPT_SCHEMA = "repro.campaign-checkpoint.v1"
REPORT_SCHEMA = "repro.campaign-report.v1"

CKPT_NAME = "campaign.ckpt.json"
REPORT_NAME = "campaign_report.json"
HTML_NAME = "index.html"


def _runs_counter():
    return get_registry().counter(
        "campaign_runs_total",
        "Campaign runs executed, by classified outcome.",
        label_names=("outcome",))


def _worker_execute(spec_json: str, plan_json: str) -> dict:
    """Process-pool entry point: rebuild the dataclasses from JSON (so
    the task payload is picklable and version-stable) and execute.
    Never raises — :func:`execute_run` already folds failures into a
    ``crashed`` outcome dict."""
    spec = FaultloadSpec.from_json_dict(json.loads(spec_json))
    plan = RunPlan.from_json_dict(json.loads(plan_json))
    return execute_run(spec, plan)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write *payload* via tmp-file + rename, so a kill mid-write never
    leaves a truncated checkpoint behind."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


class CheckpointMismatchError(RuntimeError):
    """``resume`` found a checkpoint written by a different faultload."""


def load_checkpoint_spec(out_dir: Path) -> FaultloadSpec:
    """The faultload recorded in *out_dir*'s checkpoint — lets
    ``campaign resume --out DIR`` continue without re-passing the spec."""
    path = Path(out_dir) / CKPT_NAME
    if not path.exists():
        raise FileNotFoundError(f"no campaign checkpoint at {path}")
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != CKPT_SCHEMA:
        raise CheckpointMismatchError(
            f"unknown checkpoint schema {payload.get('schema')!r} in {path}")
    return FaultloadSpec.from_json_dict(payload["spec"])


class CampaignRunner:
    """Executes one faultload's sample matrix.

    Args:
        spec: the campaign faultload.
        out_dir: artifact directory (checkpoint, report, HTML).  None
            runs fully in memory (no checkpoint, no resume).
        jobs: worker processes; 1 executes inline in this process.
    """

    def __init__(self, spec: FaultloadSpec, out_dir: Optional[Path] = None,
                 jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.jobs = jobs
        self.plans: List[RunPlan] = expand(spec)
        self.results: Dict[int, dict] = {}

    # -- checkpointing ---------------------------------------------------

    @property
    def ckpt_path(self) -> Optional[Path]:
        return self.out_dir / CKPT_NAME if self.out_dir else None

    def _load_checkpoint(self) -> None:
        path = self.ckpt_path
        if path is None or not path.exists():
            return
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != CKPT_SCHEMA:
            raise CheckpointMismatchError(
                f"unknown checkpoint schema {payload.get('schema')!r} "
                f"in {path}")
        if payload.get("spec_digest") != self.spec.digest():
            raise CheckpointMismatchError(
                f"checkpoint in {path} was written by a different "
                f"faultload (digest {payload.get('spec_digest')!r} != "
                f"{self.spec.digest()!r}); delete it or rerun with the "
                "original spec")
        self.results = {int(k): v
                        for k, v in payload.get("completed", {}).items()}

    def _save_checkpoint(self) -> None:
        path = self.ckpt_path
        if path is None:
            return
        _atomic_write_json(path, {
            "schema": CKPT_SCHEMA,
            "spec_digest": self.spec.digest(),
            "spec": self.spec.to_json_dict(),
            "completed": {str(k): v for k, v in sorted(self.results.items())},
        })

    # -- execution -------------------------------------------------------

    def run(self, resume: bool = False, stop_after: Optional[int] = None) -> dict:
        """Execute every (remaining) run; return the report dict.

        Args:
            resume: load ``campaign.ckpt.json`` first and skip completed
                runs.  Refuses a checkpoint from a different spec.
            stop_after: stop once this many *new* runs completed (used
                by tests to simulate an interrupted campaign); the
                checkpoint stays on disk for a later resume.
        """
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load_checkpoint()
        pending = [p for p in self.plans if p.index not in self.results]
        if stop_after is not None:
            pending = pending[:max(0, stop_after)]

        counter = _runs_counter()
        spec_json = self.spec.canonical_json()
        if self.jobs == 1 or len(pending) <= 1:
            for plan in pending:
                self._record(plan, execute_run(self.spec, plan), counter)
        else:
            self._run_pool(pending, spec_json, counter)

        return self.build_report()

    def _record(self, plan: RunPlan, outcome: dict, counter) -> None:
        outcome["outcome"] = classify_run(outcome)
        outcome["injections"] = [i.to_json_dict() for i in plan.injections]
        counter.inc(outcome=outcome["outcome"])
        self.results[plan.index] = outcome
        self._save_checkpoint()

    def _run_pool(self, pending: List[RunPlan], spec_json: str,
                  counter) -> None:
        by_index = {p.index: p for p in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_worker_execute, spec_json,
                            json.dumps(plan.to_json_dict())): plan.index
                for plan in pending}
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BaseException as exc:  # worker process died
                        outcome = {"index": index,
                                   "offset_v": by_index[index].offset_v,
                                   "seed": by_index[index].seed,
                                   "status": "crashed",
                                   "error": f"worker died: {exc!r}",
                                   "baseline": None, "faulted": None,
                                   "notes": []}
                    self._record(by_index[index], outcome, counter)

    # -- reporting -------------------------------------------------------

    def build_report(self) -> dict:
        """The deterministic campaign report (no timestamps, no paths:
        a pure function of spec + completed results)."""
        missing = [p.index for p in self.plans if p.index not in self.results]
        runs = []
        for plan in self.plans:
            outcome = self.results.get(plan.index)
            if outcome is None:
                continue
            runs.append({
                "index": plan.index,
                "offset_mv": round(plan.offset_v * 1e3, 3),
                "seed": plan.seed,
                "outcome": outcome["outcome"],
                "injections": [i.describe() for i in plan.injections],
                "error": outcome.get("error"),
            })

        by_offset = []
        for offset in self.spec.offsets_v:
            labels = [r["outcome"] for r in runs
                      if r["offset_mv"] == round(offset * 1e3, 3)]
            counts = tally(labels)
            n = max(1, len(labels))
            by_offset.append({
                "offset_mv": round(offset * 1e3, 3),
                "n": len(labels),
                "counts": counts,
                "sdc_rate": round(counts["sdc"] / n, 6),
                "detected_rate": round(counts["detected"] / n, 6),
                "crashed_rate": round(counts["crashed"] / n, 6),
            })

        by_target: Dict[str, Dict[str, int]] = {}
        for plan in self.plans:
            outcome = self.results.get(plan.index)
            if outcome is None:
                continue
            for injection in plan.injections:
                row = by_target.setdefault(
                    injection.target, {name: 0 for name in OUTCOMES})
                row[outcome["outcome"]] += 1

        return {
            "schema": REPORT_SCHEMA,
            "campaign": self.spec.name,
            "spec": self.spec.to_json_dict(),
            "spec_digest": self.spec.digest(),
            "n_runs": self.spec.n_runs,
            "n_completed": len(runs),
            "incomplete": sorted(missing),
            "outcomes": tally(r["outcome"] for r in runs),
            "by_offset": by_offset,
            "by_target": {k: by_target[k] for k in sorted(by_target)},
            "runs": runs,
        }

    def write_outputs(self, html: bool = True) -> dict:
        """Write ``campaign_report.json`` (and the HTML dashboard) into
        the artifact directory; returns the report dict."""
        if self.out_dir is None:
            raise ValueError("CampaignRunner needs an out_dir to write outputs")
        report = self.build_report()
        _atomic_write_json(self.out_dir / REPORT_NAME, report)
        if html:
            from repro.campaigns.report import ReportBuilder

            (self.out_dir / HTML_NAME).write_text(
                ReportBuilder(report).render(), encoding="utf-8")
        return report
