"""Static-HTML campaign dashboards (stdlib templating only).

:class:`ReportBuilder` turns a campaign report dict
(:meth:`repro.campaigns.runner.CampaignRunner.build_report`) into one
self-contained ``index.html``: no server, no JavaScript, no external
assets — inline CSS plus inline SVG charts, so the file renders from
``file://`` and archives losslessly next to ``campaign_report.json``.

Charts:

* **rate-vs-depth** — SDC / detected / crashed rate against undervolt
  depth (the campaign's headline curve: where does silence begin?);
* **outcome stack** — a 100%-stacked outcome bar per depth grid point;
* **drill-down** — the per-run table with injections and errors.

Colors are the Okabe-Ito colorblind-safe palette.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence, Tuple

from repro.campaigns.classify import OUTCOMES

#: Okabe-Ito assignments, most to least severe.
OUTCOME_COLORS: Dict[str, str] = {
    "crashed": "#000000",
    "detected": "#0072B2",
    "sdc": "#D55E00",
    "degraded": "#E69F00",
    "masked": "#999999",
}

_RATE_SERIES: Tuple[Tuple[str, str], ...] = (
    ("sdc_rate", "sdc"),
    ("detected_rate", "detected"),
    ("crashed_rate", "crashed"),
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 68rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left; }
th { background: #f4f4f4; }
tr.sdc td { background: #fdeee6; } tr.detected td { background: #e8f1f8; }
tr.crashed td { background: #eeeeee; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; border-radius: 2px; }
.meta { color: #555; font-size: 13px; }
code { background: #f4f4f4; padding: 1px 4px; border-radius: 3px; }
svg { background: #fcfcfc; border: 1px solid #eee; }
""".strip()


def _fmt(value: float) -> str:
    return f"{value:.4g}"


class ReportBuilder:
    """Renders one campaign report dict to a standalone HTML page."""

    def __init__(self, report: dict) -> None:
        if report.get("schema") != "repro.campaign-report.v1":
            raise ValueError(
                f"unsupported report schema {report.get('schema')!r}")
        self.report = report

    # -- SVG helpers -----------------------------------------------------

    @staticmethod
    def _axes(width: int, height: int, pad: int,
              x_labels: Sequence[str], y_labels: Sequence[str]) -> List[str]:
        parts = [
            f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
            f'y2="{height - pad}" stroke="#333" stroke-width="1" />',
            f'<line x1="{pad}" y1="{pad}" x2="{pad}" '
            f'y2="{height - pad}" stroke="#333" stroke-width="1" />',
        ]
        span_x = width - 2 * pad
        for i, label in enumerate(x_labels):
            x = pad + (span_x * i / max(1, len(x_labels) - 1))
            parts.append(
                f'<text x="{x:.1f}" y="{height - pad + 16}" '
                f'text-anchor="middle" font-size="11">'
                f'{html.escape(label)}</text>')
        span_y = height - 2 * pad
        for i, label in enumerate(y_labels):
            y = height - pad - (span_y * i / max(1, len(y_labels) - 1))
            parts.append(
                f'<text x="{pad - 6}" y="{y:.1f}" text-anchor="end" '
                f'dominant-baseline="middle" font-size="11">'
                f'{html.escape(label)}</text>')
        return parts

    def _rate_chart(self) -> str:
        """SDC / detected / crashed rate vs undervolt depth (mV)."""
        rows = self.report["by_offset"]
        width, height, pad = 640, 280, 46
        depths = [abs(row["offset_mv"]) for row in rows]
        parts = [
            f'<svg role="img" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" '
            'xmlns="http://www.w3.org/2000/svg">',
            '<title>Outcome rate vs undervolt depth</title>',
        ]
        parts += self._axes(
            width, height, pad,
            [f"{d:g}" for d in depths],
            ["0", "0.25", "0.5", "0.75", "1"])
        parts.append(
            f'<text x="{width / 2:.0f}" y="{height - 8}" '
            f'text-anchor="middle" font-size="11">undervolt depth (mV)'
            '</text>')
        span_x, span_y = width - 2 * pad, height - 2 * pad

        def point(i: int, rate: float) -> Tuple[float, float]:
            x = pad + span_x * i / max(1, len(rows) - 1)
            y = height - pad - span_y * min(1.0, max(0.0, rate))
            return x, y

        for key, outcome in _RATE_SERIES:
            color = OUTCOME_COLORS[outcome]
            coords = [point(i, row[key]) for i, row in enumerate(rows)]
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="{color}" stroke-width="2" />')
            for x, y in coords:
                parts.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
                    f'fill="{color}" />')
        parts.append("</svg>")
        legend = " ".join(
            f'<span><span class="swatch" style="background:'
            f'{OUTCOME_COLORS[outcome]}"></span>{outcome} rate</span>'
            for _, outcome in _RATE_SERIES)
        return "\n".join(parts) + f'\n<p class="meta">{legend}</p>'

    def _stack_chart(self) -> str:
        """100%-stacked outcome bar per undervolt grid point."""
        rows = self.report["by_offset"]
        width, height, pad = 640, 240, 46
        bar_span = width - 2 * pad
        bar_w = bar_span / max(1, len(rows)) * 0.6
        parts = [
            f'<svg role="img" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" '
            'xmlns="http://www.w3.org/2000/svg">',
            '<title>Outcome breakdown per undervolt depth</title>',
        ]
        parts += self._axes(
            width, height, pad,
            [f'{abs(row["offset_mv"]):g}' for row in rows],
            ["0%", "50%", "100%"])
        span_y = height - 2 * pad
        for i, row in enumerate(rows):
            total = max(1, sum(row["counts"].values()))
            x = pad + bar_span * i / max(1, len(rows) - 1) - bar_w / 2
            y = float(height - pad)
            for outcome in reversed(OUTCOMES):  # masked at the bottom
                h = span_y * row["counts"][outcome] / total
                if h <= 0:
                    continue
                y -= h
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                    f'height="{h:.1f}" fill="{OUTCOME_COLORS[outcome]}">'
                    f'<title>{outcome}: {row["counts"][outcome]}</title>'
                    '</rect>')
        parts.append("</svg>")
        legend = " ".join(
            f'<span><span class="swatch" style="background:'
            f'{OUTCOME_COLORS[o]}"></span>{o}</span>' for o in OUTCOMES)
        return "\n".join(parts) + f'\n<p class="meta">{legend}</p>'

    # -- tables ----------------------------------------------------------

    def _summary_table(self) -> str:
        outcomes = self.report["outcomes"]
        total = max(1, sum(outcomes.values()))
        cells = "".join(
            f'<tr><td><span class="swatch" style="background:'
            f'{OUTCOME_COLORS[o]}"></span>{o}</td>'
            f'<td>{outcomes[o]}</td>'
            f'<td>{_fmt(outcomes[o] / total * 100)}%</td></tr>'
            for o in OUTCOMES)
        return ('<table><thead><tr><th>outcome</th><th>runs</th>'
                '<th>share</th></tr></thead>'
                f'<tbody>{cells}</tbody></table>')

    def _target_table(self) -> str:
        by_target = self.report.get("by_target", {})
        if not by_target:
            return ""
        head = "".join(f"<th>{o}</th>" for o in OUTCOMES)
        body = "".join(
            f'<tr><td><code>{html.escape(target)}</code></td>'
            + "".join(f"<td>{counts[o]}</td>" for o in OUTCOMES)
            + "</tr>"
            for target, counts in by_target.items())
        return ('<h2>Per-target breakdown</h2>'
                f'<table><thead><tr><th>target</th>{head}</tr></thead>'
                f'<tbody>{body}</tbody></table>')

    def _runs_table(self) -> str:
        rows = []
        for run in self.report["runs"]:
            injections = "; ".join(html.escape(i) for i in run["injections"])
            error = html.escape(run["error"] or "")
            rows.append(
                f'<tr class="{run["outcome"]}">'
                f'<td>{run["index"]}</td>'
                f'<td>{run["offset_mv"]:g}</td>'
                f'<td>{run["outcome"]}</td>'
                f'<td>{injections}</td>'
                f'<td><code>{run["seed"]}</code></td>'
                f'<td>{error}</td></tr>')
        return ('<table><thead><tr><th>#</th><th>offset (mV)</th>'
                '<th>outcome</th><th>injections</th><th>run seed</th>'
                '<th>error</th></tr></thead>'
                f'<tbody>{"".join(rows)}</tbody></table>')

    # -- page ------------------------------------------------------------

    def render(self) -> str:
        """The full standalone HTML page."""
        r = self.report
        spec = r["spec"]
        name = html.escape(r["campaign"])
        incomplete = ""
        if r["incomplete"]:
            incomplete = (
                f'<p class="meta"><strong>{len(r["incomplete"])} runs '
                'incomplete</strong> — resume the campaign to finish.</p>')
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8" />
<title>Campaign report: {name}</title>
<style>
{_CSS}
</style>
</head>
<body>
<h1>Fault-injection campaign: {name}</h1>
<p class="meta">scope <code>{html.escape(spec["scope"])}</code> ·
model <code>{html.escape(spec["fault_model"])}</code> ·
multiplicity {spec["multiplicity"]} ·
workload <code>{html.escape(spec["workload"])}</code> ·
CPU <code>{html.escape(spec["cpu"])}</code> ·
seed {spec["seed"]} ·
{r["n_completed"]}/{r["n_runs"]} runs ·
spec digest <code>{html.escape(r["spec_digest"][:12])}</code></p>
{incomplete}
<h2>Outcome totals</h2>
{self._summary_table()}
<h2>Outcome rate vs undervolt depth</h2>
{self._rate_chart()}
<h2>Outcome breakdown per depth</h2>
{self._stack_chart()}
{self._target_table()}
<h2>Per-run drill-down</h2>
{self._runs_table()}
</body>
</html>
"""
