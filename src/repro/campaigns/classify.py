"""Statistical outcome classification of campaign runs.

Every run is compared against its own unfaulted golden baseline
(computed from identical derived random streams, see
:mod:`repro.campaigns.run`) and sorted into the standard SBFI outcome
taxonomy:

``crashed``
    The faulted machine raised or wedged (DVFS table fails validation,
    deadline register reads zero, worker process died).
``detected``
    The :class:`~repro.security.invariants.SecurityMonitor` flagged
    executions the baseline did not — the fault surfaced through SUIT's
    invariant, regardless of whether results were also corrupted.
``sdc``
    Silent data corruption: the result digest differs from the baseline
    and *no* new invariant violation fired.  The outcome SUIT exists to
    prevent.
``degraded``
    Results are bit-identical but performance or energy shifted (extra
    traps, longer conservative dwell, different curve).  Explicitly not
    SDC: slower-but-correct is a quality loss, not a correctness loss.
``masked``
    The injection had no observable effect at all.

Precedence is strict: crashed > detected > sdc > degraded > masked.
A run that both corrupts data *and* trips the monitor counts as
detected — the system saw it, so it is not silent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: The outcome classes, most to least severe (also the report order).
OUTCOMES: Tuple[str, ...] = ("crashed", "detected", "sdc", "degraded",
                             "masked")

#: Relative tolerance below which duration/energy shifts count as noise.
#: Both legs of a run share every random stream, so any genuine effect
#: is orders of magnitude above float roundoff.
_REL_TOL = 1e-9


def _differs(a: float, b: float) -> bool:
    scale = max(abs(a), abs(b), 1e-30)
    return abs(a - b) / scale > _REL_TOL


def classify_pair(baseline: Dict, faulted: Dict) -> str:
    """Classify one (baseline, faulted) summary pair.

    Both arguments are run summaries as produced by
    :mod:`repro.campaigns.run` (``digest``, ``duration_cycles``,
    ``energy``, ``n_traps``, ``n_timer_returns``, ``violations``).
    """
    if int(faulted["violations"]) > int(baseline["violations"]):
        return "detected"
    if faulted["digest"] != baseline["digest"]:
        return "sdc"
    if (int(faulted["n_traps"]) != int(baseline["n_traps"])
            or int(faulted["n_timer_returns"]) != int(baseline["n_timer_returns"])
            or _differs(float(faulted["duration_cycles"]),
                        float(baseline["duration_cycles"]))
            or _differs(float(faulted["energy"]), float(baseline["energy"]))):
        return "degraded"
    return "masked"


def classify_run(outcome: Dict) -> str:
    """Classify one full run outcome dict from
    :func:`repro.campaigns.run.execute_run` (or the runner's crash
    isolation wrapper)."""
    if outcome.get("status") != "ok" or outcome.get("faulted") is None:
        return "crashed"
    return classify_pair(outcome["baseline"], outcome["faulted"])


def tally(labels: Iterable[str]) -> Dict[str, int]:
    """Outcome counts over *labels*, with every class present (zeroes
    included) so report schemas stay stable."""
    counts = {name: 0 for name in OUTCOMES}
    for label in labels:
        if label not in counts:
            raise ValueError(f"unknown outcome label {label!r}")
        counts[label] += 1
    return counts
