"""Execute one campaign run against the modeled machine.

A run builds the machine the way SUIT deploys it — a sampled chip
(:mod:`repro.faults.model`), the SUIT configuration MSRs
(:mod:`repro.hardware.msr`), the conservative/efficient DVFS curves
(:mod:`repro.power.dvfs`) — applies the plan's injections, and then
drives a phase-structured instruction stream through the
:class:`~repro.faults.injector.FaultInjector` while the
:class:`~repro.security.invariants.SecurityMonitor` audits every
execution.

The crucial asymmetry: the **monitor** checks executions against the
*calibrated* (nominal) chip and curve — what the deployed system
believes about its silicon — while the **injector** faults according to
the *physical* (perturbed) chip at the *delivered* voltage.  MSR faults
leave belief and truth aligned, so the monitor catches them
(*detected*); Vmin drift and regulator miscalibration open a gap
between belief and truth, which is exactly where silent data
corruption (*SDC*) lives.

Every run computes its own unfaulted golden baseline from the same
derived random streams, so (baseline, faulted) pairs are aligned
sample-for-sample and the classification
(:mod:`repro.campaigns.classify`) is a pure function of the plan.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.campaigns.plan import Injection, RunPlan, trapped_mask_order
from repro.campaigns.spec import FaultloadSpec
from repro.faults.injector import FaultInjector
from repro.faults.model import CpuInstanceFaults, FaultModel
from repro.hardware.msr import Msr, MsrFile
from repro.isa.opcodes import Opcode
from repro.power.dvfs import CurveKind, DVFSCurve
from repro.security.invariants import ExecutionRecord, SecurityMonitor

#: Extra cycles charged for one curve switch (trap + p-state change),
#: the perf proxy of the #DO round trip.
SWITCH_CYCLES = 40_000


class MachineHangError(RuntimeError):
    """The injected configuration wedges the machine (e.g. a zero
    deadline: the domain can never return to the efficient curve and
    the watchdog gives up)."""


def _derive_rng(seed: int, purpose: str) -> np.random.Generator:
    """A private numpy Generator for one purpose of one run."""
    material = f"repro.campaigns.run.v1:{seed}:{purpose}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def _derive_seed(seed: int, purpose: str) -> int:
    material = f"repro.campaigns.run.v1:{seed}:{purpose}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


# -- machine construction ------------------------------------------------

@dataclass
class _Machine:
    """Everything one run needs, after injections were applied."""

    frequency: float
    believed_cons_v: float      # voltage the software reads/believes
    believed_eff_v: float
    delivered_cons_v: float     # voltage the rail actually carries
    delivered_eff_v: float
    conservative_ratio: float   # Cf frequency / nominal (perf proxy)
    efficient_enabled: bool     # curve-select MSR bit
    disabled: FrozenSet[Opcode]
    deadline_ticks: int
    believed_chip: CpuInstanceFaults
    physical_chip: CpuInstanceFaults
    bg_flip_rate: float
    notes: Tuple[str, ...]


def _intended_msrs(deadline_ticks: int) -> Dict[int, int]:
    """The MSR values SUIT programs at boot: efficient curve selected,
    the full trapped set disabled, the deadline armed."""
    order = trapped_mask_order()
    mask = (1 << len(order)) - 1
    return {
        int(Msr.SUIT_CURVE_SELECT): 1,
        int(Msr.SUIT_DISABLE_MASK): mask,
        int(Msr.SUIT_DEADLINE): deadline_ticks,
    }


_MSR_BY_NAME = {
    "SUIT_CURVE_SELECT": int(Msr.SUIT_CURVE_SELECT),
    "SUIT_DISABLE_MASK": int(Msr.SUIT_DISABLE_MASK),
    "SUIT_DEADLINE": int(Msr.SUIT_DEADLINE),
}


def _apply_msr_fault(msrs: MsrFile, injection: Injection) -> None:
    address = _MSR_BY_NAME[injection.target]
    value = msrs.read(address)
    bit = int(injection.bit or 0)
    if injection.model == "bit_flip":
        value ^= 1 << bit
    elif injection.model == "stuck_at_0":
        value &= ~(1 << bit)
    elif injection.model == "stuck_at_1":
        value |= 1 << bit
    else:  # pragma: no cover - spec validation forbids this
        raise ValueError(f"bad MSR fault model {injection.model!r}")
    msrs.write(address, value)


def _drift_margins(chip: CpuInstanceFaults,
                   drifts: Dict[Opcode, float]) -> CpuInstanceFaults:
    """The chip after aging/heating drift: positive amounts move Vmin
    *toward* the curve (margin shrinks — the dangerous direction)."""
    margins = {op: values + drifts.get(op, 0.0)
               for op, values in chip.margins.items()}
    return CpuInstanceFaults(
        curve=chip.curve, margins=margins,
        frequency_slope_v_per_hz=chip.frequency_slope_v_per_hz,
        exhibits_variation=chip.exhibits_variation)


def _perturb_curve(curve: DVFSCurve, anchor: int, amount: float) -> DVFSCurve:
    """The regulator's miscalibrated curve: one anchor's delivered
    voltage shifted by *amount*.  Raises ValueError when the result is
    no longer monotone — the p-state table fails validation and the
    machine refuses to boot (a *crashed* outcome)."""
    points = curve.points
    if not 0 <= anchor < len(points):
        raise ValueError(f"no curve anchor {anchor}")
    f, v = points[anchor]
    points[anchor] = (f, v + amount)
    return DVFSCurve(points, kind=CurveKind.CONSERVATIVE,
                     name=curve.name + "+drift")


def intended_deadline_ticks(spec: FaultloadSpec) -> int:
    """The tick count SUIT intends to program (fault-free value)."""
    from repro.hardware.models import ALL_CPU_FACTORIES

    cpu = ALL_CPU_FACTORIES[spec.cpu]()
    return max(1, int(round(spec.deadline_us * 1e-6 * cpu.nominal_frequency)))


def _build_machine(spec: FaultloadSpec, plan: RunPlan,
                   faulted: bool) -> _Machine:
    """Construct the (possibly faulted) machine of one run."""
    from repro.hardware.models import ALL_CPU_FACTORIES

    cpu = ALL_CPU_FACTORIES[spec.cpu]()
    nominal_curve = cpu.conservative_curve
    frequency = cpu.nominal_frequency
    notes: List[str] = []

    # The silicon: sampled per run (process variation), SUIT-hardened
    # IMUL.  The believed chip is the calibration-time truth.
    chip_rng = _derive_rng(plan.seed, "chip")
    believed = FaultModel().sample_chip(
        nominal_curve, n_cores=4, rng=chip_rng,
        exhibits=True).with_hardened_imul()
    physical = believed
    physical_curve = nominal_curve
    bg_flip_rate = 0.0

    # Program the SUIT MSRs with the intended configuration.
    msrs = MsrFile()
    for address, value in _intended_msrs(intended_deadline_ticks(spec)).items():
        msrs.write(address, value)

    if faulted:
        for injection in plan.injections:
            if injection.target in _MSR_BY_NAME:
                _apply_msr_fault(msrs, injection)
            elif injection.model == "drift" and injection.target.startswith("anchor:"):
                anchor = int(injection.target.split(":", 1)[1])
                physical_curve = _perturb_curve(physical_curve, anchor,
                                                injection.amount)
            elif injection.model == "drift":
                op = Opcode[injection.target]
                physical = _drift_margins(physical, {op: injection.amount})
            elif injection.target == "background":
                bg_flip_rate = min(1.0, bg_flip_rate + injection.amount)
            else:  # pragma: no cover - expansion never emits this
                raise ValueError(f"unhandled injection {injection!r}")
            notes.append(injection.describe())

    # Decode the effective configuration back out of the register file —
    # corrupted bits included.
    order = trapped_mask_order()
    mask = msrs.read(int(Msr.SUIT_DISABLE_MASK))
    disabled = frozenset(Opcode[name] for bit, name in enumerate(order)
                         if mask >> bit & 1)
    efficient_enabled = bool(msrs.read(int(Msr.SUIT_CURVE_SELECT)) & 1)
    ticks = msrs.read(int(Msr.SUIT_DEADLINE))
    if ticks == 0:
        raise MachineHangError(
            "SUIT_DEADLINE reads 0 ticks: the deadline timer re-fires "
            "before the p-state transition completes; watchdog reset")

    believed_cons_v = nominal_curve.voltage_at(frequency)
    delivered_cons_v = physical_curve.voltage_at(frequency)
    # Cf point: switching keeps the (efficient) voltage and drops the
    # clock onto the conservative curve; the frequency ratio scales the
    # conservative dwell's execution time.
    f_cf = nominal_curve.frequency_at(believed_cons_v + plan.offset_v)
    conservative_ratio = max(1e-3, min(1.0, f_cf / frequency))

    return _Machine(
        frequency=frequency,
        believed_cons_v=believed_cons_v,
        believed_eff_v=believed_cons_v + plan.offset_v,
        delivered_cons_v=delivered_cons_v,
        delivered_eff_v=delivered_cons_v + plan.offset_v,
        conservative_ratio=conservative_ratio,
        efficient_enabled=efficient_enabled,
        disabled=disabled,
        deadline_ticks=int(ticks),
        believed_chip=believed,
        physical_chip=physical,
        bg_flip_rate=bg_flip_rate,
        notes=tuple(notes),
    )


# -- the instruction-level workload --------------------------------------

def build_stream(spec: FaultloadSpec,
                 rng: np.random.Generator) -> Tuple[List[Opcode], np.ndarray]:
    """The run's faultable-event stream: opcodes plus the cycle gap in
    front of each event.

    Mirrors the workload profile's phase structure: *dense episodes* of
    trapped-opcode events ``dense_gap/ipc`` cycles apart — SUIT parks
    the domain on the conservative curve here — separated by *sparse
    stretches* of isolated (hardened-IMUL) events whose gaps are of
    deadline magnitude, so the deadline timer genuinely expires and the
    stream exercises the efficient curve.  Machine-independent: both
    legs of a run share one stream.
    """
    from repro.workloads import resolve_profile

    profile = resolve_profile(spec.workload)
    mix = profile.normalized_mix()
    trapped_ops = sorted(mix, key=lambda op: op.name)
    weights = np.asarray([mix[op] for op in trapped_ops])
    weights = weights / weights.sum()
    dense_gap = max(1.0, profile.dense_gap / profile.ipc)
    sparse_gap_mean = intended_deadline_ticks(spec) / 2.0

    ops: List[Opcode] = []
    gaps: List[float] = []
    dense = True
    while len(ops) < spec.n_ops:
        if dense:
            length = int(rng.integers(20, 61))
            picks = rng.choice(len(trapped_ops), size=length, p=weights)
            for pick in picks:
                ops.append(trapped_ops[int(pick)])
                gaps.append(dense_gap)
        else:
            length = int(rng.integers(4, 13))
            for _ in range(length):
                ops.append(Opcode.IMUL)
                gaps.append(float(rng.exponential(sparse_gap_mean)))
        dense = not dense
    del ops[spec.n_ops:], gaps[spec.n_ops:]
    return ops, np.asarray(gaps)


def _execute_machine(machine: _Machine, ops: Sequence[Opcode],
                     gaps: np.ndarray, operands: np.ndarray,
                     injector_seed: int, bg_seed: int) -> dict:
    """Drive the event stream through the machine; return the summary.

    Deterministic given its arguments: the injector and background
    streams are freshly seeded, the monitor and the DVFS state machine
    hold no randomness.
    """
    monitor = SecurityMonitor(machine.believed_chip, hardened_imul=False)
    injector = FaultInjector(machine.physical_chip, seed=injector_seed)
    bg_rng = np.random.default_rng(bg_seed)
    digest = hashlib.sha256()

    core = 0
    f = machine.frequency
    on_efficient = machine.efficient_enabled
    dwell_cycles = 0.0          # deadline budget left while conservative
    n_traps = 0
    n_timer_returns = 0
    duration_cycles = 0.0
    energy = 0.0

    for op, gap, operand in zip(ops, gaps, operands):
        # Time advances by the gap in front of this event; the deadline
        # timer runs it down while the domain sits on the conservative
        # curve (slowed by the Cf frequency ratio).
        gap_cycles = float(gap) if on_efficient \
            else float(gap) / machine.conservative_ratio
        duration_cycles += gap_cycles
        if not on_efficient and machine.efficient_enabled:
            dwell_cycles -= float(gap)
            if dwell_cycles <= 0.0:
                on_efficient = True
                n_timer_returns += 1

        if machine.efficient_enabled and op in machine.disabled:
            if on_efficient:
                on_efficient = False
                n_traps += 1
                duration_cycles += SWITCH_CYCLES
            dwell_cycles = float(machine.deadline_ticks)  # (re-)arm

        v_believed = (machine.believed_eff_v if on_efficient
                      else machine.believed_cons_v)
        v_delivered = (machine.delivered_eff_v if on_efficient
                       else machine.delivered_cons_v)
        monitor.observe(ExecutionRecord(op, core, f, v_believed))
        result = injector.execute(op, int(operand), core=core, frequency=f,
                                  voltage=v_delivered, result_bits=64)
        if machine.bg_flip_rate > 0.0 and bg_rng.random() < machine.bg_flip_rate:
            result ^= 1 << int(bg_rng.integers(0, 64))
        digest.update((int(result) & (1 << 64) - 1).to_bytes(8, "little"))
        energy += (v_delivered ** 2) * gap_cycles  # E ~ V^2 * cycles

    return {
        "digest": digest.hexdigest(),
        "duration_cycles": round(duration_cycles, 6),
        "energy": round(energy, 9),
        "n_traps": n_traps,
        "n_timer_returns": n_timer_returns,
        "n_fault_events": injector.fault_count,
        "violations": len(monitor.report.violations),
        "observed": monitor.report.observed,
    }


def execute_run(spec: FaultloadSpec, plan: RunPlan) -> dict:
    """Execute one run: golden baseline plus faulted replay.

    Returns a plain-JSON outcome dict and **never raises**: a fault
    that wedges or crashes the modeled machine is returned as
    ``status == "crashed"`` with the traceback, mirroring the
    experiment engine's crash isolation.
    """
    ops_rng = _derive_rng(plan.seed, "ops")
    operand_rng = _derive_rng(plan.seed, "operands")
    injector_seed = _derive_seed(plan.seed, "injector")
    bg_seed = _derive_seed(plan.seed, "background")

    outcome: dict = {"index": plan.index, "offset_v": plan.offset_v,
                     "seed": plan.seed, "status": "ok", "error": None,
                     "baseline": None, "faulted": None, "notes": []}
    try:
        ops, gaps = build_stream(spec, ops_rng)
        operands = operand_rng.integers(0, 1 << 62, size=spec.n_ops,
                                        dtype=np.int64)
        golden_machine = _build_machine(spec, plan, faulted=False)
        outcome["baseline"] = _execute_machine(
            golden_machine, ops, gaps, operands, injector_seed, bg_seed)
        faulted_machine = _build_machine(spec, plan, faulted=True)
        outcome["notes"] = list(faulted_machine.notes)
        outcome["faulted"] = _execute_machine(
            faulted_machine, ops, gaps, operands, injector_seed, bg_seed)
    except BaseException as exc:  # noqa: BLE001 - crash isolation
        outcome["status"] = "crashed"
        outcome["error"] = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        outcome["traceback"] = traceback.format_exc()
    return outcome
