"""Structured fault-injection campaigns against the modeled machine.

DAVOS-style statistical fault injection for the SUIT reproduction: a
declarative :class:`FaultloadSpec` expands deterministically into
per-run injection plans, a :class:`CampaignRunner` executes the sample
matrix with crash isolation and checkpoint/resume, every run is
classified against its own unfaulted golden baseline
(masked / degraded / sdc / detected / crashed), and a
:class:`ReportBuilder` renders the standalone HTML dashboard.

See ``docs/campaigns.md`` for the spec format, outcome taxonomy and
checkpoint semantics, or start with a canned campaign::

    python -m repro campaign run --spec msr_bitflip_nginx --out out/
"""

from repro.campaigns.classify import (OUTCOMES, classify_pair, classify_run,
                                      tally)
from repro.campaigns.plan import Injection, RunPlan, expand, run_seed
from repro.campaigns.report import ReportBuilder
from repro.campaigns.run import execute_run
from repro.campaigns.runner import (CampaignRunner, CheckpointMismatchError,
                                    CKPT_NAME, HTML_NAME, REPORT_NAME,
                                    load_checkpoint_spec)
from repro.campaigns.spec import (CANNED_CAMPAIGNS, FaultloadSpec,
                                  canned_campaign, load_spec, resolve_spec)

__all__ = [
    "CANNED_CAMPAIGNS",
    "CKPT_NAME",
    "CampaignRunner",
    "CheckpointMismatchError",
    "FaultloadSpec",
    "HTML_NAME",
    "Injection",
    "OUTCOMES",
    "REPORT_NAME",
    "ReportBuilder",
    "RunPlan",
    "canned_campaign",
    "classify_pair",
    "classify_run",
    "execute_run",
    "expand",
    "load_checkpoint_spec",
    "load_spec",
    "resolve_spec",
    "run_seed",
    "tally",
]
