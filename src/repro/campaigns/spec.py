"""Declarative faultload specifications (DAVOS-style campaigns).

A :class:`FaultloadSpec` names *what to attack* on the modeled machine
(the target **scope**), *how* (the **fault model**), and the size and
seeding of the sample matrix.  Specs are plain dataclasses, loadable
from JSON (always) or TOML (Python >= 3.11), and expand
deterministically into per-run injection plans
(:mod:`repro.campaigns.plan`).

Target scopes:

* ``msr`` — bits of the SUIT configuration MSRs
  (:class:`repro.hardware.msr.Msr`): the disabled-opcode mask, the
  curve select and the deadline register.  A cleared mask bit lets a
  trapped-class instruction execute on the efficient curve — the exact
  event SUIT must make impossible.
* ``vmin`` — per-instruction minimum-voltage drift in the fault model
  (:mod:`repro.faults.model`): the silicon ages/heats away from the
  Vmin curves the system was calibrated with, so the calibrated
  invariant monitor no longer matches physical truth (the
  silent-data-corruption regime).
* ``dvfs`` — voltage perturbations of the conservative DVFS curve
  anchors (:mod:`repro.power.dvfs`): a miscalibrated regulator delivers
  less voltage than the software believes.
* ``injector`` — a background result-bit-flip rate layered over the
  :class:`repro.faults.injector.FaultInjector` path, modeling
  voltage-independent soft errors (undervolted-SRAM style).

Fault models: ``stuck_at_0`` / ``stuck_at_1`` / ``bit_flip`` for bit
scopes, ``drift`` (Gaussian voltage shift) for analog scopes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

#: Valid target scopes.
TARGET_SCOPES: Tuple[str, ...] = ("msr", "vmin", "dvfs", "injector")

#: Valid fault models, per scope.
SCOPE_FAULT_MODELS: Dict[str, Tuple[str, ...]] = {
    "msr": ("bit_flip", "stuck_at_0", "stuck_at_1"),
    "vmin": ("drift",),
    "dvfs": ("drift",),
    "injector": ("bit_flip",),
}

#: MSR targets the ``msr`` scope may hit, with their faultable bit width.
#: The disable mask has one bit per trapped opcode; the deadline is a
#: tick count (24 bits covers x100 inflation of the intended value).
MSR_TARGET_WIDTHS: Dict[str, int] = {
    "SUIT_DISABLE_MASK": 11,
    "SUIT_CURVE_SELECT": 1,
    "SUIT_DEADLINE": 24,
}


@dataclass(frozen=True)
class FaultloadSpec:
    """One campaign's declarative faultload.

    Attributes:
        name: campaign name (used in seeds, file names and reports).
        scope: target scope (see :data:`TARGET_SCOPES`).
        fault_model: fault model (must be valid for the scope).
        multiplicity: simultaneous injections per run.
        samples: runs per undervolt-depth grid point.
        seed: master seed; the whole campaign is a pure function of it.
        cpu: paper CPU short name ("A", "B", "C", "i5").
        workload: workload profile supplying the instruction mix.
        offsets_v: efficient-curve offsets (negative volts), shallow to
            deep — the undervolt-depth axis of the report.
        n_ops: faultable-instruction executions simulated per run.
        deadline_us: intended SUIT deadline in microseconds.
        targets: restrict the scope's target space (empty: scope
            defaults — all MSRs / all faultable opcodes / all curve
            anchors).
        drift_mean_v: mean of the Gaussian drift (volts; positive moves
            Vmin toward the curve, i.e. less margin).
        drift_sigma_v: standard deviation of the drift (volts).
        flip_rate: per-execution background bit-flip probability
            (``injector`` scope).
    """

    name: str
    scope: str
    fault_model: str
    multiplicity: int = 1
    samples: int = 8
    seed: int = 0
    cpu: str = "C"
    workload: str = "nginx"
    offsets_v: Tuple[float, ...] = (-0.050, -0.080, -0.110, -0.140)
    n_ops: int = 1200
    deadline_us: float = 30.0
    targets: Tuple[str, ...] = ()
    drift_mean_v: float = 0.040
    drift_sigma_v: float = 0.020
    flip_rate: float = 0.001

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a name")
        if self.scope not in TARGET_SCOPES:
            raise ValueError(
                f"unknown scope {self.scope!r}; know {TARGET_SCOPES}")
        allowed = SCOPE_FAULT_MODELS[self.scope]
        if self.fault_model not in allowed:
            raise ValueError(
                f"fault model {self.fault_model!r} invalid for scope "
                f"{self.scope!r}; allowed: {allowed}")
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if not self.offsets_v:
            raise ValueError("need at least one undervolt offset")
        if any(o >= 0 for o in self.offsets_v):
            raise ValueError("offsets must be negative (undervolts)")
        if self.n_ops < 1:
            raise ValueError("n_ops must be >= 1")
        if self.deadline_us <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 <= self.flip_rate <= 1.0:
            raise ValueError("flip_rate must be a probability")
        if self.scope == "msr":
            unknown = set(self.targets) - set(MSR_TARGET_WIDTHS)
            if unknown:
                raise ValueError(f"unknown MSR target(s): {sorted(unknown)}")

    @property
    def n_runs(self) -> int:
        """Size of the sample matrix."""
        return self.samples * len(self.offsets_v)

    def to_json_dict(self) -> dict:
        """Plain-JSON form (round-trips through :meth:`from_json_dict`)."""
        payload = asdict(self)
        payload["offsets_v"] = list(self.offsets_v)
        payload["targets"] = list(self.targets)
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultloadSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (or a spec
        file's parsed contents).  Unknown keys raise, so a typo in a
        spec file fails loudly instead of silently using a default."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        data = dict(payload)
        for key in ("offsets_v", "targets"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)

    def canonical_json(self) -> str:
        """Deterministic serialization (digest input)."""
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Content address of the faultload; checkpoint files pin it so
        ``campaign resume`` refuses a checkpoint from a different spec."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def with_overrides(self, **kwargs) -> "FaultloadSpec":
        """A copy with the given fields replaced (CLI overrides)."""
        return replace(self, **kwargs)


def load_spec(path: Path) -> FaultloadSpec:
    """Load a spec from a ``.json`` or ``.toml`` file.

    TOML needs the stdlib ``tomllib`` (Python >= 3.11); on older
    interpreters a clear error tells the user to supply JSON instead.
    """
    path = Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py<3.11 branch
            raise RuntimeError(
                "TOML specs need Python >= 3.11 (stdlib tomllib); "
                "convert the spec to JSON")
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    else:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    if "campaign" in payload and isinstance(payload["campaign"], dict):
        payload = payload["campaign"]  # allow a [campaign] TOML table
    return FaultloadSpec.from_json_dict(payload)


#: The canned campaigns shipped with the reproduction (also registered
#: as experiments: ``ext_campaign_msr`` / ``ext_campaign_vmin``).
CANNED_CAMPAIGNS: Dict[str, FaultloadSpec] = {
    # Flip bits in the SUIT MSRs while serving nginx.  Cleared disable-
    # mask bits surface as *detected* (the invariant monitor trips) once
    # the offset is deep enough to cross the untrapped opcode's Vmin;
    # curve-select / deadline corruption surfaces as *degraded*.
    "msr_bitflip_nginx": FaultloadSpec(
        name="msr_bitflip_nginx",
        scope="msr",
        fault_model="bit_flip",
        multiplicity=1,
        samples=8,
        cpu="C",
        workload="nginx",
        offsets_v=(-0.050, -0.080, -0.110, -0.140),
        n_ops=1200,
    ),
    # Drift the per-instruction Vmin margins toward the curve (aging /
    # heating) while the monitor still believes the calibrated values:
    # the silent-data-corruption rate climbs with undervolt depth.
    # Targets: the statically hardened IMUL — the one faultable opcode
    # SUIT leaves on the efficient curve, so its margin erosion is the
    # SDC channel — plus two trapped opcodes as controls (they execute
    # at the conservative voltage and should mask).
    "vmin_drift_nginx": FaultloadSpec(
        name="vmin_drift_nginx",
        scope="vmin",
        fault_model="drift",
        multiplicity=1,
        samples=12,
        cpu="C",
        workload="nginx",
        offsets_v=(-0.097, -0.140, -0.180, -0.220),
        n_ops=1200,
        targets=("IMUL", "AESENC", "VPCLMULQDQ"),
        drift_mean_v=0.040,
        drift_sigma_v=0.020,
    ),
}


def canned_campaign(name: str) -> FaultloadSpec:
    """Look up a canned campaign (ValueError with the catalogue if unknown)."""
    try:
        return CANNED_CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown canned campaign {name!r}; know "
            f"{sorted(CANNED_CAMPAIGNS)} (or pass a spec file path)")


def resolve_spec(name_or_path: str) -> FaultloadSpec:
    """A canned campaign name, or a path to a JSON/TOML spec file."""
    if name_or_path in CANNED_CAMPAIGNS:
        return CANNED_CAMPAIGNS[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return load_spec(path)
    return canned_campaign(name_or_path)  # raises with the catalogue
