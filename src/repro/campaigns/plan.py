"""Deterministic expansion of a faultload into per-run injection plans.

Mirrors :meth:`repro.testkit.chaos.FaultPlan.generate`: every run of
the sample matrix gets a private PRNG seeded by
``sha256(domain, seed, campaign, offset_index, sample_index)``, so the
expanded plan is a pure function of the spec — identical across
processes, platforms and resume boundaries, and statistically
decorrelated between runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaigns.spec import MSR_TARGET_WIDTHS, FaultloadSpec

#: Domain-separation tag; bump when the expansion scheme changes so
#: checkpoints and goldens keyed on run seeds invalidate cleanly.
_PLAN_DOMAIN = "repro.campaigns.plan.v1"

def trapped_mask_order() -> Tuple[str, ...]:
    """Stable bit order of the SUIT disable mask: the trapped opcodes,
    sorted by name (bit 0 = first name)."""
    from repro.isa.faultable import TRAPPED_OPCODES

    return tuple(sorted(op.name for op in TRAPPED_OPCODES))


def faultable_order() -> Tuple[str, ...]:
    """Stable name order of the full faultable set (``vmin`` targets)."""
    from repro.isa.faultable import FAULTABLE_OPCODES

    return tuple(sorted(op.name for op in FAULTABLE_OPCODES))


@dataclass(frozen=True)
class Injection:
    """One concrete fault to apply to the modeled machine.

    Attributes:
        target: scope-specific target name — an MSR name (``msr``), a
            faultable opcode name (``vmin``), ``anchor:<i>`` (``dvfs``)
            or ``background`` (``injector``).
        model: fault model applied to the target.
        bit: bit position for the bit models (None for analog faults).
        amount: drift in volts (``vmin``/``dvfs``) or the background
            flip probability (``injector``).
    """

    target: str
    model: str
    bit: Optional[int] = None
    amount: float = 0.0

    def describe(self) -> str:
        """Human-readable form for the report drill-down."""
        if self.model in ("bit_flip", "stuck_at_0", "stuck_at_1"):
            if self.target == "background":
                return f"background flips @ p={self.amount:g}/op"
            return f"{self.target} bit {self.bit} {self.model}"
        return f"{self.target} drift {self.amount * 1e3:+.1f} mV"

    def to_json_dict(self) -> dict:
        """JSON form (exact inverse of :meth:`from_json_dict`)."""
        return {"target": self.target, "model": self.model,
                "bit": self.bit, "amount": self.amount}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Injection":
        return cls(target=payload["target"], model=payload["model"],
                   bit=payload.get("bit"),
                   amount=float(payload.get("amount", 0.0)))


@dataclass(frozen=True)
class RunPlan:
    """One run of the sample matrix.

    Attributes:
        index: global run index (0..n_runs-1, offset-major).
        offset_v: efficient-curve offset of this run (undervolt depth).
        seed: derived 32-bit run seed (chip sampling, op mix, operands,
            injector randomness all derive private streams from it).
        injections: the faults this run applies.
    """

    index: int
    offset_v: float
    seed: int
    injections: Tuple[Injection, ...]

    def to_json_dict(self) -> dict:
        """JSON form (exact inverse of :meth:`from_json_dict`)."""
        return {"index": self.index, "offset_v": self.offset_v,
                "seed": self.seed,
                "injections": [i.to_json_dict() for i in self.injections]}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunPlan":
        return cls(index=int(payload["index"]),
                   offset_v=float(payload["offset_v"]),
                   seed=int(payload["seed"]),
                   injections=tuple(Injection.from_json_dict(i)
                                    for i in payload["injections"]))


def _run_digest(spec: FaultloadSpec, offset_index: int,
                sample_index: int) -> bytes:
    material = (f"{_PLAN_DOMAIN}:{spec.seed}:{spec.name}:"
                f"{offset_index}:{sample_index}")
    return hashlib.sha256(material.encode("utf-8")).digest()


def run_seed(spec: FaultloadSpec, offset_index: int,
             sample_index: int) -> int:
    """The derived 32-bit seed of one run (numpy-compatible)."""
    return int.from_bytes(_run_digest(spec, offset_index, sample_index)[:4],
                          "big")


def _run_rng(spec: FaultloadSpec, offset_index: int,
             sample_index: int) -> random.Random:
    """The private PRNG steering one run's injection choices (a
    different slice of the digest than the run seed, so injection
    choices and simulation randomness never share a stream)."""
    digest = _run_digest(spec, offset_index, sample_index)
    return random.Random(int.from_bytes(digest[8:16], "big"))


def _dvfs_anchor_count(spec: FaultloadSpec) -> int:
    from repro.hardware.models import ALL_CPU_FACTORIES

    cpu = ALL_CPU_FACTORIES[spec.cpu]()
    return len(cpu.conservative_curve.points)


def _draw_injections(spec: FaultloadSpec,
                     rng: random.Random,
                     msr_targets: Tuple[str, ...],
                     vmin_targets: Tuple[str, ...],
                     n_anchors: int) -> Tuple[Injection, ...]:
    injections: List[Injection] = []
    for _ in range(spec.multiplicity):
        if spec.scope == "msr":
            target = msr_targets[rng.randrange(len(msr_targets))]
            bit = rng.randrange(MSR_TARGET_WIDTHS[target])
            injections.append(Injection(target=target,
                                        model=spec.fault_model, bit=bit))
        elif spec.scope == "vmin":
            target = vmin_targets[rng.randrange(len(vmin_targets))]
            amount = rng.gauss(spec.drift_mean_v, spec.drift_sigma_v)
            injections.append(Injection(target=target, model="drift",
                                        amount=amount))
        elif spec.scope == "dvfs":
            anchor = rng.randrange(n_anchors)
            amount = rng.gauss(-spec.drift_mean_v, spec.drift_sigma_v)
            injections.append(Injection(target=f"anchor:{anchor}",
                                        model="drift", amount=amount))
        else:  # injector
            injections.append(Injection(target="background",
                                        model="bit_flip",
                                        amount=spec.flip_rate))
    return tuple(injections)


def expand(spec: FaultloadSpec) -> List[RunPlan]:
    """Expand *spec* into its full, deterministic sample matrix.

    Offset-major: runs ``[j * samples + i]`` share ``offsets_v[j]``.
    A pure function of the spec (``expand(spec) == expand(spec)``,
    byte-for-byte after serialization).
    """
    msr_targets = tuple(spec.targets) if (spec.scope == "msr" and spec.targets) \
        else tuple(sorted(MSR_TARGET_WIDTHS))
    vmin_targets = tuple(spec.targets) if (spec.scope == "vmin" and spec.targets) \
        else faultable_order()
    if spec.scope == "vmin":
        unknown = set(vmin_targets) - set(faultable_order())
        if unknown:
            raise ValueError(
                f"unknown faultable opcode target(s): {sorted(unknown)}")
    n_anchors = _dvfs_anchor_count(spec) if spec.scope == "dvfs" else 0

    plans: List[RunPlan] = []
    for j, offset in enumerate(spec.offsets_v):
        for i in range(spec.samples):
            rng = _run_rng(spec, j, i)
            plans.append(RunPlan(
                index=j * spec.samples + i,
                offset_v=float(offset),
                seed=run_seed(spec, j, i),
                injections=_draw_injections(spec, rng, msr_targets,
                                            vmin_targets, n_anchors),
            ))
    return plans
