"""Event-based instruction-trace simulator (paper Fig 15, section 6.2).

Models one CPU (or one shared DVFS domain) executing a faultable-
instruction trace under an operating strategy.  Between faultable events
the CPU retires instructions at ``IPC * frequency``; every p-state has a
relative speed and power (from :meth:`CpuModel.operating_points`), and
the measured delays of section 5.2/5.3 are charged on every exception,
frequency change (with stall) and voltage settle.

The simulator implements the :class:`~repro.core.strategy.CpuControl`
interface, so the strategies read exactly like the paper's Listing 1.

Dense trap episodes are consumed in bulk (vectorised over the gap
array), which keeps multi-million-event traces tractable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import SimResult, imul_latency_overhead
from repro.core.params import StrategyParams
from repro.core.strategy import CpuControl, OperatingStrategy, SuitState
from repro.core.thrashing import ThrashingMonitor
from repro.emulation.dispatch import emulation_cycles
from repro.hardware.cpu import CpuModel
from repro.kernel.timer import DeadlineTimer
from repro.obs.tracer import TRACK_SIM, get_tracer
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

_TIMELINE_CAP = 200_000
_SCAN_CHUNK = 65_536
#: Gap thresholds are clamped here so they always fit int64; gaps are
#: bounded by n_instructions, far below it, so the clamp never changes
#: a comparison outcome.
_MAX_GAP = 2 ** 62


class TraceSimulator(CpuControl):
    """Simulate one trace on one CPU under one operating strategy.

    Args:
        cpu: hardware model.
        profile: workload profile (for the IMUL hardening tax and, in
            estimates, no-SIMD overheads).
        trace: the faultable-instruction trace to execute.
        strategy: operating strategy (drives this object as CpuControl).
        voltage_offset: efficient-curve offset in volts (negative).
        seed: RNG seed for sampled delays.
        record_timeline: record (time, state) transitions for figures.
        harden_imul: apply the +1-cycle IMUL tax (on by default: SUIT
            hardware always ships the hardened multiplier).
    """

    def __init__(self, cpu: CpuModel, profile: WorkloadProfile,
                 trace: FaultableTrace, strategy: OperatingStrategy,
                 voltage_offset: float, seed: int = 0,
                 record_timeline: bool = False,
                 harden_imul: bool = True) -> None:
        if voltage_offset >= 0:
            raise ValueError("voltage_offset must be negative")
        self.cpu = cpu
        self.profile = profile
        self.trace = trace
        self.strategy = strategy
        self.voltage_offset = voltage_offset
        self.harden_imul = harden_imul
        self._rng = np.random.default_rng(seed)
        self._record = record_timeline
        # Telemetry: events are only built when a recording tracer is
        # installed (one boolean check per site keeps the hot path free).
        self._tracer = get_tracer()

        points = cpu.operating_points(voltage_offset)
        self._speed = {SuitState.E: points.speed_e,
                       SuitState.CF: points.speed_cf,
                       SuitState.CV: points.speed_cv}
        self._power = {SuitState.E: points.power_e,
                       SuitState.CF: points.power_cf,
                       SuitState.CV: points.power_cv}
        self._instr_rate_base = trace.ipc * cpu.nominal_frequency

        # Dynamic state.
        self._t = 0.0
        self._pos = 0  # instructions retired
        self._ev = 0  # next trace event
        self._state = SuitState.E
        self._power_now = self._power[SuitState.E]
        self._disabled = True
        # In-flight request: (completion time, target, power_only).
        # power_only marks the switch back to E: the core runs (and is
        # accounted) at E immediately, but package power only drops once
        # the regulator settles.
        self._pending: Optional[Tuple[float, SuitState, bool]] = None
        self._timer = DeadlineTimer()
        self._thrash = ThrashingMonitor(
            strategy.params.thrash_timespan_s, strategy.params.thrash_exception_count)
        self._emulated_current = False

        # Accounting.
        self._energy = 0.0
        self._state_time: Dict[str, float] = {"E": 0.0, "Cf": 0.0, "CV": 0.0, "stall": 0.0}
        self._n_exceptions = 0
        self._n_switches = 0
        self._n_timer_fires = 0
        self._n_thrash = 0
        self._timeline: Optional[List[Tuple[float, str]]] = [] if record_timeline else None
        self._timeline_truncated = False
        self._scan_buf = np.empty(_SCAN_CHUNK, dtype=bool)

    # ------------------------------------------------------------------
    # CpuControl interface (what the strategies drive, as in Listing 1)
    # ------------------------------------------------------------------

    @property
    def now_s(self) -> float:
        return self._t

    def change_pstate_wait(self, target: SuitState) -> None:
        """Blocking p-state change; the core stalls for the transition."""
        self._pending = None
        if target is self._state:
            return
        if target in (SuitState.CF, SuitState.CV) and self._state in (SuitState.CF, SuitState.CV):
            # Already on the conservative curve (e.g. a trap raced the
            # cancelled switch-back): nothing to wait for.
            self._set_state(target if target is SuitState.CV else self._state)
            return
        if target is SuitState.CF:
            delay, _stall = self.cpu.transitions.frequency_change(self._rng)
        elif target is SuitState.CV:
            if self.cpu.transitions.voltage is None:
                raise ValueError(f"{self.cpu.name} has no voltage control; "
                                 "use the f or e strategy")
            delay, _stall = self.cpu.transitions.pstate_change(self._rng, needs_voltage=True)
        else:
            delay, _stall = self.cpu.transitions.frequency_change(self._rng)
        self._stall(delay)
        self._set_state(target)
        self._n_switches += 1

    def change_pstate_async(self, target: SuitState) -> None:
        """Non-blocking change request; replaces any in-flight request."""
        if target is self._state and self._pending is None:
            return
        if target is SuitState.CV:
            if self.cpu.transitions.voltage is None:
                raise ValueError(f"{self.cpu.name} has no voltage control")
            delay = self.cpu.transitions.voltage_change(self._rng)
            if self._tracer.enabled:
                self._tracer.complete("voltage settle", "sim", ts_s=self._t,
                                      dur_s=delay, track=TRACK_SIM,
                                      args={"target": target.value})
            self._pending = (self._t + delay, target, False)
            return
        if target is SuitState.E:
            # The switch back is free for execution (section 4.1: no need
            # to wait for the efficient curve); only the power improves
            # late, once the voltage has actually dropped.
            if self._state is SuitState.CV and self.cpu.transitions.voltage is not None:
                delay = self.cpu.transitions.voltage_change(self._rng)
                if self._tracer.enabled:
                    self._tracer.complete("voltage settle", "sim",
                                          ts_s=self._t, dur_s=delay,
                                          track=TRACK_SIM,
                                          args={"target": target.value})
            else:
                delay, _ = self.cpu.transitions.frequency_change(self._rng)
            old_power = self._power_now
            self._set_state(SuitState.E)
            self._power_now = old_power
            self._pending = (self._t + delay, target, True)
            return
        delay, _ = self.cpu.transitions.frequency_change(self._rng)
        self._pending = (self._t + delay, target, False)

    def set_instructions_disabled(self, disabled: bool) -> None:
        """Write the SUIT disable bit for the trapped set."""
        self._disabled = disabled

    def set_timer_interrupt(self, deadline_s: float) -> None:
        """Arm the deadline timer (stretched values count as thrashing)."""
        if deadline_s > self.strategy.params.deadline_s:
            self._n_thrash += 1
        self._timer.arm(self._t, deadline_s)

    def exception_count_in_timespan(self, timespan_s: float) -> int:
        """#DO exceptions within the trailing *timespan_s* (must be p_ts)."""
        # The strategies always query their own p_ts, which the monitor
        # was built with; guard against mismatching use.
        if abs(timespan_s - self._thrash.timespan_s) > 1e-12:
            raise ValueError("timespan differs from the configured p_ts")
        return self._thrash.count_in_window(self._t)

    def emulate_current_instruction(self) -> None:
        """User-space emulation: double kernel transition plus the
        emulation routine itself (section 3.4, 5.3)."""
        opcode = self.trace.event_opcode(self._ev)
        call = self.cpu.emulation_call_delay.sample(self._rng)
        # The measured emulation-call delay covers both kernel round
        # trips end-to-end, so the already-charged exception entry is
        # part of it.
        call = max(call - self.cpu.exception_delay.mean_s, 0.0)
        freq = self.cpu.nominal_frequency * self._speed[self._state]
        routine = emulation_cycles(opcode) / freq
        if self._tracer.enabled:
            self._tracer.complete("emulation", "sim", ts_s=self._t,
                                  dur_s=call + routine, track=TRACK_SIM,
                                  args={"opcode": opcode.name})
        self._stall(call + routine)
        self._emulated_current = True

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Execute the trace to completion and return the result."""
        trace = self.trace
        n = trace.n_instructions
        idx = trace.indices
        self._log_state()

        while self._pos < n:
            next_idx = int(idx[self._ev]) if self._ev < trace.n_events else n
            rate = self._rate()
            t_arrive = self._t + max(next_idx - self._pos, 0) / rate

            t_pending = self._pending[0] if self._pending else np.inf
            t_timer = self._timer.fires_at if self._timer.armed else np.inf

            t_next = min(t_arrive, t_pending, t_timer)
            self._advance_to(t_next, rate)

            if t_next == t_pending:
                self._complete_pending()
            elif t_next == t_timer:
                self._fire_timer()
            elif self._ev < trace.n_events:
                self._handle_event()
            else:
                break  # reached end of trace

        return self._result()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _rate(self) -> float:
        return self._instr_rate_base * self._speed[self._state]

    def _advance_to(self, t_target: float, rate: float) -> None:
        # A bulk jump can overshoot a pending completion by a fraction of
        # one instruction; such events then fire "immediately".
        dt = max(t_target - self._t, 0.0)
        self._pos = min(self._pos + dt * rate, self.trace.n_instructions)
        self._account(dt, self._state.value)
        self._t += dt

    def _stall(self, duration_s: float) -> None:
        """Advance time without retiring instructions.

        The deadline countdown is core-clock driven, so it freezes while
        the core is stalled.
        """
        self._account(duration_s, "stall")
        self._t += duration_s
        self._timer.defer(duration_s)

    def _account(self, dt: float, label: str) -> None:
        self._energy += self._power_now * dt
        self._state_time[label] = self._state_time.get(label, 0.0) + dt

    def _set_state(self, state: SuitState) -> None:
        if state is not self._state:
            if self._tracer.enabled:
                self._tracer.instant(
                    "p-state change", "sim", ts_s=self._t, track=TRACK_SIM,
                    args={"from": self._state.value, "to": state.value})
            self._state = state
            self._power_now = self._power[state]
            self._log_state()

    def _log_state(self) -> None:
        if self._timeline is not None:
            if len(self._timeline) < _TIMELINE_CAP:
                label = self._state.value + ("/disabled" if self._disabled else "")
                self._timeline.append((self._t, label))
            else:
                self._timeline_truncated = True

    def _complete_pending(self) -> None:
        assert self._pending is not None
        _, target, power_only = self._pending
        self._pending = None
        if power_only:
            self._power_now = self._power[target]
            return
        if target is SuitState.CV and self._state is SuitState.CF:
            # Voltage reached the conservative level: raise the clock
            # back to nominal — the second stall of Fig 6.
            _, stall = self.cpu.transitions.frequency_change(self._rng)
            self._stall(stall)
            self._n_switches += 1
        self._set_state(target)

    def _fire_timer(self) -> None:
        self._timer.cancel()
        self._n_timer_fires += 1
        if self._tracer.enabled:
            self._tracer.instant("timer fire", "sim", ts_s=self._t,
                                 track=TRACK_SIM)
        self.strategy.on_timer_interrupt(self)

    def _handle_event(self) -> None:
        if not self._disabled:
            # Enabled faultable execution: only resets the deadline.
            self._timer.reset(self._t)
            self._ev += 1
            self._bulk_consume()
            return
        # Disabled: #DO exception.
        self._n_exceptions += 1
        self._thrash.record(self._t)
        if self._tracer.enabled:
            self._tracer.instant(
                "#DO trap", "sim", ts_s=self._t, track=TRACK_SIM,
                args={"opcode": self.trace.event_opcode(self._ev).name,
                      "event": self._ev})
        self._stall(self.cpu.exception_delay.sample(self._rng))
        self._emulated_current = False
        self.strategy.on_disabled_instruction(self)
        if self._tracer.enabled:
            self._tracer.instant(
                "decision: emulate" if self._emulated_current
                else "decision: curve-switch",
                "sim", ts_s=self._t, track=TRACK_SIM)
        if self._emulated_current:
            # Instruction consumed by the emulation path.
            self._ev += 1
            self._bulk_emulate()
            return
        if self._disabled:
            raise RuntimeError(
                f"strategy {self.strategy.name!r} left the instruction disabled "
                "without emulating it; it can never retire")
        # Re-execute on the conservative curve; resets the fresh timer.
        self._timer.reset(self._t)
        self._ev += 1
        self._bulk_consume()

    def _bulk_consume(self) -> None:
        """Consume runs of enabled events whose gaps stay within the
        deadline in one step (they only reset the timer).

        Stops at the first gap exceeding the deadline, at the pending
        completion time, or at the end of the events.
        """
        if self._disabled or not self._timer.armed:
            return
        trace = self.trace
        gaps = trace.gaps()
        idx = trace.indices
        rate = self._rate()
        deadline_instr = self._timer.armed_deadline * rate

        hi = trace.n_events
        if self._pending is not None:
            horizon_pos = self._pos + (self._pending[0] - self._t) * rate
            # Integer query: a float query would promote (copy) the
            # whole int64 index array on every call.  For integer
            # indices, idx >= horizon_pos iff idx >= ceil(horizon_pos).
            hi = int(np.searchsorted(idx, math.ceil(horizon_pos),
                                     side="left"))
        start = self._ev
        if start >= hi:
            return
        # Galloping chunked scan for the first oversized gap, against an
        # integer threshold (gap > x iff gap > floor(x) for int gaps)
        # and into a reused scratch buffer: no per-chunk temporaries.
        thr = min(math.floor(deadline_instr), _MAX_GAP)
        stop = hi  # exclusive index of first non-consumable event
        buf = self._scan_buf
        chunk = _SCAN_CHUNK
        lo = start
        while lo < hi:
            end = min(lo + chunk, hi)
            m = end - lo
            if m > buf.size:
                buf = self._scan_buf = np.empty(m, dtype=bool)
            big = np.greater(gaps[lo:end], thr, out=buf[:m])
            k = int(np.argmax(big))
            if big[k]:
                stop = lo + k
                break
            lo = end
            chunk *= 2
        last = stop - 1
        if last < start:
            return
        # Jump: consume events start..last at constant speed/power.
        target_pos = int(idx[last]) + 1
        dt = (target_pos - self._pos) / rate
        self._account(dt, self._state.value)
        self._t += dt
        self._pos = target_pos
        self._ev = last + 1
        self._timer.reset(self._t)

    def _bulk_emulate(self) -> None:
        """Fast path for pure-emulation runs: with no timer and no
        pending change the state never varies again, so all remaining
        events can be charged in one vectorised step."""
        if self.strategy.switches_curves or self._timer.armed or self._pending is not None:
            return
        trace = self.trace
        n_rem = trace.n_events - self._ev
        if n_rem <= 0:
            return
        rate = self._rate()
        freq = self.cpu.nominal_frequency * self._speed[self._state]
        # Execution time of the instructions up to (and including) the
        # last event, plus per-event emulation stalls.
        target_pos = int(trace.indices[-1]) + 1
        run_time = (target_pos - self._pos) / rate
        call = self.cpu.emulation_call_delay
        calls = np.clip(
            self._rng.normal(call.mean_s, call.sigma_s or 0.0, size=n_rem),
            call.mean_s * 0.25, call.mean_s * 4.0)
        routines = trace.emulation_cycle_table()[trace.opcodes[self._ev:]] / freq
        stall_total = float(calls.sum() + routines.sum())
        self._energy += self._power_now * (run_time + stall_total)
        self._state_time[self._state.value] += run_time
        self._state_time["stall"] += stall_total
        self._t += run_time + stall_total
        self._pos = target_pos
        self._ev = trace.n_events
        self._n_exceptions += n_rem

    def _result(self) -> SimResult:
        duration = self._t
        energy = self._energy
        if self.harden_imul:
            tax = 1.0 + imul_latency_overhead(self.profile, extra_cycles=1)
            duration *= tax
            energy *= tax
            for key in self._state_time:
                self._state_time[key] *= tax
        return SimResult(
            workload=self.trace.name,
            cpu_name=self.cpu.name,
            strategy=self.strategy.name,
            voltage_offset=self.voltage_offset,
            duration_s=duration,
            baseline_duration_s=self.trace.duration_s(self.cpu.nominal_frequency),
            energy_rel=energy,
            state_time=dict(self._state_time),
            n_exceptions=self._n_exceptions,
            n_switches=self._n_switches,
            n_timer_fires=self._n_timer_fires,
            n_thrash_stretches=self._n_thrash,
            timeline=self._timeline,
            timeline_truncated=self._timeline_truncated,
        )
