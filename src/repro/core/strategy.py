"""Operating strategies (paper section 4.3, Listing 1).

The operating strategy is the OS policy deciding how to react to a #DO
exception and when to return to the efficient curve.  Four strategies
exist, built from the two switching paths of Fig 4:

* **Emulation** (``e``) — never switch; emulate the instruction in the
  exception handler's user-space return path.
* **Frequency** (``f``) — switch E <-> Cf by changing only the frequency.
* **Voltage** (``V``) — switch E <-> CV by changing only the voltage
  (about a magnitude slower, the CPU waits for the regulator).
* **Combination** (``fV``) — E -> Cf quickly by frequency, request the
  voltage raise asynchronously, continue at Cf; if the burst outlasts the
  regulator, finish at CV with full performance (Fig 6, Listing 1).

Strategies talk to the hardware exclusively through the small
:class:`CpuControl` interface, mirroring the paper's Listing 1.
"""

from __future__ import annotations

import abc
import enum

from repro.core.params import StrategyParams


class SuitState(enum.Enum):
    """The three operating points of a SUIT system (Fig 4)."""

    E = "E"  # efficient curve, faultable instructions disabled
    CF = "Cf"  # conservative curve reached by lowering the frequency
    CV = "CV"  # conservative curve reached by raising the voltage


class CpuControl(abc.ABC):
    """The hardware/OS interface an operating strategy drives.

    Implemented by the trace simulator; mirrors Listing 1's ``cpu``
    object one-to-one.
    """

    @abc.abstractmethod
    def change_pstate_wait(self, target: SuitState) -> None:
        """Switch the DVFS operating point, blocking until it is active."""

    @abc.abstractmethod
    def change_pstate_async(self, target: SuitState) -> None:
        """Request a DVFS change and continue executing; cancels any
        other in-flight request."""

    @abc.abstractmethod
    def set_instructions_disabled(self, disabled: bool) -> None:
        """Write the SUIT disable MSR for the faultable set."""

    @abc.abstractmethod
    def set_timer_interrupt(self, deadline_s: float) -> None:
        """Arm the deadline timer; it resets on every faultable
        execution and fires the strategy's timer handler at zero."""

    @abc.abstractmethod
    def exception_count_in_timespan(self, timespan_s: float) -> int:
        """#DO exceptions within the trailing *timespan_s* seconds."""

    @abc.abstractmethod
    def emulate_current_instruction(self) -> None:
        """Emulate the trapped instruction in user space and skip it."""

    @property
    @abc.abstractmethod
    def now_s(self) -> float:
        """Current time."""


class OperatingStrategy(abc.ABC):
    """Base class: a named policy over :class:`CpuControl`."""

    #: Short name as used in Table 6 ("fV", "f", "V", "e").
    name: str = "?"
    #: Whether the strategy ever leaves the efficient curve.
    switches_curves: bool = True

    def __init__(self, params: StrategyParams) -> None:
        self.params = params

    @abc.abstractmethod
    def on_disabled_instruction(self, cpu: CpuControl) -> None:
        """#DO exception handler."""

    def on_timer_interrupt(self, cpu: CpuControl) -> None:
        """Deadline expiry handler: back to the efficient curve."""
        cpu.set_instructions_disabled(True)
        cpu.change_pstate_async(SuitState.E)

    def _arm_deadline(self, cpu: CpuControl) -> None:
        """Arm the deadline, stretched if thrashing is detected
        (Listing 1, lines 10-14)."""
        p = self.params
        thrashing = (cpu.exception_count_in_timespan(p.thrash_timespan_s)
                     >= p.thrash_exception_count)
        cpu.set_timer_interrupt(p.scaled_deadline(thrashing))


class FVStrategy(OperatingStrategy):
    """The combination strategy ``fV`` (Listing 1).

    On #DO: a fast frequency switch to Cf (waited on), an asynchronous
    voltage-raise request towards CV, instructions re-enabled, deadline
    armed.  Short bursts finish at Cf and return to E, cancelling the
    voltage change; long bursts reach CV and run at full performance.
    """

    name = "fV"

    def on_disabled_instruction(self, cpu: CpuControl) -> None:
        """Listing 1: fast Cf switch, async CV request, enable, arm."""
        cpu.change_pstate_wait(SuitState.CF)
        cpu.change_pstate_async(SuitState.CV)
        cpu.set_instructions_disabled(False)
        self._arm_deadline(cpu)


class FrequencyStrategy(OperatingStrategy):
    """Frequency-only switching ``f`` (E <-> Cf).

    Highly efficient (the voltage never rises) but the whole burst runs
    at the reduced Cf clock.  The only usable switching strategy on CPUs
    without direct voltage control (CPU B).
    """

    name = "f"

    def on_disabled_instruction(self, cpu: CpuControl) -> None:
        """Frequency path only: wait for Cf, enable, arm the deadline."""
        cpu.change_pstate_wait(SuitState.CF)
        cpu.set_instructions_disabled(False)
        self._arm_deadline(cpu)


class VoltageStrategy(OperatingStrategy):
    """Voltage-only switching ``V`` (E <-> CV).

    Full performance on the conservative curve, but every switch stalls
    for the regulator settle time (~a magnitude slower than frequency
    changes).
    """

    name = "V"

    def on_disabled_instruction(self, cpu: CpuControl) -> None:
        """Voltage path: stall for the regulator, enable, arm."""
        cpu.change_pstate_wait(SuitState.CV)
        cpu.set_instructions_disabled(False)
        self._arm_deadline(cpu)


class EmulationStrategy(OperatingStrategy):
    """Emulation ``e``: stay on the efficient curve, emulate every
    trapped instruction in user space (section 3.4).

    Not possible inside trusted execution environments; catastrophic for
    trap-dense workloads, unbeatable for trap-free ones.
    """

    name = "e"
    switches_curves = False

    def on_disabled_instruction(self, cpu: CpuControl) -> None:
        """Emulate in user space; never leave the efficient curve."""
        cpu.emulate_current_instruction()

    def on_timer_interrupt(self, cpu: CpuControl) -> None:  # pragma: no cover
        """The emulation strategy never arms the timer."""
        raise RuntimeError("the emulation strategy never arms the deadline timer")


def strategy_for(name: str, params: StrategyParams) -> OperatingStrategy:
    """Construct a strategy by its Table 6 short name."""
    classes = {cls.name: cls for cls in
               (FVStrategy, FrequencyStrategy, VoltageStrategy, EmulationStrategy)}
    try:
        return classes[name](params)
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; know {sorted(classes)}")
