"""Thrashing prevention (paper section 4.3).

If the gap between disabled instructions is a bit longer than the
deadline, the CPU constantly switches DVFS curves, adding considerable
overhead.  The OS detects this by counting #DO exceptions within a
look-back window and stretches the deadline while the count is high,
keeping the CPU on the conservative curve through such phases.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class ThrashingMonitor:
    """Sliding-window #DO exception counter.

    Args:
        timespan_s: look-back window (``p_ts``).
        threshold: exception count that flags thrashing (``p_ec``).
    """

    def __init__(self, timespan_s: float, threshold: int) -> None:
        if timespan_s <= 0:
            raise ValueError("timespan must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.timespan_s = timespan_s
        self.threshold = threshold
        self._times: Deque[float] = deque()
        self.trigger_count = 0

    def record(self, now_s: float) -> None:
        """Record one #DO exception at *now_s* (non-decreasing times)."""
        if self._times and now_s < self._times[-1]:
            raise ValueError("exception times must be non-decreasing")
        self._times.append(now_s)
        self._evict(now_s)

    def count_in_window(self, now_s: float) -> int:
        """Exceptions within the last ``timespan_s`` seconds."""
        self._evict(now_s)
        return len(self._times)

    def is_thrashing(self, now_s: float) -> bool:
        """Whether the current rate flags thrashing; counts triggers."""
        thrashing = self.count_in_window(now_s) >= self.threshold
        if thrashing:
            self.trigger_count += 1
        return thrashing

    def reset(self) -> None:
        """Forget all recorded exceptions."""
        self._times.clear()
        self.trigger_count = 0

    def _evict(self, now_s: float) -> None:
        cutoff = now_s - self.timespan_s
        while self._times and self._times[0] < cutoff:
            self._times.popleft()
