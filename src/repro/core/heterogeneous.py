"""SUIT versus heterogeneous (P/E-core) designs (paper section 7).

big.LITTLE-style CPUs fix the split between performance and efficiency
cores at design time; "by design, they lack support for dynamic
adjustment of the number of cores for each type.  SUIT dynamically
adapts to workloads by running any number of cores with the
conservative or efficient DVFS curves."

This module quantifies that claim: a homogeneous SUIT package adapts
each core's curve to its task, while a static P/E package must serve
whatever task lands on whatever core type exists.  When the workload
mix shifts, the static split is wrong in one direction or the other;
SUIT is never worse than the best static split for the current mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.cpu import CpuModel


@dataclass(frozen=True)
class PhaseTask:
    """A task characterised by its trap intensity.

    Attributes:
        name: label.
        efficient_fraction: fraction of the task's time SUIT can spend
            on the efficient curve (1.0 = trap-free, 0.0 = trap-dense).
    """

    name: str
    efficient_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.efficient_fraction <= 1.0:
            raise ValueError("efficient_fraction must be a fraction")


@dataclass(frozen=True)
class CoreTypeRates:
    """Throughput and power of the available core operating modes.

    Attributes are (relative speed, relative power) pairs; the
    conservative mode is the 1.0/1.0 reference.
    """

    conservative: Tuple[float, float] = (1.0, 1.0)
    efficient: Tuple[float, float] = (1.03, 0.87)
    e_core: Tuple[float, float] = (0.55, 0.35)  # little core

    @classmethod
    def from_cpu(cls, cpu: CpuModel, voltage_offset: float = -0.097,
                 e_core: Tuple[float, float] = (0.55, 0.35)) -> "CoreTypeRates":
        points = cpu.operating_points(voltage_offset)
        return cls(
            conservative=(1.0, 1.0),
            efficient=(points.speed_e, points.power_e),
            e_core=e_core,
        )


@dataclass
class MixOutcome:
    """Throughput-per-watt of one design on one task mix.

    Attributes:
        label: design description.
        throughput: total relative throughput.
        power: total relative power.
    """

    label: str
    throughput: float
    power: float

    @property
    def efficiency(self) -> float:
        return self.throughput / self.power if self.power else 0.0

    @property
    def edp_score(self) -> float:
        """Inverse energy-delay product (throughput^2 / power): the
        balanced metric — little cores win raw perf/watt by giving up
        throughput; EDP charges them for it."""
        return self.throughput ** 2 / self.power if self.power else 0.0


def suit_outcome(tasks: Sequence[PhaseTask], rates: CoreTypeRates) -> MixOutcome:
    """A homogeneous SUIT package: each core runs its task, spending the
    task's efficient fraction on the efficient curve."""
    throughput = 0.0
    power = 0.0
    for task in tasks:
        f = task.efficient_fraction
        s_e, p_e = rates.efficient
        s_c, p_c = rates.conservative
        throughput += f * s_e + (1 - f) * s_c
        power += f * p_e + (1 - f) * p_c
    return MixOutcome("SUIT (adaptive curves)", throughput, power)


def static_pe_outcome(tasks: Sequence[PhaseTask], rates: CoreTypeRates,
                      n_e_cores: int) -> MixOutcome:
    """A static P/E split: the *n_e_cores* least trap-intense tasks run
    on little cores (their best placement), the rest on P cores at the
    conservative point (no SUIT: undervolting P cores would be unsafe).
    """
    if not 0 <= n_e_cores <= len(tasks):
        raise ValueError("n_e_cores out of range")
    ordered = sorted(tasks, key=lambda t: -t.efficient_fraction)
    throughput = 0.0
    power = 0.0
    for i, task in enumerate(ordered):
        speed, pwr = (rates.e_core if i < n_e_cores else rates.conservative)
        throughput += speed
        power += pwr
    return MixOutcome(f"static {len(tasks) - n_e_cores}P+{n_e_cores}E",
                      throughput, power)


def best_static_split(tasks: Sequence[PhaseTask],
                      rates: CoreTypeRates) -> MixOutcome:
    """The best static P/E split for this exact mix (the oracle the
    designer would have needed to know in advance)."""
    outcomes = [static_pe_outcome(tasks, rates, k)
                for k in range(len(tasks) + 1)]
    return max(outcomes, key=lambda o: o.edp_score)


def compare_over_mixes(mixes: Dict[str, Sequence[PhaseTask]],
                       rates: CoreTypeRates,
                       designed_e_cores: int) -> List[Tuple[str, MixOutcome, MixOutcome]]:
    """For each mix: SUIT vs the design-time-fixed P/E split.

    Returns (mix label, suit outcome, static outcome) triples.
    """
    results = []
    for label, tasks in mixes.items():
        results.append((label,
                        suit_outcome(tasks, rates),
                        static_pe_outcome(tasks, rates, designed_e_cores)))
    return results
