"""Operating-strategy parameter search (paper section 6.4, Table 7).

The paper ran hundreds of simulations to find the parameter values that
maximise the average efficiency gain, and found a *plateau*: varying the
deadline by +-10 us changes the average efficiency by only ~0.6 %, so
one parameter set works as an OS-wide policy.  :func:`grid_search`
reproduces that search (on a configurable workload subset, for speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import geomean_change
from repro.core.params import StrategyParams
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.cpu import CpuModel
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a parameter search.

    Attributes:
        best: the winning parameter set.
        best_efficiency: geometric-mean efficiency change at the optimum.
        table: every evaluated point, as (params, efficiency) pairs.
    """

    best: StrategyParams
    best_efficiency: float
    table: Tuple[Tuple[StrategyParams, float], ...]

    def sensitivity(self) -> float:
        """Spread of efficiency across the searched grid (max - min):
        small values confirm the paper's plateau observation."""
        effs = [e for _, e in self.table]
        return max(effs) - min(effs)


def evaluate_params(cpu: CpuModel, params: StrategyParams,
                    profiles: Sequence[WorkloadProfile],
                    traces: Dict[str, FaultableTrace],
                    strategy_name: str = "fV",
                    voltage_offset: float = -0.097,
                    seed: int = 0) -> float:
    """Geomean efficiency change of *params* over the workload set."""
    changes: List[float] = []
    for profile in profiles:
        sim = TraceSimulator(
            cpu=cpu,
            profile=profile,
            trace=traces[profile.name],
            strategy=strategy_for(strategy_name, params),
            voltage_offset=voltage_offset,
            seed=seed,
        )
        changes.append(sim.run().efficiency_change)
    return geomean_change(changes)


def grid_search(cpu: CpuModel,
                profiles: Sequence[WorkloadProfile],
                deadlines_s: Iterable[float],
                timespans_s: Iterable[float],
                exception_counts: Iterable[int],
                deadline_factors: Iterable[float],
                strategy_name: str = "fV",
                voltage_offset: float = -0.097,
                seed: int = 0) -> TuningResult:
    """Exhaustive grid search over the four strategy parameters."""
    traces = {p.name: generate_trace(p, seed=seed) for p in profiles}
    table: List[Tuple[StrategyParams, float]] = []
    best: Optional[Tuple[StrategyParams, float]] = None
    for dl in deadlines_s:
        for ts in timespans_s:
            for ec in exception_counts:
                for df in deadline_factors:
                    params = StrategyParams(dl, ts, ec, df)
                    eff = evaluate_params(cpu, params, profiles, traces,
                                          strategy_name, voltage_offset, seed)
                    table.append((params, eff))
                    if best is None or eff > best[1]:
                        best = (params, eff)
    assert best is not None
    return TuningResult(best=best[0], best_efficiency=best[1], table=tuple(table))


def deadline_sensitivity(cpu: CpuModel, profiles: Sequence[WorkloadProfile],
                         base: StrategyParams, delta_s: float = 10e-6,
                         voltage_offset: float = -0.097,
                         seed: int = 0) -> float:
    """Efficiency change (absolute) when the deadline moves +-*delta_s*.

    The paper reports ~0.6 % for +-10 us around the optimum.
    """
    traces = {p.name: generate_trace(p, seed=seed) for p in profiles}
    base_eff = evaluate_params(cpu, base, profiles, traces,
                               voltage_offset=voltage_offset, seed=seed)
    worst = 0.0
    for sign in (-1.0, 1.0):
        dl = max(base.deadline_s + sign * delta_s, 1e-6)
        params = StrategyParams(dl, base.thrash_timespan_s,
                                base.thrash_exception_count,
                                base.thrash_deadline_factor)
        eff = evaluate_params(cpu, params, profiles, traces,
                              voltage_offset=voltage_offset, seed=seed)
        worst = max(worst, abs(eff - base_eff))
    return worst
