"""Multi-core simulation on a shared DVFS domain (paper section 6.2/6.4).

On CPUs with a single frequency/voltage domain (CPU A), every core's #DO
exceptions switch the whole package, and frequency-change stalls hit all
cores.  The paper simulates this by pinning one instruction stream per
core.

Because all cores of the shared domain always run at the same clock and
the pinned streams have equal length and IPC, the k-core system is
equivalent to a single stream whose faultable events are the *merged*
(staggered) events of all cores: any core's event resets the shared
deadline or traps the shared domain.  :func:`merged_multicore_trace`
builds that merged trace, which the ordinary
:class:`~repro.core.simulator.TraceSimulator` then executes.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import FaultableTrace


def merged_multicore_trace(trace: FaultableTrace, n_cores: int,
                           stagger_fraction: float = None) -> FaultableTrace:
    """Merge *n_cores* staggered copies of *trace* into one event stream.

    Each core runs the same workload shifted by ``k / n_cores`` of the
    run (wrapping around), the usual way multiprogrammed rate runs are
    laid out.  The returned trace keeps the per-core instruction count —
    positions mean "instructions retired per core", which is exactly the
    shared-domain progress coordinate.

    Args:
        trace: the single-core trace.
        n_cores: cores pinned with a copy each.
        stagger_fraction: offset between consecutive cores as a fraction
            of the run (default ``1 / n_cores``).
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    if n_cores == 1:
        return trace
    if stagger_fraction is None:
        stagger_fraction = 1.0 / n_cores
    if not 0.0 <= stagger_fraction <= 1.0:
        raise ValueError("stagger_fraction must be a fraction")

    n = trace.n_instructions
    parts_idx = []
    parts_ops = []
    for core in range(n_cores):
        shift = int(round(core * stagger_fraction * n)) % n
        shifted = (trace.indices + shift) % n
        order = np.argsort(shifted, kind="stable")
        parts_idx.append(shifted[order])
        parts_ops.append(trace.opcodes[order])
    merged_idx = np.concatenate(parts_idx)
    merged_ops = np.concatenate(parts_ops)
    order = np.argsort(merged_idx, kind="stable")
    return FaultableTrace(
        name=f"{trace.name}x{n_cores}",
        n_instructions=n,
        ipc=trace.ipc,
        indices=merged_idx[order],
        opcodes=merged_ops[order],
        opcode_table=trace.opcode_table,
    )
