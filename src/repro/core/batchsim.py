"""Vectorized sweep kernel: many configs over one compiled trace.

Sweep experiments (fig15/fig16, the service batcher, policy studies)
evaluate the *same* trace once per ``(strategy, voltage_offset, seed)``
config.  The scalar :class:`~repro.core.simulator.TraceSimulator` pays
the full per-config price every time: the galloping gap scans restart
from scratch, the emulation-cycle table used to be rebuilt, and nothing
learned about the trace is shared between configs.

This module compiles a :class:`~repro.workloads.trace.FaultableTrace`
once into a :class:`TraceEpisode` — the gap array, a block-maximum
index over it, and (lazily) the per-event emulation-cycle table — and
then replays each config with :class:`_SweepReplay`, a **bit-exact**
clone of the scalar simulator's state machine:

* every RNG draw happens at the same call site, in the same order,
  through the same ``DelaySpec.sample`` / transition-model methods;
* every floating-point accumulation uses the same expression, in the
  same order, so results are identical to the last bit;
* only the *search* for the next oversized gap changes: instead of
  re-scanning the gap array in 64 Ki-element chunks per burst, the
  replay bisects the shared block-maximum index (first block whose max
  gap exceeds the deadline) and scans at most a couple of 4 Ki blocks.
  The scan threshold and stop index are provably identical to the
  scalar scan (integer gaps: ``gap > x`` iff ``gap > floor(x)``).

Exactness is enforced by ``tests/test_batchsim_equivalence.py`` (a
property-based suite driving random traces and configs through both
paths) and by the golden-value harness: experiments produce the same
metrics whichever path they take.

:func:`simulate_sweep` mirrors :meth:`SuitSystem.run_profile` semantics
config-by-config — including the closed-form emulation estimate for the
``e`` strategy and the multicore trace merge — and falls back to the
scalar simulator for anything the replay cannot express (an enabled
execution tracer, whose per-event telemetry the replay deliberately
skips; ``force_scalar``).  Fallbacks are counted in the
``batchsim_configs_total`` metric, path label ``scalar``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.estimates import emulation_estimate
from repro.core.metrics import SimResult, imul_latency_overhead
from repro.core.multicore import merged_multicore_trace
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import _MAX_GAP, TraceSimulator
from repro.core.strategy import (CpuControl, OperatingStrategy, SuitState,
                                 strategy_for)
from repro.emulation.dispatch import emulation_cycles
from repro.hardware.cpu import CpuModel
from repro.obs.profiling import profiled
from repro.obs.registry import get_registry
from repro.obs.tracer import get_tracer
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

#: Strategy names the fast replay expresses exactly.
VECTOR_STRATEGIES = ("fV", "f", "V", "e")

_BLOCK_SHIFT = 12
_BLOCK = 1 << _BLOCK_SHIFT  # gap-index block size (events)

#: Histogram bounds for sweep batch widths (configs per call).
_WIDTH_BOUNDS = tuple(float(2 ** i) for i in range(11))


@dataclass(frozen=True)
class SweepConfig:
    """One point of a sweep over a shared trace.

    Attributes:
        strategy: Table 6 short name ("fV", "f", "V", "e").
        voltage_offset: efficient-curve offset in volts (negative).
        seed: RNG seed for the sampled delays of this run.
        harden_imul: apply the +1-cycle IMUL tax (simulator default).
    """

    strategy: str = "fV"
    voltage_offset: float = -0.097
    seed: int = 0
    harden_imul: bool = True


class TraceEpisode:
    """A trace compiled for many-config replay.

    Shares, across every config of a sweep: the gap array, a
    block-maximum index over it (for O(log) burst-end lookup), the
    per-threshold lists of candidate blocks, and the trace itself.
    All shared state is immutable after compilation except the
    threshold cache, which only memoises pure lookups.
    """

    __slots__ = ("trace", "indices", "gaps", "block_max", "_big_blocks")

    def __init__(self, trace: FaultableTrace) -> None:
        self.trace = trace
        self.indices = trace.indices
        self.gaps = trace.gaps()
        n_events = trace.n_events
        if n_events:
            starts = np.arange(0, n_events, _BLOCK, dtype=np.int64)
            self.block_max = np.maximum.reduceat(self.gaps, starts)
        else:
            self.block_max = np.empty(0, dtype=np.int64)
        self._big_blocks: Dict[int, List[int]] = {}

    def big_blocks(self, threshold: int) -> List[int]:
        """Sorted ids of blocks containing a gap above *threshold*."""
        bigs = self._big_blocks.get(threshold)
        if bigs is None:
            bigs = np.flatnonzero(self.block_max > threshold).tolist()
            self._big_blocks[threshold] = bigs
        return bigs

    def first_big_gap(self, start: int, hi: int, threshold: int,
                      buf: np.ndarray) -> int:
        """First event ``j`` in ``[start, hi)`` with ``gaps[j] >
        threshold``, else *hi* — the stop index of a bulk consume.

        Identical to scanning ``gaps[start:hi]`` left to right, but
        skips straight to candidate blocks via :meth:`big_blocks`.
        *buf* is a caller-owned bool scratch of at least ``_BLOCK``.
        """
        bigs = self.big_blocks(threshold)
        gaps = self.gaps
        i = bisect_left(bigs, start >> _BLOCK_SHIFT)
        n_big = len(bigs)
        while i < n_big:
            block_lo = bigs[i] << _BLOCK_SHIFT
            if block_lo >= hi:
                return hi
            lo = block_lo if block_lo > start else start
            end = block_lo + _BLOCK
            if end > hi:
                end = hi
            m = end - lo
            if m > 0:
                big = np.greater(gaps[lo:end], threshold, out=buf[:m])
                k = int(np.argmax(big))
                if big[k]:
                    return lo + k
            i += 1
        return hi


def compile_episode(trace: FaultableTrace) -> TraceEpisode:
    """Compile (and cache on the trace) the episode representation."""
    episode = getattr(trace, "_batchsim_episode", None)
    if episode is None:
        with profiled("batchsim.compile", "batchsim",
                      args={"trace": trace.name,
                            "n_events": trace.n_events}):
            episode = TraceEpisode(trace)
        trace._batchsim_episode = episode
    return episode


class _SweepReplay(CpuControl):
    """Bit-exact fast replay of :class:`TraceSimulator`.

    The state machine, accounting expressions and RNG call sites are
    copied from the scalar simulator one-to-one (see its methods of the
    same names); the differences are purely mechanical: no tracer, no
    timeline, the deadline timer and thrashing window are inlined, and
    ``_bulk_consume`` resolves its stop index through the episode's
    block index instead of re-scanning the gap array.

    Any semantic change to ``TraceSimulator`` must be mirrored here;
    the equivalence suite fails loudly if the two drift apart.
    """

    def __init__(self, episode: TraceEpisode, cpu: CpuModel,
                 profile: WorkloadProfile, strategy: OperatingStrategy,
                 voltage_offset: float, seed: int = 0,
                 harden_imul: bool = True) -> None:
        if voltage_offset >= 0:
            raise ValueError("voltage_offset must be negative")
        self._ep = episode
        self.cpu = cpu
        self.profile = profile
        self.trace = episode.trace
        self.strategy = strategy
        self.voltage_offset = voltage_offset
        self.harden_imul = harden_imul
        self._rng = np.random.default_rng(seed)

        points = cpu.operating_points(voltage_offset)
        self._speed = {SuitState.E: points.speed_e,
                       SuitState.CF: points.speed_cf,
                       SuitState.CV: points.speed_cv}
        self._power = {SuitState.E: points.power_e,
                       SuitState.CF: points.power_cf,
                       SuitState.CV: points.power_cv}
        self._instr_rate_base = self.trace.ipc * cpu.nominal_frequency

        self._t = 0.0
        self._pos = 0
        self._ev = 0
        self._state = SuitState.E
        self._power_now = self._power[SuitState.E]
        self._disabled = True
        self._pending = None  # (completion time, target, power_only)
        self._deadline_s: Optional[float] = None
        self._fires_at: Optional[float] = None
        self._thrash_timespan = strategy.params.thrash_timespan_s
        self._trap_times: List[float] = []
        self._emulated_current = False

        self._energy = 0.0
        self._state_time: Dict[str, float] = {
            "E": 0.0, "Cf": 0.0, "CV": 0.0, "stall": 0.0}
        self._n_exceptions = 0
        self._n_switches = 0
        self._n_timer_fires = 0
        self._n_thrash = 0
        self._block_buf = np.empty(_BLOCK, dtype=bool)

    # -- CpuControl (identical to TraceSimulator minus telemetry) ------

    @property
    def now_s(self) -> float:
        return self._t

    def change_pstate_wait(self, target: SuitState) -> None:
        self._pending = None
        if target is self._state:
            return
        if (target in (SuitState.CF, SuitState.CV)
                and self._state in (SuitState.CF, SuitState.CV)):
            self._set_state(target if target is SuitState.CV else self._state)
            return
        if target is SuitState.CF:
            delay, _stall = self.cpu.transitions.frequency_change(self._rng)
        elif target is SuitState.CV:
            if self.cpu.transitions.voltage is None:
                raise ValueError(f"{self.cpu.name} has no voltage control; "
                                 "use the f or e strategy")
            delay, _stall = self.cpu.transitions.pstate_change(
                self._rng, needs_voltage=True)
        else:
            delay, _stall = self.cpu.transitions.frequency_change(self._rng)
        self._stall(delay)
        self._set_state(target)
        self._n_switches += 1

    def change_pstate_async(self, target: SuitState) -> None:
        if target is self._state and self._pending is None:
            return
        if target is SuitState.CV:
            if self.cpu.transitions.voltage is None:
                raise ValueError(f"{self.cpu.name} has no voltage control")
            delay = self.cpu.transitions.voltage_change(self._rng)
            self._pending = (self._t + delay, target, False)
            return
        if target is SuitState.E:
            if (self._state is SuitState.CV
                    and self.cpu.transitions.voltage is not None):
                delay = self.cpu.transitions.voltage_change(self._rng)
            else:
                delay, _ = self.cpu.transitions.frequency_change(self._rng)
            old_power = self._power_now
            self._set_state(SuitState.E)
            self._power_now = old_power
            self._pending = (self._t + delay, target, True)
            return
        delay, _ = self.cpu.transitions.frequency_change(self._rng)
        self._pending = (self._t + delay, target, False)

    def set_instructions_disabled(self, disabled: bool) -> None:
        self._disabled = disabled

    def set_timer_interrupt(self, deadline_s: float) -> None:
        if deadline_s > self.strategy.params.deadline_s:
            self._n_thrash += 1
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self._deadline_s = deadline_s
        self._fires_at = self._t + deadline_s

    def exception_count_in_timespan(self, timespan_s: float) -> int:
        if abs(timespan_s - self._thrash_timespan) > 1e-12:
            raise ValueError("timespan differs from the configured p_ts")
        times = self._trap_times
        cutoff = self._t - self._thrash_timespan
        drop = 0
        for t in times:
            if t < cutoff:
                drop += 1
            else:
                break
        if drop:
            del times[:drop]
        return len(times)

    def emulate_current_instruction(self) -> None:
        opcode = self.trace.event_opcode(self._ev)
        call = self.cpu.emulation_call_delay.sample(self._rng)
        call = max(call - self.cpu.exception_delay.mean_s, 0.0)
        freq = self.cpu.nominal_frequency * self._speed[self._state]
        routine = emulation_cycles(opcode) / freq
        self._stall(call + routine)
        self._emulated_current = True

    # -- run loop ------------------------------------------------------

    def run(self) -> SimResult:
        trace = self.trace
        n = trace.n_instructions
        n_events = trace.n_events
        idx = self._ep.indices
        state_time = self._state_time

        while self._pos < n:
            ev = self._ev
            next_idx = int(idx[ev]) if ev < n_events else n
            rate = self._instr_rate_base * self._speed[self._state]
            t_arrive = self._t + max(next_idx - self._pos, 0) / rate

            pending = self._pending
            t_pending = pending[0] if pending else np.inf
            fires_at = self._fires_at
            t_timer = fires_at if fires_at is not None else np.inf

            t_next = min(t_arrive, t_pending, t_timer)
            # _advance_to, inlined.
            dt = max(t_next - self._t, 0.0)
            self._pos = min(self._pos + dt * rate, n)
            self._energy += self._power_now * dt
            label = self._state.value
            state_time[label] = state_time.get(label, 0.0) + dt
            self._t += dt

            if t_next == t_pending:
                self._complete_pending()
            elif t_next == t_timer:
                # _fire_timer, inlined (timer.cancel + count + handler).
                self._deadline_s = None
                self._fires_at = None
                self._n_timer_fires += 1
                self.strategy.on_timer_interrupt(self)
            elif ev < n_events:
                self._handle_event()
            else:
                break
        return self._result()

    # -- internals (mirroring TraceSimulator) --------------------------

    def _stall(self, duration_s: float) -> None:
        self._energy += self._power_now * duration_s
        self._state_time["stall"] += duration_s
        self._t += duration_s
        if self._fires_at is not None:  # timer.defer: clock-gated
            self._fires_at += duration_s

    def _set_state(self, state: SuitState) -> None:
        if state is not self._state:
            self._state = state
            self._power_now = self._power[state]

    def _complete_pending(self) -> None:
        _, target, power_only = self._pending
        self._pending = None
        if power_only:
            self._power_now = self._power[target]
            return
        if target is SuitState.CV and self._state is SuitState.CF:
            _, stall = self.cpu.transitions.frequency_change(self._rng)
            self._stall(stall)
            self._n_switches += 1
        self._set_state(target)

    def _handle_event(self) -> None:
        if not self._disabled:
            if self._deadline_s is not None:  # timer.reset
                self._fires_at = self._t + self._deadline_s
            self._ev += 1
            self._bulk_consume()
            return
        self._n_exceptions += 1
        # thrash.record, inlined (times are monotone by construction).
        times = self._trap_times
        t = self._t
        times.append(t)
        cutoff = t - self._thrash_timespan
        drop = 0
        for past in times:
            if past < cutoff:
                drop += 1
            else:
                break
        if drop:
            del times[:drop]
        self._stall(self.cpu.exception_delay.sample(self._rng))
        self._emulated_current = False
        self.strategy.on_disabled_instruction(self)
        if self._emulated_current:
            self._ev += 1
            self._bulk_emulate()
            return
        if self._disabled:
            raise RuntimeError(
                f"strategy {self.strategy.name!r} left the instruction "
                "disabled without emulating it; it can never retire")
        if self._deadline_s is not None:  # timer.reset
            self._fires_at = self._t + self._deadline_s
        self._ev += 1
        self._bulk_consume()

    def _bulk_consume(self) -> None:
        if self._disabled or self._fires_at is None:
            return
        ep = self._ep
        rate = self._instr_rate_base * self._speed[self._state]
        deadline_instr = self._deadline_s * rate

        hi = self.trace.n_events
        if self._pending is not None:
            horizon_pos = self._pos + (self._pending[0] - self._t) * rate
            hi = int(np.searchsorted(ep.indices, math.ceil(horizon_pos),
                                     side="left"))
        start = self._ev
        if start >= hi:
            return
        threshold = min(math.floor(deadline_instr), _MAX_GAP)
        stop = ep.first_big_gap(start, hi, threshold, self._block_buf)
        last = stop - 1
        if last < start:
            return
        target_pos = int(ep.indices[last]) + 1
        dt = (target_pos - self._pos) / rate
        self._energy += self._power_now * dt
        label = self._state.value
        self._state_time[label] = self._state_time.get(label, 0.0) + dt
        self._t += dt
        self._pos = target_pos
        self._ev = last + 1
        self._fires_at = self._t + self._deadline_s  # timer.reset

    def _bulk_emulate(self) -> None:
        if (self.strategy.switches_curves or self._fires_at is not None
                or self._pending is not None):
            return
        trace = self.trace
        n_rem = trace.n_events - self._ev
        if n_rem <= 0:
            return
        rate = self._instr_rate_base * self._speed[self._state]
        freq = self.cpu.nominal_frequency * self._speed[self._state]
        target_pos = int(trace.indices[-1]) + 1
        run_time = (target_pos - self._pos) / rate
        call = self.cpu.emulation_call_delay
        calls = np.clip(
            self._rng.normal(call.mean_s, call.sigma_s or 0.0, size=n_rem),
            call.mean_s * 0.25, call.mean_s * 4.0)
        routines = trace.emulation_cycle_table()[trace.opcodes[self._ev:]] / freq
        stall_total = float(calls.sum() + routines.sum())
        self._energy += self._power_now * (run_time + stall_total)
        self._state_time[self._state.value] += run_time
        self._state_time["stall"] += stall_total
        self._t += run_time + stall_total
        self._pos = target_pos
        self._ev = trace.n_events
        self._n_exceptions += n_rem

    def _result(self) -> SimResult:
        duration = self._t
        energy = self._energy
        if self.harden_imul:
            tax = 1.0 + imul_latency_overhead(self.profile, extra_cycles=1)
            duration *= tax
            energy *= tax
            for key in self._state_time:
                self._state_time[key] *= tax
        return SimResult(
            workload=self.trace.name,
            cpu_name=self.cpu.name,
            strategy=self.strategy.name,
            voltage_offset=self.voltage_offset,
            duration_s=duration,
            baseline_duration_s=self.trace.duration_s(
                self.cpu.nominal_frequency),
            energy_rel=energy,
            state_time=dict(self._state_time),
            n_exceptions=self._n_exceptions,
            n_switches=self._n_switches,
            n_timer_fires=self._n_timer_fires,
            n_thrash_stretches=self._n_thrash,
            timeline=None,
            timeline_truncated=False,
        )


def replay_config(episode: TraceEpisode, cpu: CpuModel,
                  profile: WorkloadProfile, config: SweepConfig,
                  params: StrategyParams) -> SimResult:
    """Run one config through the fast replay (event-level semantics,
    i.e. what ``TraceSimulator.run()`` would return — including a
    *simulated* ``e`` run, unlike :func:`simulate_sweep`'s estimate)."""
    strategy = strategy_for(config.strategy, params)
    return _SweepReplay(episode, cpu, profile, strategy,
                        config.voltage_offset, seed=config.seed,
                        harden_imul=config.harden_imul).run()


def simulate_sweep(cpu: CpuModel, profile: WorkloadProfile,
                   trace: FaultableTrace,
                   configs: Sequence[SweepConfig], *,
                   params: Optional[StrategyParams] = None,
                   n_cores: int = 1,
                   force_scalar: bool = False) -> List[SimResult]:
    """Evaluate many configs over one trace, sharing the compiled
    episode.

    Per-config semantics match :meth:`SuitSystem.run_profile` exactly:
    the ``e`` strategy returns the paper's closed-form emulation
    estimate (raising for enclave workloads), every other strategy is
    simulated event-by-event, and ``n_cores > 1`` on a shared-domain
    CPU merges the trace once for all configs.  Results are returned in
    config order.

    Configs the fast replay cannot express run through the scalar
    :class:`TraceSimulator`: ``force_scalar``, an enabled execution
    tracer (the replay emits no per-event telemetry — the scalar path
    keeps ``python -m repro trace fig15_strategies`` rich), and unknown
    strategies (rejected like the scalar path would reject them).  The
    path taken is counted in the ``batchsim_configs_total`` metric.
    """
    if params is None:
        params = default_params_for(cpu.vendor)
    if n_cores < 1:
        raise ValueError("n_cores must be >= 1")
    if n_cores > cpu.topology.n_cores:
        raise ValueError(f"{cpu.name} has only "
                         f"{cpu.topology.n_cores} cores")

    registry = get_registry()
    paths = registry.counter("batchsim_configs_total",
                             "sweep configs by evaluation path",
                             label_names=("path",))
    registry.histogram("batchsim_batch_width",
                       "configs per simulate_sweep call",
                       bounds=list(_WIDTH_BOUNDS)).observe(len(configs))

    sim_trace = trace
    if n_cores > 1 and not cpu.topology.per_core_frequency:
        sim_trace = merged_multicore_trace(trace, n_cores)
    episode: Optional[TraceEpisode] = None

    results: List[SimResult] = []
    for config in configs:
        if config.strategy == "e":
            # run_profile methodology: closed-form estimate on the
            # per-core trace (emulation never interacts across cores).
            if profile.in_enclave:
                raise ValueError(
                    f"{profile.name} runs in a trusted execution "
                    "environment; emulation is not possible for enclaves "
                    "(section 4.3) — use a curve-switching strategy")
            paths.inc(path="estimate")
            results.append(emulation_estimate(cpu, profile, trace,
                                              config.voltage_offset))
            continue
        strategy = strategy_for(config.strategy, params)
        if (force_scalar or get_tracer().enabled
                or config.strategy not in VECTOR_STRATEGIES):
            paths.inc(path="scalar")
            sim = TraceSimulator(
                cpu=cpu, profile=profile, trace=sim_trace,
                strategy=strategy, voltage_offset=config.voltage_offset,
                seed=config.seed, harden_imul=config.harden_imul)
            results.append(sim.run())
            continue
        paths.inc(path="vector")
        if episode is None:
            episode = compile_episode(sim_trace)
        results.append(_SweepReplay(
            episode, cpu, profile, strategy, config.voltage_offset,
            seed=config.seed, harden_imul=config.harden_imul).run())
    return results
