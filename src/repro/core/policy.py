"""Adaptive operating-strategy selection (paper sections 6.6 / 6.8).

"Due to the hardware-software co-design of SUIT, the operating system
can dynamically choose the best operating strategy for each workload."
The paper quantifies the decision boundary: emulation pays off below
roughly one disabled instruction per 4.1e10 executed, and collapses for
dense traps; curve switching handles bursts.  This module implements
that policy: a cheap online classifier over the workload's observable
trap statistics (rate and burstiness), plus an oracle used to evaluate
how close the heuristic gets to the per-workload optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.estimates import emulation_estimate
from repro.core.metrics import SimResult
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.cpu import CpuModel
from repro.workloads.analysis import burst_statistics
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

#: Paper section 6.6: emulation breaks even around one disabled
#: instruction per 4.1e10 executed (distribution-dependent).
EMULATION_BREAK_EVEN_RATE = 1.0 / 4.1e10

#: Emulation-call overhead budget the policy tolerates (fraction of run
#: time) and the IPC assumed when converting it to a trap rate.
_OVERHEAD_BUDGET = 0.005
_ASSUMED_IPC = 1.5


@dataclass(frozen=True)
class StrategyDecision:
    """Outcome of the policy for one workload.

    Attributes:
        strategy: chosen short name ("fV", "f" or "e").
        trap_rate: observed faultable executions per instruction.
        bursty: whether traps cluster into bursts.
        reason: human-readable justification.
    """

    strategy: str
    trap_rate: float
    bursty: bool
    reason: str


class AdaptiveStrategyPolicy:
    """Pick an operating strategy from observable trace statistics.

    The decision uses only quantities an OS can measure cheaply (#DO
    rate over a sampling window, exception clustering), no simulation.

    Args:
        cpu: the CPU SUIT runs on (determines which switching strategy
            is available and how expensive emulation calls are).
        rate_margin: safety factor on the emulation break-even rate.
    """

    def __init__(self, cpu: CpuModel, rate_margin: float = 10.0) -> None:
        if rate_margin <= 0:
            raise ValueError("rate_margin must be positive")
        self.cpu = cpu
        self.rate_margin = rate_margin

    @property
    def switching_strategy(self) -> str:
        """The curve-switching strategy this CPU supports."""
        if self.cpu.transitions.voltage is None:
            return "f"
        return "fV"

    def decide(self, trace: FaultableTrace,
               in_enclave: bool = False) -> StrategyDecision:
        """Choose a strategy for *trace*.

        Emulation is chosen only for genuinely trap-sparse workloads
        (well under the break-even rate, with margin) that do NOT run in
        a trusted execution environment (section 4.3); everything else
        goes to curve switching, which degrades gracefully.
        """
        rate = trace.faultable_rate
        stats = burst_statistics(trace)
        bursty = stats.n_bursts >= 3 and stats.mean_burst_length >= 4
        if in_enclave:
            return StrategyDecision(
                strategy=self.switching_strategy, trap_rate=rate,
                bursty=bursty,
                reason="enclave workload: emulation impossible, switching only")

        # Practical break-even: choose emulation only while its call
        # overhead stays under ~0.5 % of run time, with margin.  (The
        # paper's 1/4.1e10 figure is the point where emulation's *total*
        # efficiency impact turns positive on their testbed; the rate at
        # which it stops being competitive with curve switching is what
        # matters for the policy.)
        instr_rate = self.cpu.nominal_frequency * _ASSUMED_IPC
        break_even = _OVERHEAD_BUDGET / (
            self.cpu.emulation_call_delay.mean_s * instr_rate)
        if rate < break_even / self.rate_margin:
            return StrategyDecision(
                strategy="e", trap_rate=rate, bursty=bursty,
                reason=f"trap rate 1/{1 / max(rate, 1e-18):.2e} far below "
                       "the emulation break-even")
        return StrategyDecision(
            strategy=self.switching_strategy, trap_rate=rate, bursty=bursty,
            reason=("bursty traps: curve switching amortises per burst"
                    if bursty else
                    "trap rate too high for per-instruction emulation"))

    def run(self, profile: WorkloadProfile, trace: FaultableTrace,
            voltage_offset: float, params: Optional[StrategyParams] = None,
            seed: int = 0) -> Tuple[StrategyDecision, SimResult]:
        """Decide and execute in one step."""
        decision = self.decide(trace, in_enclave=profile.in_enclave)
        params = params or default_params_for(self.cpu.vendor)
        if decision.strategy == "e":
            result = emulation_estimate(self.cpu, profile, trace, voltage_offset)
        else:
            result = TraceSimulator(
                self.cpu, profile, trace,
                strategy_for(decision.strategy, params),
                voltage_offset, seed=seed).run()
        return decision, result


def oracle_best(cpu: CpuModel, profile: WorkloadProfile,
                trace: FaultableTrace, voltage_offset: float,
                candidates: Tuple[str, ...] = None,
                seed: int = 0) -> Tuple[str, Dict[str, SimResult]]:
    """Run every candidate strategy and return the efficiency winner.

    The oracle is the evaluation yardstick for the adaptive policy (and
    expensive: it simulates each candidate).  By default the candidate
    set is the realistic OS choice (section 6.8): the CPU's switching
    strategy versus emulation.
    """
    if candidates is None:
        candidates = ("f" if cpu.transitions.voltage is None else "fV", "e")
    params = default_params_for(cpu.vendor)
    results: Dict[str, SimResult] = {}
    for name in candidates:
        if name in ("fV", "V") and cpu.transitions.voltage is None:
            continue
        if name == "e":
            results[name] = emulation_estimate(cpu, profile, trace, voltage_offset)
        else:
            results[name] = TraceSimulator(
                cpu, profile, trace, strategy_for(name, params),
                voltage_offset, seed=seed).run()
    best = max(results, key=lambda n: results[n].efficiency_change)
    return best, results
