"""SUIT core: the paper's contribution.

The trap mechanism for infrequent faultable instructions (section 4.1),
the operating strategies that decide between DVFS-curve switching and
emulation (section 4.3, Listing 1), thrashing prevention, the
event-based instruction-trace simulator of Fig 15 (section 6.2), and the
performance/power/efficiency accounting of section 6.3.
"""

from repro.core.params import StrategyParams, DEFAULT_PARAMS_INTEL, DEFAULT_PARAMS_AMD
from repro.core.strategy import (
    SuitState,
    CpuControl,
    OperatingStrategy,
    FVStrategy,
    FrequencyStrategy,
    VoltageStrategy,
    EmulationStrategy,
    strategy_for,
)
from repro.core.thrashing import ThrashingMonitor
from repro.core.metrics import SimResult, imul_latency_overhead, geomean_change, median_change
from repro.core.simulator import TraceSimulator
from repro.core.batchsim import (SweepConfig, TraceEpisode, compile_episode,
                                 simulate_sweep)
from repro.core.multicore import merged_multicore_trace
from repro.core.estimates import emulation_estimate, nosimd_estimate
from repro.core.policy import AdaptiveStrategyPolicy, StrategyDecision, oracle_best
from repro.core.tiers import CurveTier, derive_tiers, choose_tier
from repro.core.scheduler import Task, plan_partition, plan_round_robin, evaluate_plan
from repro.core.percore import PerCorePlan, plan_per_core_offsets, per_core_gain
from repro.core.suit import SuitSystem

__all__ = [
    "StrategyParams",
    "DEFAULT_PARAMS_INTEL",
    "DEFAULT_PARAMS_AMD",
    "SuitState",
    "CpuControl",
    "OperatingStrategy",
    "FVStrategy",
    "FrequencyStrategy",
    "VoltageStrategy",
    "EmulationStrategy",
    "strategy_for",
    "ThrashingMonitor",
    "SimResult",
    "imul_latency_overhead",
    "geomean_change",
    "median_change",
    "TraceSimulator",
    "SweepConfig",
    "TraceEpisode",
    "compile_episode",
    "simulate_sweep",
    "merged_multicore_trace",
    "emulation_estimate",
    "nosimd_estimate",
    "SuitSystem",
    "AdaptiveStrategyPolicy",
    "StrategyDecision",
    "oracle_best",
    "CurveTier",
    "derive_tiers",
    "choose_tier",
    "Task",
    "plan_partition",
    "plan_round_robin",
    "evaluate_plan",
    "PerCorePlan",
    "plan_per_core_offsets",
    "per_core_gain",
]
