"""Operating-strategy parameters (paper section 4.3, Table 7).

Four knobs tune the fV strategy and its thrashing prevention:

* ``p_dl`` — the deadline: maximum time between two potentially faulting
  instructions before switching back to the efficient curve.
* ``p_ts`` — the look-back window of thrashing prevention.
* ``p_ec`` — the #DO count within ``p_ts`` that triggers it.
* ``p_df`` — the factor the deadline is multiplied by while thrashing.

Table 7 reports the optima found by the paper's parameter search:
30 us / 450 us / 3 / 14 for the Intel CPUs (A and C) and
700 us / 14 ms / 4 / 9 for the slow-switching AMD part (B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StrategyParams:
    """fV / thrashing-prevention parameter set.

    Attributes:
        deadline_s: ``p_dl`` in seconds.
        thrash_timespan_s: ``p_ts`` in seconds.
        thrash_exception_count: ``p_ec``.
        thrash_deadline_factor: ``p_df``.
    """

    deadline_s: float = 30e-6
    thrash_timespan_s: float = 450e-6
    thrash_exception_count: int = 3
    thrash_deadline_factor: float = 14.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.thrash_timespan_s <= 0:
            raise ValueError("thrashing timespan must be positive")
        if self.thrash_exception_count < 1:
            raise ValueError("thrashing exception count must be >= 1")
        if self.thrash_deadline_factor < 1.0:
            raise ValueError("thrashing deadline factor must be >= 1")

    def scaled_deadline(self, thrashing: bool) -> float:
        """The deadline to arm: stretched while thrashing is detected."""
        if thrashing:
            return self.deadline_s * self.thrash_deadline_factor
        return self.deadline_s


#: Table 7 optimum for CPUs A and C (fast Intel switching).
DEFAULT_PARAMS_INTEL = StrategyParams(30e-6, 450e-6, 3, 14.0)

#: Table 7 optimum for CPU B (slow AMD frequency ramps).
DEFAULT_PARAMS_AMD = StrategyParams(700e-6, 14e-3, 4, 9.0)


def default_params_for(vendor: str) -> StrategyParams:
    """The Table 7 parameter set for a CPU vendor."""
    if vendor == "intel":
        return DEFAULT_PARAMS_INTEL
    if vendor == "amd":
        return DEFAULT_PARAMS_AMD
    raise ValueError(f"unknown vendor {vendor!r}")
