"""Trap-aware task placement across DVFS domains (paper section 7).

The related work (Nest, frequency-aware schedulers) minimises frequency
changes by placing tasks deliberately; the paper notes "similar
scheduling methods could also be used in conjunction with SUIT to
minimize DVFS curve changes".  This module implements that idea for
multi-domain packages (e.g. a dual-socket system, or a consumer part
with two clock groups):

every trap anywhere in a shared domain drags *all* of the domain's
cores onto the conservative curve, so mixing one trap-dense task with
trap-free ones poisons the whole domain.  Partitioning trap-heavy tasks
together leaves the other domains permanently efficient.

:func:`plan_partition` produces the placement; :func:`evaluate_plan`
simulates every domain (merged event streams) and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.metrics import SimResult, geomean_change
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.cpu import CpuModel
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


@dataclass(frozen=True)
class Task:
    """One schedulable task: a workload profile plus its trace."""

    profile: WorkloadProfile
    trace: FaultableTrace

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def trap_rate(self) -> float:
        return self.trace.faultable_rate


@dataclass
class Placement:
    """A task-to-domain assignment.

    Attributes:
        domains: task lists per domain.
        policy: label of the placement policy that produced it.
    """

    domains: List[List[Task]]
    policy: str

    def describe(self) -> str:
        """Human-readable domain assignment summary."""
        parts = []
        for i, tasks in enumerate(self.domains):
            names = ", ".join(t.name for t in tasks) or "(idle)"
            parts.append(f"domain {i}: {names}")
        return "; ".join(parts)


def plan_round_robin(tasks: Sequence[Task], n_domains: int) -> Placement:
    """The naive baseline: spread tasks across domains in order."""
    domains: List[List[Task]] = [[] for _ in range(n_domains)]
    for i, task in enumerate(tasks):
        domains[i % n_domains].append(task)
    return Placement(domains=domains, policy="round-robin")


def plan_partition(tasks: Sequence[Task], n_domains: int) -> Placement:
    """Trap-aware placement: sort by trap rate and fill domains so that
    trap-dense tasks share domains and trap-free tasks get clean ones.

    Greedy: descending trap rate, always into the currently *dirtiest*
    domain with free capacity (a domain is poisoned by its worst task,
    so concentrating the poison frees the others).
    """
    if n_domains < 1:
        raise ValueError("need at least one domain")
    capacity = -(-len(tasks) // n_domains)  # ceil
    ordered = sorted(tasks, key=lambda t: -t.trap_rate)
    domains: List[List[Task]] = [[] for _ in range(n_domains)]
    current = 0
    for task in ordered:
        if len(domains[current]) >= capacity:
            current += 1
        domains[current].append(task)
    return Placement(domains=domains, policy="trap-aware")


@dataclass
class PlanOutcome:
    """Aggregate result of one placement.

    Attributes:
        placement: the evaluated placement.
        domain_results: one merged-domain SimResult per domain.
        per_task_efficiency: efficiency change attributed per task
            (its domain's result).
    """

    placement: Placement
    domain_results: List[SimResult]
    per_task_efficiency: Dict[str, float]

    @property
    def efficiency_gmean(self) -> float:
        return geomean_change(self.per_task_efficiency.values())

    @property
    def mean_occupancy(self) -> float:
        busy = [r for r in self.domain_results if r is not None]
        if not busy:
            return 1.0
        return sum(r.efficient_occupancy for r in busy) / len(busy)


def _merge_domain_traces(tasks: Sequence[Task]) -> Tuple[WorkloadProfile, FaultableTrace]:
    """Merge co-located tasks into one shared-domain event stream.

    All tasks progress at the domain's common clock; the merged stream
    uses per-core instruction positions scaled to a common length.
    """
    base = max(tasks, key=lambda t: t.trace.n_instructions)
    n = base.trace.n_instructions
    parts_idx, parts_ops = [], []
    table: List = []
    code_of: Dict = {}
    for task in tasks:
        scale = n / task.trace.n_instructions
        idx = (task.trace.indices * scale).astype(np.int64) % n
        ops = np.empty(idx.size, dtype=np.uint8)
        for local_code, op in enumerate(task.trace.opcode_table):
            if op not in code_of:
                code_of[op] = len(table)
                table.append(op)
            ops[task.trace.opcodes == local_code] = code_of[op]
        order = np.argsort(idx, kind="stable")
        parts_idx.append(idx[order])
        parts_ops.append(ops[order])
    merged_idx = np.concatenate(parts_idx)
    merged_ops = np.concatenate(parts_ops)
    order = np.argsort(merged_idx, kind="stable")
    trace = FaultableTrace(
        name="+".join(t.name for t in tasks),
        n_instructions=n,
        ipc=base.trace.ipc,
        indices=merged_idx[order],
        opcodes=merged_ops[order],
        opcode_table=tuple(table),
    )
    return base.profile, trace


def evaluate_plan(cpu: CpuModel, placement: Placement,
                  voltage_offset: float = -0.097,
                  params: StrategyParams = None,
                  seed: int = 0) -> PlanOutcome:
    """Simulate each domain of *placement* and attribute results."""
    params = params or default_params_for(cpu.vendor)
    domain_results: List[SimResult] = []
    per_task: Dict[str, float] = {}
    for tasks in placement.domains:
        if not tasks:
            domain_results.append(None)
            continue
        profile, merged = _merge_domain_traces(tasks)
        result = TraceSimulator(
            cpu, profile, merged, strategy_for("fV", params),
            voltage_offset, seed=seed).run()
        domain_results.append(result)
        for task in tasks:
            per_task[task.name] = result.efficiency_change
    return PlanOutcome(placement=placement, domain_results=domain_results,
                       per_task_efficiency=per_task)
