"""Closed-form estimates the paper uses alongside the trace simulation.

Section 6.2 ("Instruction Emulation"): the overhead of the emulation
strategy is estimated as the benchmark's no-SIMD compile overhead (the
emulators are exactly the non-vectorised replacements) plus the
emulation-call delay for every disabled-instruction execution.

Section 6.7 (SPECnoSIMD): a program compiled without SSE/AVX contains no
trappable instruction at all (IMUL is statically hardened), so it runs
on the efficient curve permanently — performance is the no-SIMD score
times the efficient-curve speed, power is the efficient-curve power.
"""

from __future__ import annotations

from repro.core.metrics import SimResult, imul_latency_overhead
from repro.hardware.cpu import CpuModel
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

#: Mean-power correction for scalar replacement code: the emulation path
#: spends extra time in kernel transitions and integer-heavy loops whose
#: activity factor is higher than the vector code it replaces.
_SCALAR_POWER_INFLATION = 1.04


def nosimd_estimate(cpu: CpuModel, profile: WorkloadProfile,
                    voltage_offset: float) -> SimResult:
    """SUIT result for the benchmark compiled without SIMD instructions.

    No faultable instruction ever executes, so the CPU stays on the
    efficient curve for the whole run; the cost is the (per-vendor)
    no-SIMD score impact, plus the IMUL hardening tax.
    """
    points = cpu.operating_points(voltage_offset)
    baseline = profile.n_instructions / (profile.ipc * cpu.nominal_frequency)
    nosimd = profile.nosimd_for(cpu.vendor)
    tax = 1.0 + imul_latency_overhead(profile, extra_cycles=1)
    duration = baseline / (1.0 + nosimd) / points.speed_e * tax
    return SimResult(
        workload=f"{profile.name}-nosimd",
        cpu_name=cpu.name,
        strategy="nosimd",
        voltage_offset=voltage_offset,
        duration_s=duration,
        baseline_duration_s=baseline,
        energy_rel=points.power_e * duration,
        state_time={"E": duration},
    )


def emulation_estimate(cpu: CpuModel, profile: WorkloadProfile,
                       trace: FaultableTrace, voltage_offset: float) -> SimResult:
    """Paper-methodology estimate of the emulation strategy (section 6.2).

    Duration = no-SIMD duration on the efficient curve (the emulators
    *are* the scalar replacements) + one emulation-call delay per
    faultable execution.  Power stays at the efficient level, slightly
    inflated by the scalar/kernel activity factor.
    """
    base = nosimd_estimate(cpu, profile, voltage_offset)
    stall = trace.n_events * cpu.emulation_call_delay.mean_s
    duration = base.duration_s + stall
    power = min(base.power_ratio * _SCALAR_POWER_INFLATION, 1.0)
    state_time = {"E": base.duration_s, "stall": stall}
    return SimResult(
        workload=profile.name,
        cpu_name=cpu.name,
        strategy="e",
        voltage_offset=voltage_offset,
        duration_s=duration,
        baseline_duration_s=base.baseline_duration_s,
        energy_rel=power * duration,
        state_time=state_time,
        n_exceptions=trace.n_events,
    )
