"""Simulation results and evaluation metrics (paper sections 5.4, 6.3).

The paper's efficiency definition: if a change makes the benchmark take
``d`` times as long at ``p`` times the power, the efficiency changes by
``1/(d * p) - 1``.  Performance changes are score (1/duration) changes;
power changes are mean-package-power changes.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.workloads.profile import WorkloadProfile


def imul_latency_overhead(profile: WorkloadProfile, extra_cycles: int = 1) -> float:
    """Slowdown from statically lengthening IMUL (section 6.1).

    Out-of-order execution hides the extra latency except where IMUL
    results feed dependent work quickly; the exposed fraction grows with
    the workload's multiply-chain share.  Calibrated against the pipeline
    simulator (Fig 14): 525.x264 (0.99 % IMULs, heavily chained) loses
    ~1.6 %, the suite average (0.07 % IMULs) ~0.03 %.

    Returns:
        Fractional duration increase (>= 0).
    """
    if extra_cycles < 0:
        raise ValueError("extra_cycles must be non-negative")
    if extra_cycles == 0:
        return 0.0
    exposure = min(1.0, 0.08 + 0.62 * profile.imul_chain_fraction)
    return profile.imul_density * exposure * profile.ipc * extra_cycles


def apply_imul_tax(result: "SimResult", profile: WorkloadProfile,
                   extra_cycles: int) -> "SimResult":
    """*result* with the static IMUL-hardening tax of *extra_cycles* applied.

    The simulator's built-in ``harden_imul`` flag bakes in the paper's
    +1-cycle hardening; deeper pipelines (the DSE's IMUL-latency gene)
    simulate with ``harden_imul=False`` and post-apply this tax.  The
    arithmetic mirrors the simulator's built-in application exactly —
    the same multiplications on duration, energy and state times — so
    ``apply_imul_tax(sim(harden_imul=False), profile, 1)`` is bit-equal
    to ``sim(harden_imul=True)``.

    Returns:
        A new :class:`SimResult`; ``extra_cycles == 0`` returns the
        input unchanged.
    """
    if extra_cycles < 0:
        raise ValueError("extra_cycles must be non-negative")
    if extra_cycles == 0:
        return result
    tax = 1.0 + imul_latency_overhead(profile, extra_cycles=extra_cycles)
    return dataclasses.replace(
        result,
        duration_s=result.duration_s * tax,
        energy_rel=result.energy_rel * tax,
        state_time={key: value * tax
                    for key, value in result.state_time.items()},
    )


@dataclass
class SimResult:
    """Outcome of one SUIT simulation run.

    Attributes:
        workload: workload name.
        cpu_name: CPU model name.
        strategy: operating strategy short name.
        voltage_offset: efficient-curve offset (negative volts).
        duration_s: SUIT run duration (including the IMUL hardening tax).
        baseline_duration_s: duration without SUIT on the conservative
            curve.
        energy_rel: integral of relative power over the run (units of
            baseline-power-seconds; baseline energy == baseline duration).
        state_time: seconds per state ("E", "Cf", "CV", "stall").
        n_exceptions: #DO exceptions taken.
        n_switches: switches onto the conservative curve.
        n_timer_fires: deadline expiries (returns to E).
        n_thrash_stretches: deadlines armed stretched by p_df.
        timeline: optional recorded (time, state) transitions.
        timeline_truncated: True when the recording hit the simulator's
            timeline cap and later transitions were dropped — figures
            built from ``timeline`` only cover a prefix of the run.
    """

    workload: str
    cpu_name: str
    strategy: str
    voltage_offset: float
    duration_s: float
    baseline_duration_s: float
    energy_rel: float
    state_time: Dict[str, float] = field(default_factory=dict)
    n_exceptions: int = 0
    n_switches: int = 0
    n_timer_fires: int = 0
    n_thrash_stretches: int = 0
    timeline: Optional[List[Tuple[float, str]]] = None
    timeline_truncated: bool = False

    @property
    def duration_ratio(self) -> float:
        """SUIT duration / baseline duration."""
        return self.duration_s / self.baseline_duration_s

    @property
    def perf_change(self) -> float:
        """Score change: positive = faster with SUIT."""
        return 1.0 / self.duration_ratio - 1.0

    @property
    def power_ratio(self) -> float:
        """Mean package power relative to the conservative baseline."""
        return self.energy_rel / self.duration_s

    @property
    def power_change(self) -> float:
        """Mean power change: negative = less power with SUIT."""
        return self.power_ratio - 1.0

    @property
    def efficiency_change(self) -> float:
        """Paper definition: ``1/(duration_ratio * power_ratio) - 1``."""
        return 1.0 / (self.duration_ratio * self.power_ratio) - 1.0

    @property
    def efficient_occupancy(self) -> float:
        """Fraction of run time spent on the efficient curve."""
        if self.duration_s <= 0:
            return 0.0
        return self.state_time.get("E", 0.0) / self.duration_s


def geomean_change(changes: Iterable[float]) -> float:
    """Geometric mean of relative changes (each given as a fraction).

    ``geomean_change([0.10, -0.05])`` treats the inputs as ratios 1.10
    and 0.95 and returns the geometric-mean ratio minus one — the way
    SPEC aggregates per-benchmark results.
    """
    values = list(changes)
    if not values:
        raise ValueError("need at least one change")
    log_sum = 0.0
    for c in values:
        ratio = 1.0 + c
        if ratio <= 0:
            raise ValueError(f"change {c} implies a non-positive ratio")
        log_sum += math.log(ratio)
    return math.exp(log_sum / len(values)) - 1.0


def median_change(changes: Iterable[float]) -> float:
    """Median of relative changes."""
    values = sorted(changes)
    if not values:
        raise ValueError("need at least one change")
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return 0.5 * (values[mid - 1] + values[mid])
