"""Per-core efficient-curve offsets (binning within a package).

Kogler et al. measured instruction margins differing not just between
chips but *between cores of one chip*; on CPUs with per-core voltage
domains (the paper's CPU C) SUIT can therefore give every core its own
efficient offset instead of the package-wide worst case.  The vendor
(or a calibration daemon) measures each core's kept-set margin and
programs the deepest safe offset per core, capped by the
aging/temperature budget.

One-size-fits-all must provision for the package's weakest core; the
per-core scheme recovers the margin the stronger cores leave unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.faults.model import CpuInstanceFaults
from repro.hardware.cpu import CpuModel, _effective_sim_offset
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode

#: Calibration slack above each core's tightest kept margin.
PER_CORE_SLACK_V = 0.008


@dataclass(frozen=True)
class PerCorePlan:
    """Offsets per core plus the uniform fallback.

    Attributes:
        per_core_offsets_v: the deepest safe offset of each core
            (negative volts), budget-capped.
        uniform_offset_v: the package-wide offset (the weakest core's).
    """

    per_core_offsets_v: Sequence[float]
    uniform_offset_v: float

    @property
    def n_cores(self) -> int:
        return len(self.per_core_offsets_v)

    @property
    def spread_v(self) -> float:
        """Margin spread between strongest and weakest core."""
        return max(self.per_core_offsets_v) - min(self.per_core_offsets_v)


def plan_per_core_offsets(chip: CpuInstanceFaults,
                          frequencies: Sequence[float],
                          budget_cap_v: float = -0.150,
                          preserved_guardband_v: float = 0.172) -> PerCorePlan:
    """Derive per-core offsets from the chip's kept-set margins.

    The usable offset per core is its tightest kept-instruction margin
    minus the guardbands that must survive (aging 137 mV + temperature
    35 mV by default, per Fig 2) plus calibration slack — the same
    construction as the vendor bring-up example, per core.

    Args:
        chip: the measured chip instance.
        frequencies: operating frequencies the offsets must hold at.
        budget_cap_v: absolute floor for any offset (negative volts).
        preserved_guardband_v: the aging+temperature reserve (positive).
    """
    if budget_cap_v >= 0:
        raise ValueError("the budget cap is a negative offset")
    if preserved_guardband_v < 0:
        raise ValueError("the preserved guardband is non-negative")
    hardened = chip.with_hardened_imul()
    kept = [op for op in Opcode if op not in TRAPPED_OPCODES]
    offsets: List[float] = []
    for core in range(hardened.n_cores):
        margin = max(hardened.max_safe_offset(op, core, freq)
                     for op in kept for freq in frequencies)
        usable = margin + preserved_guardband_v + PER_CORE_SLACK_V
        offsets.append(min(max(usable, budget_cap_v), -0.001))
    return PerCorePlan(per_core_offsets_v=tuple(offsets),
                       uniform_offset_v=max(offsets))


def mean_power_ratio(cpu: CpuModel, offsets_v: Sequence[float]) -> float:
    """Package power (relative) with each core at its own offset,
    assuming equal per-core load."""
    f0 = cpu.nominal_frequency
    v0 = cpu.nominal_voltage
    ratios = [cpu.cmos.power_ratio(f0, v0 + _effective_sim_offset(off), f0, v0)
              for off in offsets_v]
    return sum(ratios) / len(ratios)


def per_core_gain(cpu: CpuModel, plan: PerCorePlan) -> float:
    """Extra power saving of the per-core plan over the uniform one
    (positive fraction of package power)."""
    uniform = mean_power_ratio(cpu, [plan.uniform_offset_v] * plan.n_cores)
    per_core = mean_power_ratio(cpu, plan.per_core_offsets_v)
    return uniform - per_core
