"""High-level SUIT system facade.

The entry point most users want: configure a CPU, an undervolt budget
and an operating strategy, then run workloads and read
performance/power/efficiency results.

Example:
    >>> from repro import SuitSystem, spec_profile
    >>> suit = SuitSystem.for_cpu("C", strategy="fV", voltage_offset=-0.097)
    >>> result = suit.run_profile(spec_profile("557.xz"))
    >>> result.efficiency_change > 0
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.batchsim import SweepConfig, simulate_sweep
from repro.core.estimates import emulation_estimate, nosimd_estimate
from repro.core.metrics import SimResult, geomean_change, median_change
from repro.core.multicore import merged_multicore_trace
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import OperatingStrategy, strategy_for
from repro.hardware.cpu import CpuModel
from repro.hardware.models import ALL_CPU_FACTORIES
from repro.workloads.profile import WorkloadProfile
from repro.workloads.tracecache import cached_trace
from repro.workloads.trace import FaultableTrace


@dataclass
class SuitSystem:
    """A configured SUIT deployment: CPU + strategy + undervolt budget.

    Attributes:
        cpu: the hardware model.
        strategy_name: "fV", "f", "V" or "e".
        voltage_offset: efficient-curve offset (negative volts).
        params: operating-strategy parameters (Table 7 defaults per
            vendor when omitted).
        n_cores: active cores sharing the workload.  On shared-domain
            CPUs every core's traps affect all others; on per-core-domain
            CPUs the core count does not change per-core results.
        seed: RNG seed for sampled delays and trace synthesis.
    """

    cpu: CpuModel
    strategy_name: str = "fV"
    voltage_offset: float = -0.097
    params: Optional[StrategyParams] = None
    n_cores: int = 1
    seed: int = 0
    _trace_cache: Dict[str, FaultableTrace] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = default_params_for(self.cpu.vendor)
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.n_cores > self.cpu.topology.n_cores:
            raise ValueError(f"{self.cpu.name} has only "
                             f"{self.cpu.topology.n_cores} cores")

    @classmethod
    def for_cpu(cls, short_name: str, **kwargs) -> "SuitSystem":
        """Build for one of the paper's CPUs ("A", "B", "C", "i5")."""
        try:
            factory = ALL_CPU_FACTORIES[short_name]
        except KeyError:
            raise ValueError(f"unknown CPU {short_name!r}; "
                             f"know {sorted(ALL_CPU_FACTORIES)}")
        return cls(cpu=factory(), **kwargs)

    def make_strategy(self) -> OperatingStrategy:
        """A fresh strategy instance with this system's parameters."""
        return strategy_for(self.strategy_name, self.params)

    def run_trace(self, profile: WorkloadProfile, trace: FaultableTrace,
                  record_timeline: bool = False,
                  harden_imul: bool = True) -> SimResult:
        """Simulate *trace* under this configuration.

        ``harden_imul=False`` skips the built-in +1-cycle IMUL tax so
        callers exploring other pipeline depths can post-apply their
        own via :func:`repro.core.metrics.apply_imul_tax`.
        """
        if self.n_cores > 1 and not self.cpu.topology.per_core_frequency:
            trace = merged_multicore_trace(trace, self.n_cores)
        sim = TraceSimulator(
            cpu=self.cpu,
            profile=profile,
            trace=trace,
            strategy=self.make_strategy(),
            voltage_offset=self.voltage_offset,
            seed=self.seed,
            record_timeline=record_timeline,
            harden_imul=harden_imul,
        )
        return sim.run()

    def run_profile(self, profile: WorkloadProfile,
                    record_timeline: bool = False,
                    harden_imul: bool = True) -> SimResult:
        """Synthesise the profile's trace (cached) and simulate it.

        The emulation strategy uses the paper's closed-form estimate
        (section 6.2) rather than per-event simulation, matching the
        evaluation methodology (``harden_imul`` is ignored there: the
        estimate always carries the paper's +1-cycle hardening).
        """
        trace = self._trace(profile)
        if self.strategy_name == "e":
            if profile.in_enclave:
                raise ValueError(
                    f"{profile.name} runs in a trusted execution environment; "
                    "emulation is not possible for enclaves (section 4.3) — "
                    "use a curve-switching strategy")
            return emulation_estimate(self.cpu, profile, trace, self.voltage_offset)
        return self.run_trace(profile, trace, record_timeline,
                              harden_imul=harden_imul)

    def run_sweep(self, profile: WorkloadProfile,
                  configs: Iterable[SweepConfig]) -> List[SimResult]:
        """Evaluate many sweep configs over this profile's trace.

        The trace is synthesised (or served from cache) once and
        compiled once; every config replays the shared episode through
        the vectorised kernel (:mod:`repro.core.batchsim`).  Per-config
        semantics match :meth:`run_profile` bit-for-bit: a config with
        this system's strategy, offset and ``seed == self.seed``
        reproduces ``run_profile(profile)`` exactly.

        Note the config seeds only steer the *simulation* RNG; trace
        synthesis always uses this system's seed, as in
        :meth:`run_profile`.
        """
        return simulate_sweep(self.cpu, profile, self._trace(profile),
                              list(configs), params=self.params,
                              n_cores=self.n_cores)

    def run_profile_nosimd(self, profile: WorkloadProfile) -> SimResult:
        """The benchmark compiled without SIMD under this configuration."""
        return nosimd_estimate(self.cpu, profile, self.voltage_offset)

    def evaluate_suite(self, profiles: Iterable[WorkloadProfile]) -> "SuiteResult":
        """Run a list of workloads and aggregate like Table 6."""
        results = [self.run_profile(p) for p in profiles]
        return SuiteResult(results)

    def run_consolidated(self, profiles: List[WorkloadProfile]) -> SimResult:
        """Run different workloads pinned to the cores of one shared
        DVFS domain (server consolidation).

        Only meaningful on shared-frequency-domain CPUs: every task's
        traps switch the whole domain.  Uses the scheduler's
        merged-event-stream construction.

        Raises:
            ValueError: on per-core-domain CPUs (where consolidation is
                trivially independent — simulate each profile alone).
        """
        if self.cpu.topology.per_core_frequency:
            raise ValueError(
                f"{self.cpu.name} has per-core frequency domains; "
                "consolidated tasks do not interact — run them separately")
        if not 1 <= len(profiles) <= self.cpu.topology.n_cores:
            raise ValueError("task count must fit the core count")
        from repro.core.scheduler import Task, _merge_domain_traces

        tasks = [Task(profile=p, trace=self._trace(p)) for p in profiles]
        base_profile, merged = _merge_domain_traces(tasks)
        # The merged trace already encodes all cores: bypass the
        # homogeneous-multicore stagger of run_trace.
        sim = TraceSimulator(
            cpu=self.cpu,
            profile=base_profile,
            trace=merged,
            strategy=self.make_strategy(),
            voltage_offset=self.voltage_offset,
            seed=self.seed,
        )
        return sim.run()

    def prime_trace(self, profile: WorkloadProfile, trace: FaultableTrace) -> None:
        """Pre-populate the trace cache (e.g. to share traces between
        several configured systems)."""
        if trace.name != profile.name:
            raise ValueError("trace does not belong to this profile")
        self._trace_cache[profile.name] = trace

    def _trace(self, profile: WorkloadProfile) -> FaultableTrace:
        if profile.name not in self._trace_cache:
            # The layered cache (process LRU over the shared trace
            # store) serves identical values: generate_trace is pure.
            self._trace_cache[profile.name] = cached_trace(profile, self.seed)
        return self._trace_cache[profile.name]


@dataclass
class SuiteResult:
    """Aggregate of per-workload results (Table 6 row triplets)."""

    results: List[SimResult]

    def __post_init__(self) -> None:
        if not self.results:
            raise ValueError("a suite needs at least one result")

    @property
    def perf_gmean(self) -> float:
        return geomean_change(r.perf_change for r in self.results)

    @property
    def perf_median(self) -> float:
        return median_change(r.perf_change for r in self.results)

    @property
    def power_gmean(self) -> float:
        return geomean_change(r.power_change for r in self.results)

    @property
    def power_median(self) -> float:
        return median_change(r.power_change for r in self.results)

    @property
    def efficiency_gmean(self) -> float:
        return geomean_change(r.efficiency_change for r in self.results)

    @property
    def efficiency_median(self) -> float:
        return median_change(r.efficiency_change for r in self.results)

    @property
    def mean_occupancy(self) -> float:
        return sum(r.efficient_occupancy for r in self.results) / len(self.results)

    def by_name(self, workload: str) -> SimResult:
        """The result for *workload* (KeyError if absent)."""
        for r in self.results:
            if r.workload == workload:
                return r
        raise KeyError(f"no result for workload {workload!r}")
