"""Multi-tier efficient curves: generalising SUIT's design space.

SUIT ships one efficient curve defined by excluding the whole Table 1
set.  Nothing in the mechanism limits it to one: the disable-mask MSR
expresses any subset, so a vendor can define a *ladder* of efficient
curves, each deeper tier disabling a longer prefix of the sensitivity
ranking.  The trade-off per workload: a deeper tier saves more power
but traps more instruction classes; a workload that leans on, say,
``VAND``/``VANDN`` may prefer a shallower tier where those stay enabled
and only the most sensitive ops trap.

:func:`derive_tiers` builds the ladder from a chip's margins;
:func:`choose_tier` picks the deepest tier whose *additional* traps stay
below a budget for a concrete trace — per-workload curve selection,
using exactly the machinery SUIT already has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence

from repro.faults.model import CpuInstanceFaults
from repro.isa.faultable import TRAPPED_OPCODES, faultable_sorted_by_sensitivity
from repro.isa.opcodes import Opcode
from repro.workloads.trace import FaultableTrace

#: Vendor safety slack between a tier's offset and the margin of the
#: most sensitive instruction it keeps enabled.
TIER_SLACK_V = 0.008

#: Sensitivity-ranking prefixes defining the default ladder (IMUL, the
#: ranking's head, is statically hardened and never trapped).
DEFAULT_TIER_PREFIXES = (3, 6, 11)


@dataclass(frozen=True)
class CurveTier:
    """One efficient-curve tier.

    Attributes:
        offset_v: the tier's curve offset (negative volts).
        disabled: the opcodes disabled (trapped) on this tier.
    """

    offset_v: float
    disabled: FrozenSet[Opcode]

    def __post_init__(self) -> None:
        if self.offset_v >= 0:
            raise ValueError("tier offsets are negative")
        if not self.disabled:
            raise ValueError("a tier disables at least one class")
        if not self.disabled <= TRAPPED_OPCODES:
            raise ValueError("tiers only trap the trappable (SIMD) classes")


def derive_tiers(chip: CpuInstanceFaults,
                 frequencies: Sequence[float],
                 prefixes: Sequence[int] = DEFAULT_TIER_PREFIXES,
                 max_offset_v: float = -0.150) -> List[CurveTier]:
    """Build the tier ladder for *chip* (hardened IMUL assumed).

    For each prefix length *k*, the tier disables the *k* most sensitive
    trapped classes; its offset is the tightest margin among everything
    still enabled (remaining trapped classes, the hardened IMUL and the
    non-faultable mass) plus slack, clamped at *max_offset_v* (the
    aging/temperature budget).

    Returns:
        Tiers shallow to deep (deduplicated by offset).
    """
    hardened = chip.with_hardened_imul()
    ranking = [op for op in faultable_sorted_by_sensitivity()
               if op in TRAPPED_OPCODES]

    def tightest_margin(enabled: Sequence[Opcode]) -> float:
        return max(
            hardened.max_safe_offset(op, core, freq)
            for op in enabled
            for core in range(hardened.n_cores)
            for freq in frequencies)

    tiers: List[CurveTier] = []
    for k in prefixes:
        if not 1 <= k <= len(ranking):
            raise ValueError(f"prefix {k} outside the trapped ranking")
        disabled = frozenset(ranking[:k])
        enabled = [op for op in Opcode if op not in disabled]
        offset = max(tightest_margin(enabled) + TIER_SLACK_V, max_offset_v)
        if tiers and offset >= tiers[-1].offset_v - 0.002:
            continue  # no meaningful depth over the previous tier
        tiers.append(CurveTier(offset_v=offset, disabled=disabled))
    if not tiers:
        raise RuntimeError("no usable tier; margins degenerate")
    return tiers


@dataclass(frozen=True)
class TierChoice:
    """The tier selected for one workload.

    Attributes:
        tier: the chosen tier.
        trap_rate: executions per instruction this tier traps.
    """

    tier: CurveTier
    trap_rate: float


def trap_rates_by_opcode(trace: FaultableTrace) -> Dict[Opcode, float]:
    """Per-opcode execution rates (per instruction) of a trace."""
    rates: Dict[Opcode, float] = {}
    for code, op in enumerate(trace.opcode_table):
        count = int((trace.opcodes == code).sum())
        if count:
            rates[op] = count / trace.n_instructions
    return rates


def choose_tier(tiers: Sequence[CurveTier], trace: FaultableTrace,
                max_trap_rate: float = 1e-6) -> TierChoice:
    """Pick the deepest tier whose *additional* trapped classes (over
    the shallowest tier) the workload uses at most *max_trap_rate* per
    instruction.

    Classes the shallowest tier already traps are sunk cost — the
    workload pays those everywhere — so only the marginal trap burden
    blocks a descent.  The shallowest tier is the always-valid fallback.
    """
    if not tiers:
        raise ValueError("need at least one tier")
    ordered = sorted(tiers, key=lambda t: -t.offset_v)  # shallow first
    rates = trap_rates_by_opcode(trace)
    baseline = ordered[0]
    best = TierChoice(
        tier=baseline,
        trap_rate=sum(r for op, r in rates.items() if op in baseline.disabled))
    for tier in ordered[1:]:
        extra = sum(r for op, r in rates.items()
                    if op in tier.disabled - baseline.disabled)
        if extra <= max_trap_rate and tier.offset_v < best.tier.offset_v:
            best = TierChoice(
                tier=tier,
                trap_rate=sum(r for op, r in rates.items()
                              if op in tier.disabled))
    return best


def tier_power_gain(shallow: CurveTier, deep: CurveTier,
                    nominal_voltage: float) -> float:
    """Approximate extra dynamic-power saving of *deep* over *shallow*
    (quadratic voltage ratio at the nominal operating point)."""
    v_shallow = nominal_voltage + shallow.offset_v
    v_deep = nominal_voltage + deep.offset_v
    return 1.0 - (v_deep / v_shallow) ** 2
