"""The faultable instruction set (paper Table 1).

Kogler et al. (USENIX Security 2022, "Minefield") systematically
undervolted several Intel CPUs and counted, per instruction, on how many
(core, frequency, voltage-offset) points it produced wrong results.  The
paper's Table 1 reports those counts; instructions that fault on *more*
points start faulting at *higher* voltages, i.e. they are the most
voltage-sensitive and define the gap between the conservative and the
efficient DVFS curve.

SUIT disables exactly this set on the efficient curve — except ``IMUL``,
which is too frequent to trap and is instead statically hardened with one
extra pipeline stage.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.isa.opcodes import Opcode

#: Fault counts from paper Table 1 (reference data, used to calibrate the
#: fault model and as the ground truth the Table 1 experiment compares to).
TABLE1_FAULT_COUNTS: Dict[Opcode, int] = {
    Opcode.IMUL: 79,
    Opcode.VOR: 47,
    Opcode.AESENC: 40,
    Opcode.VXOR: 40,
    Opcode.VANDN: 30,
    Opcode.VAND: 28,
    Opcode.VSQRTPD: 24,
    Opcode.VPCLMULQDQ: 16,
    Opcode.VPSRAD: 9,
    Opcode.VPCMP: 5,
    Opcode.VPMAX: 3,
    Opcode.VPADDQ: 1,
}

#: All faultable opcodes (Table 1).
FAULTABLE_OPCODES: FrozenSet[Opcode] = frozenset(TABLE1_FAULT_COUNTS)

#: The faultable opcodes that are SIMD instructions.  Everything in
#: Table 1 except IMUL and AESENC is a SIMD instruction; AESENC is counted
#: here too because it operates on XMM registers and disappears when
#: compiling without SSE/AVX (paper section 5.8 keeps only IMUL).
SIMD_FAULTABLE_OPCODES: FrozenSet[Opcode] = frozenset(
    op for op in FAULTABLE_OPCODES if op is not Opcode.IMUL
)

#: Faultable opcodes SUIT traps at runtime: the infrequent ones.  IMUL is
#: excluded because SUIT hardens it statically (section 4.2).
TRAPPED_OPCODES: FrozenSet[Opcode] = SIMD_FAULTABLE_OPCODES


def is_faultable(opcode: Opcode) -> bool:
    """Whether *opcode* belongs to the Table 1 faultable set."""
    return opcode in FAULTABLE_OPCODES


def faultable_sorted_by_sensitivity() -> List[Opcode]:
    """Faultable opcodes ordered most-sensitive first (Table 1 order)."""
    return sorted(TABLE1_FAULT_COUNTS, key=lambda op: -TABLE1_FAULT_COUNTS[op])
