"""Opcode classes and per-instruction pipeline metadata.

The model is deliberately coarser than a full x86 decoder: SUIT's analysis
and simulation only need instruction *classes* (an ``IMUL`` is an ``IMUL``
regardless of operand width), their steady-state pipeline characteristics,
and whether they belong to the faultable set.  Latency and throughput
values follow Agner Fog's tables for recent Intel/AMD cores (3-cycle fully
pipelined ``IMUL`` etc.), which is also the source the paper cites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PortClass(enum.Enum):
    """Coarse execution-resource class used by the pipeline simulator.

    Real cores have numbered issue ports; for the latency-sensitivity study
    of Fig. 14 only the *contention group* matters, so instructions are
    bucketed by the functional unit family they occupy.
    """

    ALU = "alu"  # simple integer ops, plentiful (4/cycle on modern cores)
    MUL = "mul"  # integer multiplier (1 pipe)
    DIV = "div"  # iterative divider (unpipelined)
    LOAD = "load"  # load AGU + L1D port
    STORE = "store"  # store AGU + store-data port
    BRANCH = "branch"  # branch unit
    FP = "fp"  # FP add/mul pipes
    SIMD = "simd"  # vector integer/logic pipes
    CRYPTO = "crypto"  # AES-NI / CLMUL unit


class Opcode(enum.Enum):
    """Instruction classes known to the reproduction.

    The first group are generic classes used to fill out instruction
    streams; the second group are the Table 1 faultable instructions,
    named exactly as in the paper (a trailing ``*`` family like ``VPCMP*``
    is represented by its stem).
    """

    # --- generic, never faultable -------------------------------------
    NOP = "NOP"
    ALU = "ALU"  # add/sub/logic/mov between registers
    LEA = "LEA"
    LOAD = "LOAD"
    STORE = "STORE"
    BRANCH = "BRANCH"
    DIV = "DIV"
    FADD = "FADD"
    FMUL = "FMUL"
    FDIV = "FDIV"
    SIMD_OTHER = "SIMD_OTHER"  # SIMD ops outside the faultable set

    # --- faultable: frequent (statically hardened by SUIT) -------------
    IMUL = "IMUL"  # covers IMUL and MUL, as in the paper

    # --- faultable: infrequent (trapped by SUIT) ------------------------
    VOR = "VOR"
    AESENC = "AESENC"
    VXOR = "VXOR"
    VANDN = "VANDN"
    VAND = "VAND"
    VSQRTPD = "VSQRTPD"
    VPCLMULQDQ = "VPCLMULQDQ"
    VPSRAD = "VPSRAD"
    VPCMP = "VPCMP"
    VPMAX = "VPMAX"
    VPADDQ = "VPADDQ"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


@dataclass(frozen=True)
class InstructionSpec:
    """Steady-state pipeline metadata for one opcode class.

    Attributes:
        opcode: the instruction class this spec describes.
        latency: result latency in clock cycles (dependency-to-dependency).
        throughput: reciprocal throughput in cycles per instruction for one
            execution pipe (1.0 = fully pipelined).
        port: functional-unit family the instruction contends on.
        is_simd: whether the instruction is a vector (SSE/AVX) operation;
            these disappear when a program is compiled without SIMD.
    """

    opcode: Opcode
    latency: int
    throughput: float
    port: PortClass
    is_simd: bool = False


def _spec(op: Opcode, lat: int, tput: float, port: PortClass, simd: bool = False) -> InstructionSpec:
    return InstructionSpec(op, lat, tput, port, simd)


#: Pipeline metadata per opcode class (Agner Fog-style numbers).
SPEC_TABLE: dict = {
    Opcode.NOP: _spec(Opcode.NOP, 1, 0.25, PortClass.ALU),
    Opcode.ALU: _spec(Opcode.ALU, 1, 0.25, PortClass.ALU),
    Opcode.LEA: _spec(Opcode.LEA, 1, 0.5, PortClass.ALU),
    Opcode.LOAD: _spec(Opcode.LOAD, 5, 0.5, PortClass.LOAD),
    Opcode.STORE: _spec(Opcode.STORE, 1, 1.0, PortClass.STORE),
    Opcode.BRANCH: _spec(Opcode.BRANCH, 1, 0.5, PortClass.BRANCH),
    Opcode.DIV: _spec(Opcode.DIV, 25, 20.0, PortClass.DIV),
    Opcode.FADD: _spec(Opcode.FADD, 4, 0.5, PortClass.FP),
    Opcode.FMUL: _spec(Opcode.FMUL, 4, 0.5, PortClass.FP),
    Opcode.FDIV: _spec(Opcode.FDIV, 14, 5.0, PortClass.FP),
    Opcode.SIMD_OTHER: _spec(Opcode.SIMD_OTHER, 1, 0.5, PortClass.SIMD, simd=True),
    # IMUL: 3 cycles latency, fully pipelined (throughput 1) on Intel/AMD.
    Opcode.IMUL: _spec(Opcode.IMUL, 3, 1.0, PortClass.MUL),
    Opcode.VOR: _spec(Opcode.VOR, 1, 0.33, PortClass.SIMD, simd=True),
    Opcode.AESENC: _spec(Opcode.AESENC, 4, 1.0, PortClass.CRYPTO, simd=True),
    Opcode.VXOR: _spec(Opcode.VXOR, 1, 0.33, PortClass.SIMD, simd=True),
    Opcode.VANDN: _spec(Opcode.VANDN, 1, 0.33, PortClass.SIMD, simd=True),
    Opcode.VAND: _spec(Opcode.VAND, 1, 0.33, PortClass.SIMD, simd=True),
    Opcode.VSQRTPD: _spec(Opcode.VSQRTPD, 18, 12.0, PortClass.FP, simd=True),
    Opcode.VPCLMULQDQ: _spec(Opcode.VPCLMULQDQ, 6, 1.0, PortClass.CRYPTO, simd=True),
    Opcode.VPSRAD: _spec(Opcode.VPSRAD, 1, 0.5, PortClass.SIMD, simd=True),
    Opcode.VPCMP: _spec(Opcode.VPCMP, 1, 0.5, PortClass.SIMD, simd=True),
    Opcode.VPMAX: _spec(Opcode.VPMAX, 1, 0.5, PortClass.SIMD, simd=True),
    Opcode.VPADDQ: _spec(Opcode.VPADDQ, 1, 0.33, PortClass.SIMD, simd=True),
}


def spec_for(opcode: Opcode) -> InstructionSpec:
    """Return the :class:`InstructionSpec` for *opcode*.

    Raises:
        KeyError: if the opcode has no registered spec (never happens for
            members of :class:`Opcode`, which are all covered).
    """
    return SPEC_TABLE[opcode]
