"""x86-64 instruction metadata substrate.

This package models the slice of the x86-64 ISA that SUIT cares about:
opcode classes, their pipeline characteristics (latency, throughput,
execution-port class) and, centrally, the *faultable* instruction set of
Table 1 — the instructions observed by Kogler et al. to produce erroneous
results first when a CPU is undervolted.
"""

from repro.isa.opcodes import (
    Opcode,
    InstructionSpec,
    PortClass,
    SPEC_TABLE,
    spec_for,
)
from repro.isa.instruction import Instruction
from repro.isa.faultable import (
    FAULTABLE_OPCODES,
    SIMD_FAULTABLE_OPCODES,
    TABLE1_FAULT_COUNTS,
    is_faultable,
    faultable_sorted_by_sensitivity,
)

__all__ = [
    "Opcode",
    "InstructionSpec",
    "PortClass",
    "SPEC_TABLE",
    "spec_for",
    "Instruction",
    "FAULTABLE_OPCODES",
    "SIMD_FAULTABLE_OPCODES",
    "TABLE1_FAULT_COUNTS",
    "is_faultable",
    "faultable_sorted_by_sensitivity",
]
