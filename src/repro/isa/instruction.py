"""Dynamic instruction instances.

An :class:`Instruction` is one element of an instruction stream: an opcode
class plus the dataflow information the pipeline simulator needs (which
earlier instructions produce its inputs) and, optionally, concrete operand
values so the emulation layer can execute it functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import Opcode, InstructionSpec, spec_for


@dataclass
class Instruction:
    """One dynamic instruction in a stream.

    Attributes:
        opcode: instruction class.
        sources: indices (into the same stream) of the instructions whose
            results this one consumes.  Empty for instructions with no
            register inputs being modelled.
        operands: optional concrete input values for functional emulation
            (integers; 128-bit SIMD values are plain Python ints).
    """

    opcode: Opcode
    sources: Tuple[int, ...] = ()
    operands: Optional[Tuple[int, ...]] = None

    @property
    def spec(self) -> InstructionSpec:
        """Pipeline metadata for this instruction's opcode class."""
        return spec_for(self.opcode)

    @property
    def latency(self) -> int:
        return self.spec.latency

    @property
    def is_simd(self) -> bool:
        return self.spec.is_simd
