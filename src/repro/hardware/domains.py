"""DVFS domain topology (paper sections 4.1, 6.2).

Whether SUIT pays a system-wide or a per-core cost for a DVFS-curve
switch depends on the domain layout: the i9-9900K has a single frequency
and voltage domain (a switch affects *all* cores), the Ryzen 7 7700X has
per-core frequency domains but one voltage domain, and Xeon CPUs since
Haswell-EP have fully per-core voltage and frequency domains (PCPS).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class DomainKind(enum.Enum):
    """Granularity of a DVFS control domain."""

    SHARED = "shared"  # one domain spans every core
    PER_CORE = "per-core"


@dataclass(frozen=True)
class DomainTopology:
    """Core count and domain granularity of a package.

    Attributes:
        n_cores: physical cores.
        frequency_domains: granularity of clock control.
        voltage_domains: granularity of voltage control.
    """

    n_cores: int
    frequency_domains: DomainKind
    voltage_domains: DomainKind

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("a CPU needs at least one core")
        if (self.voltage_domains is DomainKind.PER_CORE
                and self.frequency_domains is DomainKind.SHARED):
            raise ValueError("per-core voltage with shared frequency is not a real topology")

    @property
    def per_core_frequency(self) -> bool:
        return self.frequency_domains is DomainKind.PER_CORE

    @property
    def per_core_voltage(self) -> bool:
        return self.voltage_domains is DomainKind.PER_CORE

    def cores_affected_by_frequency_change(self, core: int) -> Tuple[int, ...]:
        """Cores whose clock changes when *core*'s frequency domain moves."""
        self._check_core(core)
        if self.per_core_frequency:
            return (core,)
        return tuple(range(self.n_cores))

    def cores_affected_by_voltage_change(self, core: int) -> Tuple[int, ...]:
        """Cores whose supply changes when *core*'s voltage domain moves."""
        self._check_core(core)
        if self.per_core_voltage:
            return (core,)
        return tuple(range(self.n_cores))

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range for {self.n_cores}-core CPU")
