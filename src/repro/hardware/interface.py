"""The SUIT MSR software interface (paper sections 3.2, 3.3).

SUIT adds three model-specific registers:

* ``SUIT_DISABLE_MASK`` — one bit per faultable instruction class;
  setting a bit disables the class (execution raises #DO).
* ``SUIT_CURVE_SELECT`` — 0 = conservative, 1 = efficient.  The hardware
  *refuses* to select the efficient curve unless every trapped
  instruction is disabled — the invariant SUIT's security rests on.
* ``SUIT_DEADLINE`` — the deadline in TSC ticks.

:class:`SuitMsrInterface` is the OS-level wrapper a kernel would use;
it drives a plain :class:`~repro.hardware.msr.MsrFile` so the register
semantics (including the refusal) are observable at the bit level.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.hardware.msr import Msr, MsrFile
from repro.isa.faultable import TRAPPED_OPCODES, faultable_sorted_by_sensitivity
from repro.isa.opcodes import Opcode
from repro.power.dvfs import CurveKind

#: Stable bit assignment: Table 1 order, most sensitive first.
DISABLE_BITS = {op: bit for bit, op in enumerate(faultable_sorted_by_sensitivity())}


def encode_disable_mask(opcodes: Iterable[Opcode]) -> int:
    """Bitmask for ``SUIT_DISABLE_MASK`` disabling *opcodes*."""
    mask = 0
    for op in opcodes:
        try:
            mask |= 1 << DISABLE_BITS[op]
        except KeyError:
            raise ValueError(f"{op.name} is not in the faultable set")
    return mask


def decode_disable_mask(mask: int) -> FrozenSet[Opcode]:
    """The opcodes disabled by *mask*."""
    return frozenset(op for op, bit in DISABLE_BITS.items() if mask >> bit & 1)


class CurveSelectError(RuntimeError):
    """Raised when software selects the efficient curve while a trapped
    instruction is still enabled (the hardware guard of section 3.2)."""


class SuitMsrInterface:
    """OS-level driver for the SUIT MSRs.

    Args:
        msrs: the core's register file (a fresh one if omitted).
        tsc_frequency: TSC rate for deadline conversions (Hz).
    """

    def __init__(self, msrs: MsrFile = None, tsc_frequency: float = 3.0e9) -> None:
        if tsc_frequency <= 0:
            raise ValueError("TSC frequency must be positive")
        self.msrs = msrs if msrs is not None else MsrFile()
        self.tsc_frequency = tsc_frequency
        self.msrs.install_write_hook(Msr.SUIT_CURVE_SELECT, self._check_curve_write)

    # -- disable mask ----------------------------------------------------

    def disable(self, opcodes: Iterable[Opcode]) -> None:
        """Disable *opcodes* (in addition to already-disabled ones)."""
        current = self.msrs.read(Msr.SUIT_DISABLE_MASK)
        self.msrs.write(Msr.SUIT_DISABLE_MASK,
                        current | encode_disable_mask(opcodes))

    def enable_all(self) -> None:
        """Re-enable every instruction (conservative-curve operation)."""
        if self.current_curve() is CurveKind.EFFICIENT:
            raise CurveSelectError(
                "cannot enable faultable instructions on the efficient curve; "
                "select the conservative curve first")
        self.msrs.write(Msr.SUIT_DISABLE_MASK, 0)

    def disabled_opcodes(self) -> FrozenSet[Opcode]:
        """The currently disabled instruction classes."""
        return decode_disable_mask(self.msrs.read(Msr.SUIT_DISABLE_MASK))

    def is_disabled(self, opcode: Opcode) -> bool:
        """Whether *opcode* is currently disabled."""
        return opcode in self.disabled_opcodes()

    # -- curve select ------------------------------------------------------

    def select_curve(self, kind: CurveKind) -> None:
        """Write ``SUIT_CURVE_SELECT``.

        Raises:
            CurveSelectError: selecting the efficient curve while any
                trapped instruction is enabled.
        """
        self.msrs.write(Msr.SUIT_CURVE_SELECT,
                        1 if kind is CurveKind.EFFICIENT else 0)

    def current_curve(self) -> CurveKind:
        """The selected DVFS curve."""
        return (CurveKind.EFFICIENT
                if self.msrs.read(Msr.SUIT_CURVE_SELECT)
                else CurveKind.CONSERVATIVE)

    def _check_curve_write(self, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("SUIT_CURVE_SELECT is a single-bit register")
        if value == 1 and not TRAPPED_OPCODES <= self.disabled_opcodes():
            missing = TRAPPED_OPCODES - self.disabled_opcodes()
            # Reject the write: restore the conservative selection.
            self.msrs.write(Msr.SUIT_CURVE_SELECT, 0)
            raise CurveSelectError(
                "efficient curve refused: "
                + ", ".join(sorted(op.name for op in missing))
                + " still enabled")

    # -- deadline ---------------------------------------------------------

    def set_deadline(self, seconds: float) -> None:
        """Program the deadline register (converted to TSC ticks)."""
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.msrs.write(Msr.SUIT_DEADLINE,
                        int(round(seconds * self.tsc_frequency)))

    def deadline_seconds(self) -> float:
        """The programmed deadline converted back to seconds."""
        return self.msrs.read(Msr.SUIT_DEADLINE) / self.tsc_frequency

    # -- convenience -------------------------------------------------------

    def enter_efficient_mode(self, deadline_s: float) -> None:
        """The full sequence the OS performs to enter SUIT's steady state:
        disable the trapped set, program the deadline, select the curve."""
        self.disable(TRAPPED_OPCODES)
        self.set_deadline(deadline_s)
        self.select_curve(CurveKind.EFFICIENT)
