"""The evaluation CPUs (paper sections 5 and 6.2).

Factory functions build the paper's simulated CPUs:

* ``A`` — Intel Core i9-9900K: 8 cores, a *single* frequency+voltage
  domain, fast frequency switches (22 us, all cores stall), 350 us
  voltage settles.
* ``B`` — AMD Ryzen 7 7700X: per-core frequency domains, no direct
  voltage control, slow 668 us frequency ramps without stall.
* ``C`` — Intel Xeon Silver 4208: per-core frequency *and* voltage
  domains (PCPS), coupled voltage-then-frequency changes.
* the Intel i5-1035G1 from Table 2 (TDP-limited laptop part).

Undervolting responses are calibrated against Table 2; the Xeon (which
Intel does not allow to undervolt) reuses the i9-derived response, as the
paper's simulation does.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hardware.counters import DelaySpec
from repro.hardware.cpu import CpuModel
from repro.hardware.domains import DomainKind, DomainTopology
from repro.hardware.transitions import (
    FrequencyTransitionSpec,
    PStateTransitionModel,
    VoltageTransitionSpec,
)
from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.thermal import TdpModel, UndervoltResponse

#: Exception and emulation-call delays measured in section 5.3.
INTEL_EXCEPTION_DELAY = DelaySpec(0.34e-6, 0.04e-6)
INTEL_EMULATION_DELAY = DelaySpec(0.77e-6, 0.14e-6)
AMD_EXCEPTION_DELAY = DelaySpec(0.11e-6, 0.02e-6)
AMD_EMULATION_DELAY = DelaySpec(0.27e-6, 0.02e-6)


def cpu_a_i9_9900k() -> CpuModel:
    """CPU A: Intel Core i9-9900K (single frequency+voltage domain)."""
    curve = DVFSCurve(I9_9900K_CURVE_POINTS, name="i9-9900K")
    f0 = 4.55e9  # mean SPEC all-core clock from Fig 12
    cmos = CmosPowerModel.calibrated(
        frequency=f0, voltage=curve.voltage_at(f0), total_power=93.0,
        dynamic_share=0.90, uncore_share=0.03,
    )
    response = UndervoltResponse(
        tdp=TdpModel(cmos=cmos, curve=curve, power_limit=100.0, f_max=4.7e9),
        nominal_frequency=f0,
        tdp_bound_fraction=0.06,
        perf_sensitivity=1.15,
        thermal_boost_per_volt=0.33,
        voltage_leverage=1.25,
        voltage_leverage_slope=18.0,
    )
    transitions = PStateTransitionModel(
        frequency=FrequencyTransitionSpec(
            delay=DelaySpec(22e-6, 0.21e-6),
            stall=DelaySpec(20e-6, 0.4e-6),
            aperf_lags=True,
        ),
        voltage=VoltageTransitionSpec(delay=DelaySpec(350e-6, 22e-6)),
    )
    return CpuModel(
        name="Intel Core i9-9900K",
        vendor="intel",
        topology=DomainTopology(8, DomainKind.SHARED, DomainKind.SHARED),
        conservative_curve=curve,
        nominal_frequency=f0,
        cmos=cmos,
        transitions=transitions,
        exception_delay=INTEL_EXCEPTION_DELAY,
        emulation_call_delay=INTEL_EMULATION_DELAY,
        response=response,
    )


def cpu_b_ryzen_7700x() -> CpuModel:
    """CPU B: AMD Ryzen 7 7700X (per-core frequency domains, no MSR 0x150)."""
    curve = DVFSCurve(
        [(2.0e9, 0.800), (3.0e9, 0.870), (4.0e9, 0.950),
         (4.7e9, 1.050), (5.4e9, 1.250)],
        name="7700X",
    )
    f0 = 5.25e9
    cmos = CmosPowerModel.calibrated(
        frequency=f0, voltage=curve.voltage_at(f0), total_power=134.0,
        dynamic_share=0.93, uncore_share=0.03,
    )
    response = UndervoltResponse(
        tdp=TdpModel(cmos=cmos, curve=curve, power_limit=142.0, f_max=5.35e9),
        nominal_frequency=f0,
        tdp_bound_fraction=0.04,
        perf_sensitivity=0.75,
        thermal_boost_per_volt=0.27,
        voltage_leverage=1.22,
        voltage_leverage_slope=6.0,
    )
    transitions = PStateTransitionModel(
        frequency=FrequencyTransitionSpec(
            delay=DelaySpec(668e-6, 292e-6),
            staircase_steps=6,
        ),
        voltage=None,  # undervolting only via BIOS Curve Optimizer
    )
    return CpuModel(
        name="AMD Ryzen 7 7700X",
        vendor="amd",
        topology=DomainTopology(8, DomainKind.PER_CORE, DomainKind.SHARED),
        conservative_curve=curve,
        nominal_frequency=f0,
        cmos=cmos,
        transitions=transitions,
        exception_delay=AMD_EXCEPTION_DELAY,
        emulation_call_delay=AMD_EMULATION_DELAY,
        response=response,
    )


def cpu_c_xeon_4208() -> CpuModel:
    """CPU C: Intel Xeon Silver 4208 (per-core frequency and voltage domains).

    Intel does not permit undervolting this part, so its undervolting
    response is i9-derived (same microarchitecture family), exactly as in
    the paper's trace-based evaluation.
    """
    curve = DVFSCurve(
        [(1.0e9, 0.680), (1.8e9, 0.750), (2.5e9, 0.820), (3.2e9, 1.000)],
        name="Xeon-4208",
    )
    f0 = 3.0e9
    cmos = CmosPowerModel.calibrated(
        frequency=f0, voltage=curve.voltage_at(f0), total_power=82.0,
        dynamic_share=0.88, uncore_share=0.06,
    )
    response = UndervoltResponse(
        tdp=TdpModel(cmos=cmos, curve=curve, power_limit=88.0, f_max=3.2e9),
        nominal_frequency=f0,
        tdp_bound_fraction=0.06,
        perf_sensitivity=1.15,
        thermal_boost_per_volt=0.33,
        voltage_leverage=1.25,
        voltage_leverage_slope=18.0,
    )
    transitions = PStateTransitionModel(
        frequency=FrequencyTransitionSpec(
            delay=DelaySpec(31e-6, 2.3e-6),
            stall=DelaySpec(27e-6, 2.5e-6),
            aperf_lags=True,
        ),
        voltage=VoltageTransitionSpec(delay=DelaySpec(335e-6, 60e-6)),
        voltage_first=True,
    )
    return CpuModel(
        name="Intel Xeon Silver 4208",
        vendor="intel",
        topology=DomainTopology(8, DomainKind.PER_CORE, DomainKind.PER_CORE),
        conservative_curve=curve,
        nominal_frequency=f0,
        cmos=cmos,
        transitions=transitions,
        exception_delay=INTEL_EXCEPTION_DELAY,
        emulation_call_delay=INTEL_EMULATION_DELAY,
        response=response,
        allows_undervolting=False,
    )


def cpu_i5_1035g1() -> CpuModel:
    """Intel Core i5-1035G1: the TDP-limited laptop part of Table 2."""
    curve = DVFSCurve(
        [(1.0e9, 0.630), (2.0e9, 0.720), (3.0e9, 0.830), (3.6e9, 0.950)],
        name="i5-1035G1",
    )
    f0 = 2.9e9
    cmos = CmosPowerModel.calibrated(
        frequency=f0, voltage=curve.voltage_at(f0), total_power=15.0,
        dynamic_share=0.88, uncore_share=0.06,
    )
    response = UndervoltResponse(
        tdp=TdpModel(cmos=cmos, curve=curve, power_limit=15.0, f_max=3.6e9),
        nominal_frequency=f0,
        tdp_bound_fraction=0.97,
        perf_sensitivity=0.72,
        thermal_boost_per_volt=0.0,
        voltage_leverage=1.20,
        voltage_leverage_slope=4.0,
    )
    transitions = PStateTransitionModel(
        frequency=FrequencyTransitionSpec(
            delay=DelaySpec(24e-6, 0.5e-6),
            stall=DelaySpec(21e-6, 0.5e-6),
            aperf_lags=True,
        ),
        voltage=VoltageTransitionSpec(delay=DelaySpec(360e-6, 25e-6)),
    )
    return CpuModel(
        name="Intel Core i5-1035G1",
        vendor="intel",
        topology=DomainTopology(4, DomainKind.SHARED, DomainKind.SHARED),
        conservative_curve=curve,
        nominal_frequency=f0,
        cmos=cmos,
        transitions=transitions,
        exception_delay=INTEL_EXCEPTION_DELAY,
        emulation_call_delay=INTEL_EMULATION_DELAY,
        response=response,
    )


#: All CPU factories by short name.
ALL_CPU_FACTORIES: Dict[str, Callable[[], CpuModel]] = {
    "A": cpu_a_i9_9900k,
    "B": cpu_b_ryzen_7700x,
    "C": cpu_c_xeon_4208,
    "i5": cpu_i5_1035g1,
}
