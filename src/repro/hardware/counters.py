"""Time-stamp and frequency counters, and sampled delays.

``TSC`` ticks at the base clock regardless of the actual core frequency;
``APERF``/``MPERF`` tick at the actual and base clock respectively while
the core is in C0, so ``aperf/mperf * base`` recovers the effective
frequency — the technique the paper uses to measure frequency-change
delays (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DelaySpec:
    """A measured delay: Gaussian with mean and standard deviation.

    All the microbenchmarked latencies in section 5.2/5.3 (exception
    entry, emulation round trip, voltage/frequency change) are represented
    this way; :meth:`sample` draws one realisation, clipped so delays are
    never negative or wildly out of family.
    """

    mean_s: float
    sigma_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_s < 0 or self.sigma_s < 0:
            raise ValueError("delay mean and sigma must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        """One realisation, clipped to [mean/4, mean*4]."""
        if self.sigma_s == 0:
            return self.mean_s
        value = rng.normal(self.mean_s, self.sigma_s)
        return float(min(max(value, self.mean_s * 0.25), self.mean_s * 4.0))


@dataclass
class CoreCounters:
    """TSC / APERF / MPERF state of one core.

    Attributes:
        base_frequency: the invariant TSC (and MPERF) clock in Hz.
        tsc, aperf, mperf: current counter values (cycles).
    """

    base_frequency: float
    tsc: float = 0.0
    aperf: float = 0.0
    mperf: float = 0.0
    _last_aperf: float = field(default=0.0, repr=False)
    _last_mperf: float = field(default=0.0, repr=False)

    def advance(self, duration_s: float, frequency: float, stalled: bool = False) -> None:
        """Advance the counters by *duration_s* at *frequency*.

        TSC always ticks; APERF/MPERF stop while the core is stalled
        (clock-gated during a frequency switch).
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.tsc += duration_s * self.base_frequency
        if not stalled:
            self.aperf += duration_s * frequency
            self.mperf += duration_s * self.base_frequency

    def effective_frequency(self) -> float:
        """Frequency over the window since the previous call (Hz).

        Mirrors the kernel's APERF/MPERF sampling: both counters are read
        and reset-by-difference; returns the base frequency if the core
        has not run since the last sample.
        """
        d_aperf = self.aperf - self._last_aperf
        d_mperf = self.mperf - self._last_mperf
        self._last_aperf = self.aperf
        self._last_mperf = self.mperf
        if d_mperf <= 0:
            return self.base_frequency
        return d_aperf / d_mperf * self.base_frequency
