"""Model-specific registers (paper sections 2.4, 3.2, 3.3, 5.2).

Implements the MSR addresses the paper touches — the undocumented Intel
overclocking mailbox ``0x150`` used to apply voltage offsets,
``IA32_PERF_CTL/STATUS`` for p-state control, ``APERF/MPERF`` — plus the
three MSRs SUIT adds: curve select, disabled-opcode mask and the deadline.

The voltage-offset encoding follows the de-facto-documented mailbox
format (two's-complement offset in 1/1.024 mV units, left-shifted by 21),
and ``IA32_PERF_STATUS`` reports the core voltage in units of 2^-13 V in
bits 47:32, as on real Intel parts.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional


class Msr(enum.IntEnum):
    """MSR addresses used by the reproduction."""

    IA32_TSC = 0x10
    IA32_MPERF = 0xE7
    IA32_APERF = 0xE8
    OC_MAILBOX = 0x150  # undocumented voltage-offset interface
    IA32_PERF_STATUS = 0x198
    IA32_PERF_CTL = 0x199

    # SUIT additions (vendor-defined range).
    SUIT_CURVE_SELECT = 0xC0011000  # 0 = conservative, 1 = efficient
    SUIT_DISABLE_MASK = 0xC0011001  # bitmask over the faultable set
    SUIT_DEADLINE = 0xC0011002  # deadline in TSC ticks


_OFFSET_BITS = 11
_OFFSET_SHIFT = 21
_OFFSET_UNIT_V = 1.0 / 1.024 * 1e-3  # one step ~ 0.9766 mV


def encode_voltage_offset(offset_v: float) -> int:
    """Encode a voltage offset for the 0x150 mailbox.

    Args:
        offset_v: offset in volts; negative undervolts.  Must fit the
            11-bit two's complement range (~ -1.0 .. +0.999 V).

    Returns:
        The mailbox payload (offset field only, already shifted).
    """
    steps = round(offset_v / _OFFSET_UNIT_V)
    limit = 1 << (_OFFSET_BITS - 1)
    if not -limit <= steps < limit:
        raise ValueError(f"offset {offset_v} V outside encodable range")
    return (steps & ((1 << _OFFSET_BITS) - 1)) << _OFFSET_SHIFT


def decode_voltage_offset(value: int) -> float:
    """Inverse of :func:`encode_voltage_offset` (returns volts)."""
    raw = (value >> _OFFSET_SHIFT) & ((1 << _OFFSET_BITS) - 1)
    if raw >= 1 << (_OFFSET_BITS - 1):
        raw -= 1 << _OFFSET_BITS
    return raw * _OFFSET_UNIT_V


_READING_UNIT_V = 2.0 ** -13
_READING_SHIFT = 32


def encode_voltage_reading(voltage_v: float) -> int:
    """Encode a core voltage as IA32_PERF_STATUS would report it."""
    if voltage_v < 0:
        raise ValueError("voltage must be non-negative")
    return round(voltage_v / _READING_UNIT_V) << _READING_SHIFT


def decode_voltage_reading(value: int) -> float:
    """Core voltage in volts from an IA32_PERF_STATUS read."""
    return ((value >> _READING_SHIFT) & 0xFFFF) * _READING_UNIT_V


class MsrFile:
    """A per-core MSR register file with optional read/write hooks.

    Hooks let hardware components expose live values (counters, voltage
    sensors) and react to writes (p-state change requests) while plain
    MSRs behave as storage.
    """

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}

    def install_read_hook(self, address: int, hook: Callable[[], int]) -> None:
        """Route reads of *address* through *hook*."""
        self._read_hooks[int(address)] = hook

    def install_write_hook(self, address: int, hook: Callable[[int], None]) -> None:
        """Invoke *hook* with the value on every write to *address*
        (the value is stored as well)."""
        self._write_hooks[int(address)] = hook

    def read(self, address: int) -> int:
        """rdmsr: current value (0 for never-written plain MSRs)."""
        address = int(address)
        hook = self._read_hooks.get(address)
        if hook is not None:
            return int(hook())
        return self._values.get(address, 0)

    def write(self, address: int, value: int) -> None:
        """wrmsr: store *value* and fire any write hook."""
        address = int(address)
        if not 0 <= value < 1 << 64:
            raise ValueError("MSR values are unsigned 64-bit")
        self._values[address] = value
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(value)

    def stored(self, address: int) -> Optional[int]:
        """The raw stored value, bypassing read hooks (None if unset)."""
        return self._values.get(int(address))
