"""CPU hardware model.

Models the hardware SUIT runs on and modifies: model-specific registers
(including the new SUIT MSRs, section 3.2/3.3), time-stamp and
APERF/MPERF counters, DVFS domain topology (single vs per-core frequency
and voltage domains, section 6.2), and the transition dynamics of voltage
regulators and clock sources measured in section 5.2 (Figs 8-11).

:mod:`repro.hardware.models` bundles everything into the paper's three
evaluation CPUs (A: i9-9900K, B: Ryzen 7 7700X, C: Xeon Silver 4208) plus
the i5-1035G1 used in Table 2.
"""

from repro.hardware.msr import (
    Msr,
    MsrFile,
    encode_voltage_offset,
    decode_voltage_offset,
    encode_voltage_reading,
    decode_voltage_reading,
)
from repro.hardware.counters import CoreCounters, DelaySpec
from repro.hardware.domains import DomainKind, DomainTopology
from repro.hardware.transitions import (
    VoltageTransitionSpec,
    FrequencyTransitionSpec,
    PStateTransitionModel,
)
from repro.hardware.cpu import CpuModel, OperatingPoints
from repro.hardware.interface import (
    SuitMsrInterface,
    CurveSelectError,
    encode_disable_mask,
    decode_disable_mask,
)
from repro.hardware.models import (
    cpu_a_i9_9900k,
    cpu_b_ryzen_7700x,
    cpu_c_xeon_4208,
    cpu_i5_1035g1,
    ALL_CPU_FACTORIES,
)

__all__ = [
    "Msr",
    "MsrFile",
    "encode_voltage_offset",
    "decode_voltage_offset",
    "encode_voltage_reading",
    "decode_voltage_reading",
    "CoreCounters",
    "DelaySpec",
    "DomainKind",
    "DomainTopology",
    "VoltageTransitionSpec",
    "FrequencyTransitionSpec",
    "PStateTransitionModel",
    "CpuModel",
    "OperatingPoints",
    "SuitMsrInterface",
    "CurveSelectError",
    "encode_disable_mask",
    "decode_disable_mask",
    "cpu_a_i9_9900k",
    "cpu_b_ryzen_7700x",
    "cpu_c_xeon_4208",
    "cpu_i5_1035g1",
    "ALL_CPU_FACTORIES",
]
