"""Voltage and frequency transition dynamics (paper section 5.2, Figs 8-11).

The trace-based evaluation of SUIT is driven entirely by how long p-state
changes take and whether the core stalls meanwhile.  The paper measures:

* Intel i9-9900K: voltage settles in 350 us (sigma 22, max 379); a
  frequency change takes 22 us (sigma 0.21) during which *all* cores
  stall, and the first APERF sample after the stall still reports the old
  frequency (late update).
* AMD Ryzen 7 7700X: a frequency change ramps over 668 us on average
  (sigma 292) through intermediate steps, without stalling the core.
* Intel Xeon Silver 4208 (per-core domains): a p-state change always
  moves the voltage first (335 us, sigma 135) and then the frequency
  (31 us, sigma 2.3) with a 27 us core stall (sigma 2.5).

Besides the scalar delays the simulator consumes, each spec can generate
a full sampled *measurement trajectory* reproducing the corresponding
figure, including the sampling artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.counters import DelaySpec


@dataclass(frozen=True)
class VoltageTransitionSpec:
    """Voltage-regulator step response.

    Attributes:
        delay: total settle time distribution.
        step_v: regulator output quantisation (volts per step).
        sample_interval_s: poll period of the measuring kernel module
            (MSR_IA32_PERF_STATUS reads in the paper's setup).
        noise_v: sensor noise on each voltage sample.
    """

    delay: DelaySpec
    step_v: float = 0.005
    sample_interval_s: float = 10e-6
    noise_v: float = 0.0015

    def sample_delay(self, rng: np.random.Generator) -> float:
        """One settle-time realisation in seconds."""
        return self.delay.sample(rng)

    def trajectory(self, v_from: float, v_to: float,
                   rng: np.random.Generator,
                   tail_s: float = 250e-6) -> Tuple[np.ndarray, np.ndarray]:
        """A sampled voltage trace for one transition (Fig 8).

        The regulator slews linearly from *v_from* to *v_to* over a
        sampled settle time, quantised to ``step_v``; sampling continues
        for *tail_s* after settling.

        Returns:
            ``(times_s, volts)`` arrays; time 0 is the change request.
        """
        settle = self.sample_delay(rng)
        times = np.arange(0.0, settle + tail_s, self.sample_interval_s)
        frac = np.clip(times / settle, 0.0, 1.0)
        volts = v_from + (v_to - v_from) * frac
        volts = np.round(volts / self.step_v) * self.step_v
        volts = volts + rng.normal(0.0, self.noise_v, size=volts.shape)
        return times, volts

    def settle_time_from_trajectory(self, times: np.ndarray, volts: np.ndarray,
                                    v_to: float, tolerance_v: float = 0.008) -> float:
        """Recover the settle time the way the paper's kernel module does:
        the first sample after which the voltage stays within tolerance of
        the target."""
        within = np.abs(volts - v_to) <= tolerance_v
        for i in range(len(times)):
            if within[i:].all():
                return float(times[i])
        return float(times[-1])


@dataclass(frozen=True)
class FrequencyTransitionSpec:
    """Clock-source transition behaviour.

    Attributes:
        delay: end-to-end frequency-change delay distribution.
        stall: distribution of the core-stall portion (mean 0 on AMD).
        staircase_steps: number of intermediate frequency plateaus during
            the ramp (1 = a single step, Intel style; >1 = AMD-style ramp).
        aperf_lags: whether the first post-stall APERF/MPERF sample still
            reports the pre-change frequency (Intel artifact, Fig 9).
        sample_interval_s: poll period of the measurement loop.
    """

    delay: DelaySpec
    stall: DelaySpec = DelaySpec(0.0)
    staircase_steps: int = 1
    aperf_lags: bool = False
    sample_interval_s: float = 2e-6

    def sample_delay(self, rng: np.random.Generator) -> float:
        """Total frequency-change delay in seconds."""
        return self.delay.sample(rng)

    def sample_stall(self, rng: np.random.Generator) -> float:
        """Core-stall duration within the change, in seconds."""
        if self.stall.mean_s == 0:
            return 0.0
        return min(self.stall.sample(rng), self.delay.mean_s * 4.0)

    def trajectory(self, f_from: float, f_to: float,
                   rng: np.random.Generator,
                   lead_s: float = 10e-6,
                   tail_s: float = 25e-6) -> Tuple[np.ndarray, np.ndarray]:
        """Sampled frequency measurements around one change (Figs 9-11).

        Returns ``(times_s, freqs_hz)``; time 0 is the write to the
        p-state control register.  During a stall no samples exist (the
        measuring core does not run); on Intel the first sample after the
        stall still shows the old frequency because APERF is updated late.
        """
        total = self.sample_delay(rng)
        stall = self.sample_stall(rng)
        times: List[float] = []
        freqs: List[float] = []
        t = -lead_s
        while t < 0.0:
            times.append(t)
            freqs.append(f_from)
            t += self.sample_interval_s
        if stall > 0.0:
            # No samples during the stall; one lagging sample right after.
            t = stall
            if self.aperf_lags:
                times.append(t)
                freqs.append(f_from)
                t += self.sample_interval_s
            while t < stall + tail_s:
                times.append(t)
                freqs.append(f_to)
                t += self.sample_interval_s
        else:
            # Staircase ramp, core keeps running.
            steps = max(1, self.staircase_steps)
            plateau = total / steps
            while t < total:
                k = min(int(t / plateau) + 1, steps)
                times.append(t)
                freqs.append(f_from + (f_to - f_from) * k / steps)
                t += self.sample_interval_s
            while t < total + tail_s:
                times.append(t)
                freqs.append(f_to)
                t += self.sample_interval_s
        jitter = rng.normal(0.0, 0.004 * abs(f_from), size=len(freqs))
        return np.asarray(times), np.asarray(freqs) + jitter


@dataclass(frozen=True)
class PStateTransitionModel:
    """Full p-state transition behaviour of one CPU.

    Attributes:
        frequency: clock transition spec.
        voltage: regulator spec, or None if the platform exposes no
            direct voltage control (AMD consumer parts).
        voltage_first: Xeon PCPS behaviour — a p-state change always
            applies the voltage change before the frequency change,
            regardless of direction.
    """

    frequency: FrequencyTransitionSpec
    voltage: Optional[VoltageTransitionSpec] = None
    voltage_first: bool = False

    def frequency_change(self, rng: np.random.Generator) -> Tuple[float, float]:
        """(total_delay_s, stall_s) for a frequency-only change."""
        return self.frequency.sample_delay(rng), self.frequency.sample_stall(rng)

    def voltage_change(self, rng: np.random.Generator) -> float:
        """Settle time for a voltage-only change.

        Raises:
            ValueError: if the platform has no voltage control.
        """
        if self.voltage is None:
            raise ValueError("this CPU exposes no direct voltage control")
        return self.voltage.sample_delay(rng)

    def pstate_change(self, rng: np.random.Generator,
                      needs_voltage: bool) -> Tuple[float, float]:
        """(total_delay_s, stall_s) for a combined p-state change.

        With ``voltage_first`` the total is the voltage settle plus the
        frequency change; the stall only covers the frequency part.
        """
        f_delay, f_stall = self.frequency_change(rng)
        if needs_voltage and self.voltage is not None and self.voltage_first:
            return self.voltage.sample_delay(rng) + f_delay, f_stall
        return f_delay, f_stall
