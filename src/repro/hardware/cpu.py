"""Static CPU description consumed by the SUIT simulator.

A :class:`CpuModel` bundles everything section 5 measures about a CPU:
its DVFS curve, domain topology, transition dynamics, exception and
emulation-call delays, power model and undervolting response.  From an
undervolt offset it derives the three operating points of the fV strategy
(Fig 4): the efficient point ``E`` and the two conservative switch
targets ``Cf`` (frequency path) and ``CV`` (voltage path), expressed as
speed/power ratios relative to the conservative baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.counters import DelaySpec
from repro.hardware.domains import DomainTopology
from repro.hardware.transitions import PStateTransitionModel
from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import CurveKind, DVFSCurve
from repro.power.thermal import UndervoltResponse

#: Voltage offsets are partially absorbed by load-line regulation before
#: they reach the cores, and more so for shallow offsets (the same
#: sub-quadratic response Table 2 measures).  The simulator's per-state
#: power therefore uses an effective offset: REF fraction of the nominal
#: offset at the paper's -97 mV calibration point, shrinking by SLOPE
#: (1/V) toward shallower offsets.  Calibrated against the per-state
#: powers Table 6 implies (E-state ~ -7.7 % at -70 mV, ~ -13 % at -97 mV).
SIM_LEVERAGE_REF = 0.85
SIM_LEVERAGE_SLOPE = 4.0
_LEVERAGE_REF_V = 0.097


def _effective_sim_offset(voltage_offset: float) -> float:
    """Offset as seen by the core power rails (see SIM_LEVERAGE_REF)."""
    depth = abs(min(voltage_offset, 0.0))
    factor = SIM_LEVERAGE_REF + SIM_LEVERAGE_SLOPE * (depth - _LEVERAGE_REF_V)
    return voltage_offset * min(max(factor, 0.4), 1.5)


@dataclass(frozen=True)
class OperatingPoints:
    """Relative speed and power of the three SUIT states at one offset.

    All values are ratios against the conservative baseline (CV): a speed
    of 1.02 means 2 % more instructions per second, a power of 0.84 means
    16 % less package power.
    """

    speed_e: float
    power_e: float
    speed_cf: float
    power_cf: float
    speed_cv: float = 1.0
    power_cv: float = 1.0


@dataclass(frozen=True)
class CpuModel:
    """Everything the evaluation knows about one CPU.

    Attributes:
        name: marketing name (e.g. "Intel Core i9-9900K").
        vendor: "intel" or "amd" (selects exception-delay family and
            no-SIMD overhead column).
        topology: cores and DVFS domain granularity.
        conservative_curve: the vendor DVFS curve (today's only curve).
        nominal_frequency: sustained all-core clock under the SPEC mix.
        cmos: package power model.
        transitions: voltage/frequency change dynamics.
        exception_delay: #DO/#UD exception entry+return delay (5.3).
        emulation_call_delay: double kernel-transition delay for
            user-space emulation (5.3).
        response: calibrated undervolting response (5.4).
        allows_undervolting: whether the part exposes voltage offsets
            (the Xeon Silver 4208 does not; its response is i9-derived).
    """

    name: str
    vendor: str
    topology: DomainTopology
    conservative_curve: DVFSCurve
    nominal_frequency: float
    cmos: CmosPowerModel
    transitions: PStateTransitionModel
    exception_delay: DelaySpec
    emulation_call_delay: DelaySpec
    response: UndervoltResponse
    allows_undervolting: bool = True

    @property
    def nominal_voltage(self) -> float:
        """Conservative-curve voltage at the nominal frequency."""
        return self.conservative_curve.voltage_at(self.nominal_frequency)

    def efficient_curve(self, voltage_offset: float) -> DVFSCurve:
        """The efficient DVFS curve at *voltage_offset* (negative volts)."""
        if voltage_offset >= 0:
            raise ValueError("the efficient curve requires a negative voltage offset")
        return self.conservative_curve.with_offset(voltage_offset, CurveKind.EFFICIENT)

    def cf_frequency(self, voltage_offset: float) -> float:
        """Conservative-curve frequency reachable at the efficient voltage.

        This is the ``Cf`` switch target of Fig 4: keep V_E, lower the
        clock until the conservative curve is met.
        """
        v_eff = self.nominal_voltage + voltage_offset
        f_cf = self.conservative_curve.frequency_at(v_eff)
        return min(f_cf, self.nominal_frequency)

    def operating_points(self, voltage_offset: float) -> OperatingPoints:
        """Speed/power ratios of E, Cf and CV at *voltage_offset*.

        E keeps the nominal frequency plus the thermal/TDP boost of the
        undervolting response, at the offset voltage; its power ratio is
        computed directly from the CMOS model (the trace simulator's
        E-state, unlike Table 2's whole-run measurements, sees only the
        core operating point).  Cf runs at the efficient voltage but the
        reduced conservative frequency; CV is the baseline.
        """
        f0 = self.nominal_frequency
        v0 = self.nominal_voltage
        f_cf = self.cf_frequency(voltage_offset)
        sens = self.response.perf_sensitivity
        f_e = f0 * self.response.frequency_ratio(voltage_offset)
        v_eff = v0 + _effective_sim_offset(voltage_offset)
        return OperatingPoints(
            speed_e=self.response.score_ratio(voltage_offset),
            power_e=self.cmos.power_ratio(f_e, v_eff, f0, v0),
            speed_cf=1.0 + sens * (f_cf / f0 - 1.0),
            power_cf=self.cmos.power_ratio(f_cf, v_eff, f0, v0),
        )
