"""Security analysis of SUIT (paper sections 3.5, 6.9, 8).

Three artifacts:

* :mod:`repro.security.analysis` — the reductionist argument as an
  executable check: the efficient curve is safe for every *enabled*
  instruction (the faultable set is disabled; the hardened IMUL's
  minimum voltage lies below the efficient curve).
* :mod:`repro.security.invariants` — a runtime monitor over simulation
  runs verifying that no faultable instruction ever executes below its
  minimum stable voltage.
* :mod:`repro.security.attacks` — Plundervolt-style software fault
  attacks (the Bellcore RSA-CRT attack on IMUL faults, and AES round
  corruption) demonstrating what undervolting *without* SUIT enables and
  that SUIT closes the vector.
"""

from repro.security.analysis import (
    CurveSafetyReport,
    check_efficient_curve,
    reductionist_argument,
)
from repro.security.invariants import SecurityMonitor, ExecutionRecord, SecurityReport
from repro.security.covert import CurveSwitchCovertChannel, CovertChannelResult
from repro.security.model_check import explore as model_check_explore, AbstractState, ModelCheckResult
from repro.security.attacks import (
    RsaCrtSigner,
    bellcore_attack,
    rsa_keygen,
    AesFaultDemo,
)

__all__ = [
    "CurveSafetyReport",
    "check_efficient_curve",
    "reductionist_argument",
    "SecurityMonitor",
    "ExecutionRecord",
    "SecurityReport",
    "RsaCrtSigner",
    "bellcore_attack",
    "rsa_keygen",
    "AesFaultDemo",
    "CurveSwitchCovertChannel",
    "CovertChannelResult",
    "model_check_explore",
    "AbstractState",
    "ModelCheckResult",
]
