"""Software fault attacks enabled by unsafe undervolting (sections 1, 8).

Plundervolt, V0LTpwn and CLKSCREW showed that undervolting-induced
computation faults break every security guarantee of a CPU.  The classic
demonstration is the Bellcore attack on RSA-CRT: a *single* faulty
multiplication while computing one CRT half of a signature lets the
attacker factor the modulus with one gcd.

These demos drive real (toy-sized but genuine) RSA and AES computations
through the fault injector at a chosen operating point:

* undervolted without SUIT, IMUL faults corrupt signatures and the
  private key falls out;
* with SUIT, IMUL is hardened (its minimum voltage drops below the
  efficient curve) and AESENC is disabled-and-trapped onto the
  conservative curve, so the same operating points produce no faults.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.emulation.aes import aes128_encrypt_block, aes128_expand_key, aesenc, aesenclast
from repro.emulation.vector import Vec128
from repro.faults.injector import FaultInjector
from repro.isa.opcodes import Opcode

_MR_ROUNDS = 24


def _is_probable_prime(n: int, rng: random.Random) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """A random *bits*-bit prime."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaKey:
    """An RSA key pair with CRT parameters.

    Attributes mirror the PKCS#1 naming: modulus ``n``, public exponent
    ``e``, private exponent ``d``, primes ``p``/``q``, CRT exponents
    ``d_p``/``d_q`` and coefficient ``q_inv``.
    """

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int


def rsa_keygen(bits: int = 512, seed: int = 7) -> RsaKey:
    """Generate a toy RSA key (deterministic for a given seed)."""
    if bits < 64:
        raise ValueError("need at least 64-bit keys")
    rng = random.Random(seed)
    e = 65537
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) == 1:
            break
    d = pow(e, -1, phi)
    return RsaKey(n=p * q, e=e, d=d, p=p, q=q,
                  d_p=d % (p - 1), d_q=d % (q - 1), q_inv=pow(q, -1, p))


class RsaCrtSigner:
    """RSA-CRT signer whose arithmetic runs on (possibly undervolted)
    hardware.

    Each CRT half-exponentiation ends in big multiplications built from
    64-bit limb IMULs; the injector decides, from the operating point,
    whether one of those multiplies faults — corrupting the half-result
    exactly the way the Bellcore attack requires.

    Args:
        key: the RSA key.
        injector: fault source, or None for ideal hardware.
        core / frequency / voltage: operating point of the signing run.
    """

    def __init__(self, key: RsaKey, injector: Optional[FaultInjector] = None,
                 core: int = 0, frequency: float = 4.0e9,
                 voltage: float = 1.0) -> None:
        self.key = key
        self._injector = injector
        self._core = core
        self._frequency = frequency
        self._voltage = voltage

    def _half_exponent(self, message: int, prime: int, exponent: int) -> int:
        """One CRT half: ``message^exponent mod prime``, with the final
        modular multiplication routed through the fault injector."""
        result = pow(message % prime, exponent, prime)
        if self._injector is None:
            return result
        corrupted = self._injector.execute(
            Opcode.IMUL, result,
            core=self._core, frequency=self._frequency, voltage=self._voltage,
            result_bits=max(prime.bit_length() - 1, 8),
        )
        return corrupted % prime

    def sign(self, message: int) -> int:
        """Produce an RSA-CRT signature of *message* (< n).

        The fault window covers the ``q`` half-exponentiation — the
        Bellcore setting: one of the two CRT halves computed while the
        supply is unstable.  (A fault in *both* halves merely yields
        garbage; the attack needs the asymmetry.)
        """
        key = self.key
        if not 0 <= message < key.n:
            raise ValueError("message must be reduced modulo n")
        s_p = pow(message % key.p, key.d_p, key.p)
        s_q = self._half_exponent(message, key.q, key.d_q)
        h = (key.q_inv * (s_p - s_q)) % key.p
        return (s_q + h * key.q) % key.n

    def verify(self, message: int, signature: int) -> bool:
        """Check *signature* against the public key."""
        return pow(signature, self.key.e, self.key.n) == message


def bellcore_attack(n: int, e: int, message: int, signature: int) -> Optional[int]:
    """Recover a prime factor of *n* from one faulty CRT signature.

    If the fault hit the ``q`` half, ``sig^e - m`` is divisible by ``p``
    but not ``q`` (and vice versa), so the gcd reveals a factor.

    Returns:
        A nontrivial factor, or None (signature was correct or the fault
        destroyed the CRT structure).
    """
    candidate = math.gcd((pow(signature, e, n) - message) % n, n)
    if 1 < candidate < n:
        return candidate
    return None


class AesFaultDemo:
    """AES-128 encryption on (possibly undervolted) AES-NI hardware.

    Every AESENC round passes through the fault injector; on a SUIT
    system the rounds are executed at the conservative voltage instead
    (the #DO trap switched the curve), which callers express by passing
    the conservative operating point.
    """

    def __init__(self, key: bytes, injector: Optional[FaultInjector] = None,
                 core: int = 0, frequency: float = 4.0e9,
                 voltage: float = 1.0) -> None:
        self._round_keys = aes128_expand_key(key)
        self._key = key
        self._injector = injector
        self._core = core
        self._frequency = frequency
        self._voltage = voltage

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one block; round outputs may be corrupted by faults."""
        state = Vec128(Vec128.from_bytes(block).value ^ self._round_keys[0].value)
        for r in range(1, 10):
            state = aesenc(state, self._round_keys[r])
            state = self._maybe_fault(state)
        state = aesenclast(state, self._round_keys[10])
        return self._maybe_fault(state).to_bytes()

    def reference(self, block: bytes) -> bytes:
        """The correct ciphertext (ideal hardware)."""
        return aes128_encrypt_block(block, self._key)

    def _maybe_fault(self, state: Vec128) -> Vec128:
        if self._injector is None:
            return state
        value = self._injector.execute(
            Opcode.AESENC, state.value,
            core=self._core, frequency=self._frequency, voltage=self._voltage,
            result_bits=128,
        )
        return Vec128(value)
