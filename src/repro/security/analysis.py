"""The reductionist security argument, executable (paper section 6.9).

SUIT's claim: its security equals that of today's CPUs, because both
curves are determined by the same vendor process — the conservative
curve over the full instruction set, the efficient curve over the set
minus the disabled instructions (with IMUL statically hardened).  The
checks here verify the premises against a concrete chip instance:

1. every instruction *enabled* on the efficient curve (i.e. everything
   outside the trapped set) has its minimum stable voltage below the
   efficient curve at every frequency;
2. the hardened (4-cycle) IMUL joins that set;
3. every instruction is stable on the conservative curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.faults.model import CpuInstanceFaults
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve


@dataclass
class CurveSafetyReport:
    """Outcome of a curve-safety audit.

    Attributes:
        curve_name: audited curve.
        offset_v: applied voltage offset.
        checked: (opcode, core, frequency) points audited.
        violations: points where an enabled instruction could fault.
    """

    curve_name: str
    offset_v: float
    checked: int = 0
    violations: List[Tuple[Opcode, int, float]] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.violations


def check_efficient_curve(chip: CpuInstanceFaults, offset_v: float,
                          frequencies: Sequence[float],
                          harden_imul: bool = True) -> CurveSafetyReport:
    """Audit the efficient curve of *chip* at *offset_v*.

    Every opcode outside the trapped set (IMUL hardened if requested)
    must be stable at the offset voltage on every core and frequency.
    """
    if offset_v >= 0:
        raise ValueError("the efficient curve has a negative offset")
    audited = chip.with_hardened_imul() if harden_imul else chip
    report = CurveSafetyReport(curve_name="efficient", offset_v=offset_v)
    for opcode in Opcode:
        if opcode in TRAPPED_OPCODES:
            continue  # disabled: cannot execute, cannot fault
        for core in range(audited.n_cores):
            for freq in frequencies:
                report.checked += 1
                voltage = audited.curve.voltage_at(freq) + offset_v
                if audited.faults(opcode, core, freq, voltage):
                    report.violations.append((opcode, core, freq))
    return report


def check_conservative_curve(chip: CpuInstanceFaults,
                             frequencies: Sequence[float]) -> CurveSafetyReport:
    """Audit the conservative curve: the full ISA must be stable at
    zero offset (today's guarantee)."""
    report = CurveSafetyReport(curve_name="conservative", offset_v=0.0)
    for opcode in Opcode:
        for core in range(chip.n_cores):
            for freq in frequencies:
                report.checked += 1
                voltage = chip.curve.voltage_at(freq)
                if chip.faults(opcode, core, freq, voltage):
                    report.violations.append((opcode, core, freq))
    return report


@dataclass(frozen=True)
class ReductionistResult:
    """Both halves of the section 6.9 argument for one chip."""

    conservative: CurveSafetyReport
    efficient: CurveSafetyReport

    @property
    def holds(self) -> bool:
        """SUIT is exactly as safe as the stock CPU on this chip."""
        return self.conservative.safe and self.efficient.safe


def reductionist_argument(chip: CpuInstanceFaults, offset_v: float,
                          frequencies: Sequence[float]) -> ReductionistResult:
    """Run both audits (sections 3.5 and 6.9) against one chip."""
    return ReductionistResult(
        conservative=check_conservative_curve(chip, frequencies),
        efficient=check_efficient_curve(chip, offset_v, frequencies),
    )


def imul_hardening_headroom(curve: DVFSCurve, frequency: float,
                            old_latency: int = 3, new_latency: int = 4) -> float:
    """Voltage headroom (volts) the IMUL latency increase buys at
    *frequency* — Fig 13's "modified IMUL" gap, ~220 mV at 5 GHz on the
    i9-9900K curve and near zero at low frequency."""
    scale = old_latency / new_latency
    return curve.voltage_at(frequency) - curve.voltage_at(frequency * scale)
