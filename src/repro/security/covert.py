"""The curve-switch covert channel (paper section 8, "Side-Channel
Leakage").

On a CPU with a *shared* DVFS domain, SUIT's curve switches are globally
observable: when any core traps, every core's clock drops to Cf.  A
sender can therefore signal bits to a receiver on another core without
any architectural channel — execute one disabled instruction for a "1",
stay quiet for a "0"; the receiver times a calibrated spin loop and
reads the frequency dip.  (On per-core-domain CPUs like the Xeon the
channel closes; the paper lists this as a residual risk of shared
domains.)

This is an analysis artifact: it quantifies the leak SUIT's design
accepts, it does not make the attack practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.hardware.cpu import CpuModel


@dataclass(frozen=True)
class CovertChannelResult:
    """Outcome of one covert transmission.

    Attributes:
        sent: transmitted bits.
        received: decoded bits.
        slot_s: signalling slot duration.
    """

    sent: Sequence[int]
    received: Sequence[int]
    slot_s: float

    @property
    def bit_error_rate(self) -> float:
        errors = sum(1 for a, b in zip(self.sent, self.received) if a != b)
        return errors / len(self.sent) if self.sent else 0.0

    @property
    def bandwidth_bps(self) -> float:
        return 1.0 / self.slot_s


class CurveSwitchCovertChannel:
    """Simulate the sender/receiver pair on one CPU.

    The sender occupies one core; in each slot it either executes a
    disabled instruction (forcing the domain to the conservative curve
    for at least the deadline) or idles.  The receiver, on another core
    of the same domain, counts iterations of a timed spin loop; on the
    efficient curve it completes ``speed_e / speed_cf`` times as many.

    Args:
        cpu: the CPU model (the channel only works if the frequency
            domain is shared).
        voltage_offset: SUIT's efficient-curve offset.
        deadline_s: SUIT deadline (how long one trap keeps the domain
            conservative).
        noise: relative jitter on the receiver's loop counts.
    """

    def __init__(self, cpu: CpuModel, voltage_offset: float = -0.097,
                 deadline_s: float = 30e-6, noise: float = 0.01) -> None:
        self.cpu = cpu
        self.points = cpu.operating_points(voltage_offset)
        self.deadline_s = deadline_s
        self.noise = noise

    @property
    def channel_exists(self) -> bool:
        """Shared frequency domain => observable switches."""
        return not self.cpu.topology.per_core_frequency

    @property
    def contrast(self) -> float:
        """Relative speed difference the receiver must resolve."""
        return self.points.speed_e / self.points.speed_cf - 1.0

    def transmit(self, bits: Sequence[int], rng: np.random.Generator,
                 slot_s: float = None) -> CovertChannelResult:
        """Send *bits*; returns the decode result.

        Raises:
            RuntimeError: on per-core-domain CPUs (no shared observable).
        """
        if not self.channel_exists:
            raise RuntimeError(
                f"{self.cpu.name} has per-core frequency domains; "
                "curve switches are not globally observable")
        if slot_s is None:
            # One trap pins the domain conservative for ~deadline; the
            # slot must exceed it so "0" slots recover to E.
            slot_s = 2.5 * self.deadline_s
        if slot_s <= self.deadline_s:
            raise ValueError("slot must be longer than the deadline")

        received: List[int] = []
        for bit in bits:
            if bit:
                # Trap at slot start: conservative for ~deadline, then E.
                cons = min(self.deadline_s, slot_s)
                eff = slot_s - cons
                speed = (cons * self.points.speed_cf
                         + eff * self.points.speed_e) / slot_s
            else:
                speed = self.points.speed_e
            observed = speed * (1.0 + rng.normal(0.0, self.noise))
            threshold = 0.5 * (self.points.speed_e + self._one_speed(slot_s))
            received.append(1 if observed < threshold else 0)
        return CovertChannelResult(sent=list(bits), received=received,
                                   slot_s=slot_s)

    def _one_speed(self, slot_s: float) -> float:
        cons = min(self.deadline_s, slot_s)
        return (cons * self.points.speed_cf
                + (slot_s - cons) * self.points.speed_e) / slot_s

    def capacity_estimate(self, rng: np.random.Generator,
                          n_bits: int = 512) -> float:
        """Error-free-equivalent bandwidth in bits/s (Shannon-style
        penalty for the measured bit-error rate)."""
        bits = rng.integers(0, 2, size=n_bits).tolist()
        result = self.transmit(bits, rng)
        p = min(max(result.bit_error_rate, 1e-9), 0.5 - 1e-9)
        h = -(p * np.log2(p) + (1 - p) * np.log2(1 - p))
        return result.bandwidth_bps * (1.0 - h)
