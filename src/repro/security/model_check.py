"""Explicit-state model checking of the SUIT state machine (section 3.5).

The simulator samples *one* schedule of traps, timer expiries and
regulator completions; the security argument must hold for *all* of
them.  This module abstracts SUIT's per-domain state into a small finite
machine and exhaustively explores every interleaving of the abstract
events up to a bound, checking the invariants at every reachable state:

* **safety** — a trapped-class instruction never executes enabled on the
  efficient curve (the reductionist argument's hardware premise);
* **liveness** (bounded) — from every reachable state the machine can
  return to the efficient steady state (no deadlock, no state where the
  deadline can never fire);
* **consistency** — the disable mask and curve select never disagree in
  the forbidden direction (efficient + enabled).

The abstract machine mirrors the rules of
:class:`~repro.core.simulator.TraceSimulator` for the fV strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: Abstract events the environment can inject.
EVENTS = (
    "faultable_instr",   # the program reaches a trapped-class instruction
    "timer_fire",        # the armed deadline expires
    "voltage_done",      # the in-flight regulator request completes
)


@dataclass(frozen=True)
class AbstractState:
    """One abstract SUIT domain state.

    Attributes:
        curve: "E", "Cf" or "CV" (the physical operating point).
        disabled: whether the trapped set is disabled.
        timer_armed: whether the deadline timer is counting.
        pending: in-flight regulator request ("CV", "E") or None.
    """

    curve: str = "E"
    disabled: bool = True
    timer_armed: bool = False
    pending: Optional[str] = None

    def __post_init__(self) -> None:
        if self.curve not in ("E", "Cf", "CV"):
            raise ValueError(f"unknown curve {self.curve}")
        if self.pending not in (None, "CV", "E"):
            raise ValueError(f"unknown pending target {self.pending}")


#: The SUIT boot state: efficient curve, trapped set disabled.
INITIAL_STATE = AbstractState()


@dataclass(frozen=True)
class Violation:
    """An invariant violation found during exploration.

    Attributes:
        invariant: which property failed.
        state: the violating state.
        trace: the event sequence that reached it.
    """

    invariant: str
    state: AbstractState
    trace: Tuple[str, ...]


def step(state: AbstractState, event: str) -> Optional[AbstractState]:
    """The fV transition relation; None if *event* cannot occur.

    Mirrors the simulator: a faultable instruction while disabled traps
    (wait Cf, request CV, enable, arm); while enabled it only re-arms
    the timer.  Timer expiry disables and requests E (cancelling an
    in-flight CV).  A pending completion applies its target.
    """
    if event == "faultable_instr":
        if state.disabled:
            # #DO trap -> Listing 1.
            return AbstractState(curve="Cf", disabled=False,
                                 timer_armed=True, pending="CV")
        # Enabled execution: deadline restarts (already armed).
        return state if state.timer_armed else None
    if event == "timer_fire":
        if not state.timer_armed:
            return None
        # Back to E: speed immediately, power via pending; the CV
        # request (if any) is cancelled by the new E request.
        return AbstractState(curve="E", disabled=True,
                             timer_armed=False, pending="E")
    if event == "voltage_done":
        if state.pending is None:
            return None
        if state.pending == "CV":
            if state.curve != "Cf":
                return None  # stale completion; the request was replaced
            return replace(state, curve="CV", pending=None)
        # pending == "E": the regulator reached the efficient level.
        if state.curve != "E":
            return None
        return replace(state, pending=None)
    raise ValueError(f"unknown event {event}")


def check_state(state: AbstractState) -> List[str]:
    """Invariants that must hold in *state*; returns violated names."""
    violated = []
    # Safety: on the efficient curve the trapped set must be disabled.
    if state.curve == "E" and not state.disabled:
        violated.append("enabled-on-efficient-curve")
    # Consistency: conservative operation must keep the timer armed
    # (otherwise the domain could stay conservative forever).
    if state.curve in ("Cf", "CV") and not state.timer_armed:
        violated.append("conservative-without-deadline")
    # The CV request only makes sense from Cf.
    if state.pending == "CV" and state.curve not in ("Cf",):
        violated.append("stale-cv-request")
    return violated


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive exploration.

    Attributes:
        states_explored: distinct abstract states reached.
        transitions: explored (state, event) pairs.
        violations: invariant violations (empty = verified).
        non_returning: states from which E is unreachable (empty =
            bounded liveness holds).
    """

    states_explored: int
    transitions: int
    violations: List[Violation]
    non_returning: List[AbstractState]

    @property
    def holds(self) -> bool:
        return not self.violations and not self.non_returning


def explore(initial: AbstractState = INITIAL_STATE,
            max_depth: int = 12) -> ModelCheckResult:
    """BFS over all event interleavings up to *max_depth*.

    The abstract state space is tiny (<= 3*2*2*3 = 36 states), so the
    exploration saturates long before any realistic depth bound.
    """
    seen: Dict[AbstractState, Tuple[str, ...]] = {initial: ()}
    frontier: List[AbstractState] = [initial]
    violations: List[Violation] = []
    transitions = 0

    for name in check_state(initial):
        violations.append(Violation(name, initial, ()))

    depth = 0
    while frontier and depth < max_depth:
        next_frontier: List[AbstractState] = []
        for state in frontier:
            for event in EVENTS:
                successor = step(state, event)
                if successor is None:
                    continue
                transitions += 1
                if successor not in seen:
                    seen[successor] = seen[state] + (event,)
                    next_frontier.append(successor)
                    for name in check_state(successor):
                        violations.append(Violation(
                            name, successor, seen[successor]))
        frontier = next_frontier
        depth += 1

    non_returning = [s for s in seen if not _can_reach_steady_state(s)]
    return ModelCheckResult(
        states_explored=len(seen),
        transitions=transitions,
        violations=violations,
        non_returning=non_returning,
    )


def _can_reach_steady_state(state: AbstractState,
                            bound: int = 8) -> bool:
    """Bounded reachability of the efficient steady state."""
    target_ok = (lambda s: s.curve == "E" and s.disabled)
    frontier: Set[AbstractState] = {state}
    visited: Set[AbstractState] = set(frontier)
    for _ in range(bound):
        if any(target_ok(s) for s in frontier):
            return True
        next_frontier: Set[AbstractState] = set()
        for s in frontier:
            for event in EVENTS:
                nxt = step(s, event)
                if nxt is not None and nxt not in visited:
                    visited.add(nxt)
                    next_frontier.add(nxt)
        frontier = next_frontier
        if not frontier:
            break
    return any(target_ok(s) for s in visited)
