"""Runtime security monitor.

Observes instruction executions (opcode + operating point) and flags any
faultable instruction that ran below its minimum stable voltage — the
event SUIT must make impossible.  Used by tests and the attack demos to
contrast plain undervolting (violations occur) with SUIT (none, ever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.faults.model import CpuInstanceFaults
from repro.isa.faultable import is_faultable
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class ExecutionRecord:
    """One observed instruction execution."""

    opcode: Opcode
    core: int
    frequency: float
    voltage: float
    time_s: float = 0.0


@dataclass
class SecurityReport:
    """Audit outcome.

    Attributes:
        observed: executions inspected.
        violations: executions below the instruction's minimum voltage.
    """

    observed: int = 0
    violations: List[ExecutionRecord] = field(default_factory=list)

    @property
    def secure(self) -> bool:
        return not self.violations


class SecurityMonitor:
    """Checks executions against a chip's fault thresholds.

    Args:
        chip: the chip instance providing per-instruction Vmin.
        hardened_imul: whether the chip runs SUIT's 4-cycle IMUL.
    """

    def __init__(self, chip: CpuInstanceFaults, hardened_imul: bool = True) -> None:
        self._chip = chip.with_hardened_imul() if hardened_imul else chip
        self.report = SecurityReport()

    def observe(self, record: ExecutionRecord) -> bool:
        """Inspect one execution; returns True when it was safe."""
        self.report.observed += 1
        if not is_faultable(record.opcode):
            return True
        if self._chip.faults(record.opcode, record.core,
                             record.frequency, record.voltage):
            self.report.violations.append(record)
            return False
        return True

    def audit_operating_point(self, opcodes, core: int, frequency: float,
                              voltage: float) -> SecurityReport:
        """Batch-inspect a set of opcodes at one operating point."""
        for op in opcodes:
            self.observe(ExecutionRecord(op, core, frequency, voltage))
        return self.report
