"""Multi-objective dominance machinery (NSGA-II building blocks).

Everything in this module operates on plain objective vectors —
sequences of floats to be **minimized** — optionally paired with a
non-negative *constraint violation* value.  The DSE layer maps SUIT's
three objectives (duration ratio, relative energy, negated security
margin) onto this representation; nothing here knows about genomes or
simulations, which keeps the algebra property-testable in isolation
(``tests/test_dse_properties.py``).

Constrained domination follows Deb's rules: a feasible point dominates
any infeasible one; between two infeasible points the smaller violation
dominates; between two feasible points ordinary Pareto dominance
applies.  With every violation at zero this degrades to the textbook
definition, so the unconstrained properties hold as a special case.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: Comparisons treat objective differences below this as ties, so the
#: front is stable against last-ulp float noise without hiding real
#: differences (simulation objectives differ at the 1e-3 level).
DOMINANCE_EPS = 0.0


def dominates(a: Sequence[float], b: Sequence[float],
              violation_a: float = 0.0, violation_b: float = 0.0) -> bool:
    """True when *a* constrained-dominates *b* (all objectives minimized).

    Args:
        a: objective vector of the candidate dominator.
        b: objective vector of the candidate dominated point.
        violation_a: non-negative constraint violation of *a* (0 = feasible).
        violation_b: non-negative constraint violation of *b*.
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    if violation_a < 0 or violation_b < 0:
        raise ValueError("constraint violations are non-negative")
    if violation_a == 0.0 and violation_b > 0.0:
        return True
    if violation_a > 0.0 and violation_b == 0.0:
        return False
    if violation_a > 0.0 and violation_b > 0.0:
        return violation_a < violation_b
    better_somewhere = False
    for x, y in zip(a, b):
        if x > y + DOMINANCE_EPS:
            return False
        if x < y - DOMINANCE_EPS:
            better_somewhere = True
    return better_somewhere


def non_dominated_sort(points: Sequence[Sequence[float]],
                       violations: Optional[Sequence[float]] = None
                       ) -> List[List[int]]:
    """Fast non-dominated sort (NSGA-II): indices grouped into fronts.

    Returns a list of fronts; front 0 is the Pareto-optimal set, front 1
    is optimal once front 0 is removed, and so on.  Indices within each
    front preserve input order, so the result is deterministic for a
    given input ordering (callers wanting order-independence sort the
    points by a canonical key first).
    """
    n = len(points)
    if violations is None:
        violations = [0.0] * n
    if len(violations) != n:
        raise ValueError("need one violation value per point")
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j], violations[i], violations[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i], violations[j], violations[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        nxt.sort()
        current = nxt
    return fronts


def pareto_front_indices(points: Sequence[Sequence[float]],
                         violations: Optional[Sequence[float]] = None
                         ) -> List[int]:
    """Indices of the non-dominated points (front 0), in input order."""
    if not points:
        return []
    return non_dominated_sort(points, violations)[0]


def crowding_distance(points: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance of each point within one front.

    Boundary points of every objective get ``inf`` (they must survive
    truncation); interior points accumulate the normalized span of
    their neighbours per objective.  A degenerate objective (all values
    equal) contributes nothing.
    """
    n = len(points)
    if n == 0:
        return []
    n_obj = len(points[0])
    distance = [0.0] * n
    for m in range(n_obj):
        order = sorted(range(n), key=lambda i: (points[i][m], i))
        lo, hi = points[order[0]][m], points[order[-1]][m]
        distance[order[0]] = float("inf")
        distance[order[-1]] = float("inf")
        span = hi - lo
        if span <= 0.0:
            continue
        for rank in range(1, n - 1):
            i = order[rank]
            if distance[i] == float("inf"):
                continue
            gap = points[order[rank + 1]][m] - points[order[rank - 1]][m]
            distance[i] += gap / span
    return distance


def _rectangle_union_area(rects: List[Tuple[float, float]]) -> float:
    """Area of the union of corner-anchored 2-D rectangles.

    Each ``(w, h)`` rectangle spans ``[0, w] x [0, h]``; the union of
    such rectangles is a staircase whose area one sweep computes after
    sorting by width.
    """
    best: List[Tuple[float, float]] = []
    for w, h in sorted(rects, key=lambda r: (-r[0], -r[1])):
        if not best or h > best[-1][1]:
            best.append((w, h))
    area = 0.0
    prev_h = 0.0
    for w, h in best:  # widest (shortest) stair first, climbing
        area += w * (h - prev_h)
        prev_h = h
    return area


def hypervolume(points: Sequence[Sequence[float]],
                reference: Sequence[float]) -> float:
    """Exact hypervolume dominated by *points* w.r.t. *reference*.

    All objectives are minimized and the reference point must be weakly
    worse than every point; points beyond the reference are clipped
    out.  Supports 1, 2 and 3 objectives (the DSE uses 3); the
    3-D case sweeps the third axis and accumulates 2-D union areas.
    """
    n_obj = len(reference)
    clipped = [tuple(p) for p in points
               if len(p) == n_obj and all(x <= r for x, r in
                                          zip(p, reference))]
    if not clipped:
        return 0.0
    front = [clipped[i] for i in pareto_front_indices(clipped)]
    if n_obj == 1:
        return reference[0] - min(p[0] for p in front)
    if n_obj == 2:
        area = 0.0
        prev_y = reference[1]
        for x, y in sorted(front):
            if y < prev_y:
                area += (reference[0] - x) * (prev_y - y)
                prev_y = y
        return area
    if n_obj == 3:
        # Sweep z from best to worst; between consecutive z levels the
        # dominated cross-section is a union of 2-D rectangles.
        volume = 0.0
        ordered = sorted(front, key=lambda p: p[2])
        levels = sorted({p[2] for p in ordered})
        levels.append(reference[2])
        active: List[Tuple[float, float]] = []
        idx = 0
        for level_i, z in enumerate(levels[:-1]):
            while idx < len(ordered) and ordered[idx][2] <= z:
                p = ordered[idx]
                active.append((reference[0] - p[0], reference[1] - p[1]))
                idx += 1
            dz = levels[level_i + 1] - z
            if dz > 0 and active:
                volume += _rectangle_union_area(active) * dz
        return volume
    raise ValueError(f"hypervolume supports 1-3 objectives, got {n_obj}")
