"""The evolutionary search loop: NSGA-II over the SUIT design space.

:class:`DseRunner` drives a (mu + lambda) NSGA-II: each generation
breeds ``population`` offspring by binary tournament on (front rank,
crowding distance), uniform crossover and per-gene grid mutation, then
survivor-selects the best ``population`` of parents + offspring by
non-dominated front and crowding.  Every random draw comes from a
per-generation stream seeded with
``derive_seed(spec.seed, "dse.gen:<g>")`` — sha256-based, so the whole
trajectory is a pure function of the spec (and independent of
``PYTHONHASHSEED``, pool composition and resume points).

Artifacts mirror :mod:`repro.campaigns`: an atomic ``dse.ckpt.json``
rewritten after every completed generation (resume is byte-identical —
the checkpoint stores populations and the simulation memo, and every
derived number is recomputed from those), a timestamp-free
``dse_report.json`` and a standalone HTML dashboard.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.dse import mcdm, pareto
from repro.dse.evaluate import LocalEvalBackend, build_record
from repro.dse.objectives import REFERENCE_POINT
from repro.dse.space import DseSpec, Genome, crossover, mutate, random_genome
from repro.obs.profiling import profiled
from repro.obs.registry import get_registry
from repro.runtime.seeding import derive_seed

#: Schema tags; bump on layout changes so stale artifacts fail loudly.
CKPT_SCHEMA = "repro.dse-checkpoint.v1"
REPORT_SCHEMA = "repro.dse-report.v1"

CKPT_NAME = "dse.ckpt.json"
REPORT_NAME = "dse_report.json"
HTML_NAME = "index.html"


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write *payload* via tmp-file + rename, so a kill mid-write never
    leaves a truncated artifact behind."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


class CheckpointMismatchError(RuntimeError):
    """``resume`` found a checkpoint written by a different search."""


def load_checkpoint_spec(out_dir: Path) -> DseSpec:
    """The search recorded in *out_dir*'s checkpoint — lets
    ``dse resume --out DIR`` continue without re-passing the spec."""
    path = Path(out_dir) / CKPT_NAME
    if not path.exists():
        raise FileNotFoundError(f"no DSE checkpoint at {path}")
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != CKPT_SCHEMA:
        raise CheckpointMismatchError(
            f"unknown checkpoint schema {payload.get('schema')!r} in {path}")
    return DseSpec.from_json_dict(payload["spec"])


def _genome_counter():
    return get_registry().counter(
        "dse_genomes_total",
        "DSE genome evaluations, by evaluation path.",
        label_names=("path",))


def _generation_counter():
    return get_registry().counter(
        "dse_generations_total",
        "DSE generations completed.")


class DseRunner:
    """Executes one design-space search.

    Args:
        spec: the search definition.
        out_dir: artifact directory (checkpoint, report, HTML).  None
            runs fully in memory (no checkpoint, no resume).
        jobs: worker processes for the local evaluation backend;
            ignored when *backend* is supplied.
        backend: evaluation backend; defaults to a
            :class:`~repro.dse.evaluate.LocalEvalBackend`.
    """

    def __init__(self, spec: DseSpec, out_dir: Optional[Path] = None,
                 jobs: int = 1, backend=None) -> None:
        """See class docstring."""
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.backend = backend if backend is not None \
            else LocalEvalBackend(spec, jobs=jobs)
        #: One entry per completed generation: the population's genome
        #: dicts in breeding order.
        self.populations: List[List[dict]] = []

    # -- checkpointing ---------------------------------------------------

    @property
    def ckpt_path(self) -> Optional[Path]:
        """The checkpoint location (None when running in memory)."""
        return self.out_dir / CKPT_NAME if self.out_dir else None

    def _load_checkpoint(self) -> None:
        path = self.ckpt_path
        if path is None or not path.exists():
            return
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != CKPT_SCHEMA:
            raise CheckpointMismatchError(
                f"unknown checkpoint schema {payload.get('schema')!r} "
                f"in {path}")
        if payload.get("spec_digest") != self.spec.digest():
            raise CheckpointMismatchError(
                f"checkpoint in {path} was written by a different search "
                f"(digest {payload.get('spec_digest')!r} != "
                f"{self.spec.digest()!r}); delete it or rerun with the "
                "original spec")
        self.populations = [list(generation)
                            for generation in payload.get("generations", [])]
        self.backend.sims.update(payload.get("sims", {}))

    def _save_checkpoint(self) -> None:
        path = self.ckpt_path
        if path is None:
            return
        _atomic_write_json(path, {
            "schema": CKPT_SCHEMA,
            "spec_digest": self.spec.digest(),
            "spec": self.spec.to_json_dict(),
            "generations": self.populations,
            "sims": {key: self.backend.sims[key]
                     for key in sorted(self.backend.sims)},
        })

    # -- evolutionary machinery ------------------------------------------

    def _rng_for(self, generation: int) -> np.random.Generator:
        """The generation's private random stream (sha256-derived)."""
        return np.random.default_rng(
            derive_seed(self.spec.seed, f"dse.gen:{generation}"))

    @staticmethod
    def _rank_and_crowd(records: List[dict]):
        """Front rank and crowding distance per record."""
        points = [r["objectives"] for r in records]
        violations = [r["violation_mv"] for r in records]
        fronts = pareto.non_dominated_sort(points, violations)
        rank = [0] * len(records)
        crowd = [0.0] * len(records)
        for front_i, front in enumerate(fronts):
            distances = pareto.crowding_distance([points[i] for i in front])
            for i, distance in zip(front, distances):
                rank[i] = front_i
                crowd[i] = distance
        return rank, crowd

    def _offspring(self, parents: List[Genome], records: List[dict],
                   rng: np.random.Generator) -> List[Genome]:
        """Breed one offspring population by binary tournament."""
        rank, crowd = self._rank_and_crowd(records)

        def tournament() -> Genome:
            i = int(rng.integers(len(parents)))
            j = int(rng.integers(len(parents)))
            # Lower rank wins; ties break on larger crowding, then on
            # the earlier index (deterministic).
            if (rank[i], -crowd[i], i) <= (rank[j], -crowd[j], j):
                return parents[i]
            return parents[j]

        children: List[Genome] = []
        while len(children) < self.spec.population:
            mother, father = tournament(), tournament()
            if rng.random() < self.spec.crossover_rate:
                child = crossover(mother, father, rng)
            else:
                child = mother
            children.append(mutate(child, self.spec, rng))
        return children

    def _survivors(self, genomes: List[Genome],
                   records: List[dict]) -> List[Genome]:
        """NSGA-II survivor selection: best ``population`` of *genomes*."""
        n_keep = self.spec.population
        points = [r["objectives"] for r in records]
        violations = [r["violation_mv"] for r in records]
        fronts = pareto.non_dominated_sort(points, violations)
        chosen: List[int] = []
        for front in fronts:
            if len(chosen) + len(front) <= n_keep:
                chosen.extend(front)
                continue
            distances = pareto.crowding_distance(
                [points[i] for i in front])
            # Most crowded-out last; ties break on index for determinism.
            ordered = sorted(range(len(front)),
                             key=lambda k: (-distances[k], front[k]))
            chosen.extend(front[k]
                          for k in ordered[:n_keep - len(chosen)])
            break
        return [genomes[i] for i in chosen]

    # -- execution -------------------------------------------------------

    def _evaluate(self, genomes: List[Genome]) -> List[dict]:
        """Backend evaluation plus per-genome path metrics."""
        before = dict(getattr(self.backend, "sims", {}))
        records = self.backend.evaluate(genomes)
        counter = _genome_counter()
        for record in records:
            path = record["path"] if record["sim_key"] not in before \
                else "memo"
            counter.inc(path=path)
        return records

    def run(self, resume: bool = False,
            stop_after_generations: Optional[int] = None) -> dict:
        """Execute every (remaining) generation; return the report dict.

        Args:
            resume: load ``dse.ckpt.json`` first and continue after its
                last completed generation.  Refuses a checkpoint from a
                different spec.
            stop_after_generations: stop once this many *new*
                generations completed (used by tests to simulate an
                interrupted search); the checkpoint stays on disk for a
                later resume.
        """
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load_checkpoint()
        completed_now = 0
        gen_counter = _generation_counter()
        while len(self.populations) < self.spec.generations:
            if (stop_after_generations is not None
                    and completed_now >= stop_after_generations):
                break
            g = len(self.populations)
            with profiled("dse.generation", "dse",
                          args={"generation": g,
                                "population": self.spec.population,
                                "search": self.spec.name}):
                if g == 0:
                    rng = self._rng_for(0)
                    population = [random_genome(self.spec, rng)
                                  for _ in range(self.spec.population)]
                    self._evaluate(population)
                else:
                    parents = [Genome.from_json_dict(entry)
                               for entry in self.populations[g - 1]]
                    parent_records = self._evaluate(parents)
                    rng = self._rng_for(g)
                    children = self._offspring(parents, parent_records,
                                               rng)
                    child_records = self._evaluate(children)
                    combined = parents + children
                    population = self._survivors(
                        combined, parent_records + child_records)
            self.populations.append(
                [genome.to_json_dict() for genome in population])
            gen_counter.inc()
            completed_now += 1
            self._save_checkpoint()
        return self.build_report()

    # -- reporting -------------------------------------------------------

    def build_report(self) -> dict:
        """The deterministic search report (no timestamps, no paths: a
        pure function of spec + populations + simulation memo)."""
        from repro.dse.objectives import SimJob

        def record_of(genome: Genome) -> dict:
            sim = self.backend.sims[SimJob.from_genome(self.spec,
                                                       genome).key()]
            return build_record(self.spec, self.backend.cpu, genome, sim)

        generations = []
        seen: Dict[str, dict] = {}
        for g, entries in enumerate(self.populations):
            records = [record_of(Genome.from_json_dict(e))
                       for e in entries]
            for record in records:
                seen.setdefault(record["key"], record)
            points = [r["objectives"] for r in records]
            violations = [r["violation_mv"] for r in records]
            front = pareto.pareto_front_indices(points, violations)
            feasible = [p for p, v in zip(points, violations) if v == 0.0]
            generations.append({
                "index": g,
                "n_evaluated": len(records),
                "n_feasible": sum(1 for v in violations if v == 0.0),
                "front_size": len(front),
                "hypervolume": pareto.hypervolume(feasible,
                                                  REFERENCE_POINT),
            })

        # The global frontier over every distinct genome ever evaluated,
        # in canonical-key order so the front is permutation-invariant.
        keys = sorted(seen)
        all_records = [seen[key] for key in keys]
        points = [r["objectives"] for r in all_records]
        violations = [r["violation_mv"] for r in all_records]
        front_indices = pareto.pareto_front_indices(points, violations)
        front = [all_records[i] for i in front_indices]

        ranking, recommendation = self._rank_front(front)
        return {
            "schema": REPORT_SCHEMA,
            "search": self.spec.name,
            "spec": self.spec.to_json_dict(),
            "spec_digest": self.spec.digest(),
            "n_generations": len(self.populations),
            "generations_requested": self.spec.generations,
            "n_distinct_genomes": len(all_records),
            "n_unique_sims": len(self.backend.sims),
            "generations": generations,
            "front": front,
            "front_violations": sum(1 for r in front
                                    if r["violation_mv"] > 0.0),
            "ranking": ranking,
            "recommendation": recommendation,
            "all_evaluated": all_records,
        }

    def _rank_front(self, front: List[dict]):
        """MCDM ranking of the frontier and the recommended point."""
        if not front:
            return [], None
        matrix = [r["objectives"] for r in front]
        weights = list(self.spec.weights)
        ws_scores = mcdm.weighted_sum_scores(matrix, weights)
        topsis_scores = mcdm.topsis_closeness(matrix, weights)
        ws_ranks = mcdm.rank_rows(ws_scores)
        topsis_ranks = mcdm.rank_rows(topsis_scores, descending=True)
        ranking = []
        for i, record in enumerate(front):
            ranking.append({
                "key": record["key"],
                "genome": record["genome"],
                "objectives": record["objectives"],
                "weighted_sum": ws_scores[i],
                "weighted_sum_rank": ws_ranks[i],
                "topsis": topsis_scores[i],
                "topsis_rank": topsis_ranks[i],
            })
        best = min(range(len(front)),
                   key=lambda i: (topsis_ranks[i], ws_ranks[i],
                                  front[i]["key"]))
        record = front[best]
        recommendation = {
            "method": "topsis",
            "genome": record["genome"],
            "key": record["key"],
            "describe": Genome.from_json_dict(record["genome"]).describe(),
            "objectives": {
                "duration_ratio": record["duration_ratio"],
                "energy_ratio": record["energy_ratio"],
                "security_headroom_mv": record["headroom_mv"],
            },
            "offset_mv": record["genome"]["offset_mv"],
            "perf_change_pct": record["perf_change_pct"],
            "power_change_pct": record["power_change_pct"],
            "efficiency_change_pct": record["efficiency_change_pct"],
            "violation_mv": record["violation_mv"],
            "topsis": topsis_scores[best],
            "weighted_sum": ws_scores[best],
        }
        return ranking, recommendation

    def write_outputs(self, html: bool = True) -> dict:
        """Write ``dse_report.json`` (and the HTML dashboard) into the
        artifact directory; returns the report dict."""
        if self.out_dir is None:
            raise ValueError("DseRunner needs an out_dir to write outputs")
        report = self.build_report()
        _atomic_write_json(self.out_dir / REPORT_NAME, report)
        if html:
            from repro.dse.report import ReportBuilder

            (self.out_dir / HTML_NAME).write_text(
                ReportBuilder(report).render(), encoding="utf-8")
        return report
