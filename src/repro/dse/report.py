"""Static-HTML DSE dashboards (stdlib templating only).

:class:`ReportBuilder` turns a search report dict
(:meth:`repro.dse.runner.DseRunner.build_report`) into one
self-contained ``index.html``: no server, no JavaScript, no external
assets — inline CSS plus inline SVG charts, so the file renders from
``file://`` and archives losslessly next to ``dse_report.json``.

Charts:

* **Pareto scatter** — every evaluated genome in (duration ratio,
  energy ratio) space, frontier members highlighted and the
  recommended operating point starred;
* **hypervolume trend** — dominated hypervolume per generation (is the
  search still finding better trade-offs?);
* **recommended-point card** and the ranked-frontier drill-down table.

Colors are the Okabe-Ito colorblind-safe palette.
"""

from __future__ import annotations

import html
from typing import List, Sequence, Tuple

#: Okabe-Ito assignments for the scatter classes.
POINT_COLORS = {
    "dominated": "#999999",
    "front": "#0072B2",
    "violating": "#D55E00",
    "recommended": "#E69F00",
}

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 68rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left; }
th { background: #f4f4f4; }
tr.recommended td { background: #fdf3e0; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; border-radius: 2px; }
.card { border: 1px solid #E69F00; border-radius: 6px; padding: 0.8rem
        1rem; background: #fdf8ef; margin: 1rem 0; }
.card b { font-size: 1.05rem; }
.meta { color: #555; font-size: 13px; }
code { background: #f4f4f4; padding: 1px 4px; border-radius: 3px; }
svg { background: #fcfcfc; border: 1px solid #eee; }
""".strip()


def _fmt(value: float) -> str:
    return f"{value:.4g}"


class ReportBuilder:
    """Renders one DSE report dict to a standalone HTML page."""

    def __init__(self, report: dict) -> None:
        """Wrap *report* (schema-checked)."""
        if report.get("schema") != "repro.dse-report.v1":
            raise ValueError(
                f"unsupported report schema {report.get('schema')!r}")
        self.report = report

    # -- SVG helpers -----------------------------------------------------

    @staticmethod
    def _axes(width: int, height: int, pad: int,
              x_labels: Sequence[str], y_labels: Sequence[str]) -> List[str]:
        """Axis lines plus tick labels for one chart."""
        parts = [
            f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
            f'y2="{height - pad}" stroke="#333" stroke-width="1" />',
            f'<line x1="{pad}" y1="{pad}" x2="{pad}" '
            f'y2="{height - pad}" stroke="#333" stroke-width="1" />',
        ]
        span_x = width - 2 * pad
        for i, label in enumerate(x_labels):
            x = pad + (span_x * i / max(1, len(x_labels) - 1))
            parts.append(
                f'<text x="{x:.1f}" y="{height - pad + 16}" '
                f'text-anchor="middle" font-size="11">'
                f'{html.escape(label)}</text>')
        span_y = height - 2 * pad
        for i, label in enumerate(y_labels):
            y = height - pad - (span_y * i / max(1, len(y_labels) - 1))
            parts.append(
                f'<text x="{pad - 6}" y="{y:.1f}" text-anchor="end" '
                f'dominant-baseline="middle" font-size="11">'
                f'{html.escape(label)}</text>')
        return parts

    def _scatter(self) -> str:
        """Every evaluated genome in (duration, energy) space."""
        records = self.report["all_evaluated"]
        if not records:
            return '<p class="meta">no genomes evaluated yet.</p>'
        front_keys = {r["key"] for r in self.report["front"]}
        recommended = self.report.get("recommendation") or {}
        rec_key = recommended.get("key")
        width, height, pad = 640, 360, 52
        xs = [r["duration_ratio"] for r in records]
        ys = [r["energy_ratio"] for r in records]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0

        def place(r: dict) -> Tuple[float, float]:
            x = pad + (width - 2 * pad) * \
                (r["duration_ratio"] - x_lo) / x_span
            y = height - pad - (height - 2 * pad) * \
                (r["energy_ratio"] - y_lo) / y_span
            return x, y

        parts = [
            f'<svg role="img" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" '
            'xmlns="http://www.w3.org/2000/svg">',
            '<title>Pareto scatter: duration vs energy</title>',
        ]
        parts += self._axes(
            width, height, pad,
            [_fmt(x_lo), _fmt((x_lo + x_hi) / 2), _fmt(x_hi)],
            [_fmt(y_lo), _fmt((y_lo + y_hi) / 2), _fmt(y_hi)])
        parts.append(
            f'<text x="{width / 2:.0f}" y="{height - 8}" '
            'text-anchor="middle" font-size="11">duration ratio '
            '(lower = faster)</text>')
        parts.append(
            f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" '
            f'font-size="11" transform="rotate(-90 14 {height / 2:.0f})">'
            'energy ratio (lower = leaner)</text>')
        starred = None
        for r in records:
            x, y = place(r)
            title = (f'{html.escape(Genome_describe(r["genome"]))} — '
                     f'headroom {_fmt(r["headroom_mv"])} mV')
            if r["key"] == rec_key:
                starred = (x, y, title)
                continue
            if r["violation_mv"] > 0.0:
                color, radius = POINT_COLORS["violating"], 3.0
            elif r["key"] in front_keys:
                color, radius = POINT_COLORS["front"], 4.0
            else:
                color, radius = POINT_COLORS["dominated"], 2.5
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
                f'fill="{color}" fill-opacity="0.85">'
                f'<title>{title}</title></circle>')
        if starred is not None:
            x, y, title = starred
            parts.append(
                f'<path d="{_star_path(x, y, 8.0)}" '
                f'fill="{POINT_COLORS["recommended"]}" stroke="#7a5200" '
                f'stroke-width="1"><title>recommended: {title}'
                '</title></path>')
        parts.append("</svg>")
        legend = " ".join(
            f'<span><span class="swatch" style="background:'
            f'{POINT_COLORS[k]}"></span>{label}</span>'
            for k, label in (("front", "Pareto front"),
                             ("dominated", "dominated"),
                             ("violating", "security violation"),
                             ("recommended", "recommended")))
        return "\n".join(parts) + f'\n<p class="meta">{legend}</p>'

    def _hypervolume_chart(self) -> str:
        """Dominated hypervolume per generation."""
        rows = self.report["generations"]
        if not rows:
            return ""
        width, height, pad = 640, 240, 52
        values = [row["hypervolume"] for row in rows]
        hi = max(values) or 1.0
        parts = [
            f'<svg role="img" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" '
            'xmlns="http://www.w3.org/2000/svg">',
            '<title>Hypervolume per generation</title>',
        ]
        parts += self._axes(
            width, height, pad,
            [str(row["index"]) for row in rows],
            ["0", _fmt(hi / 2), _fmt(hi)])
        parts.append(
            f'<text x="{width / 2:.0f}" y="{height - 8}" '
            'text-anchor="middle" font-size="11">generation</text>')
        span_x, span_y = width - 2 * pad, height - 2 * pad

        def point(i: int, value: float) -> Tuple[float, float]:
            x = pad + span_x * i / max(1, len(rows) - 1)
            y = height - pad - span_y * (value / hi)
            return x, y

        coords = [point(i, v) for i, v in enumerate(values)]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        parts.append(
            f'<polyline points="{path}" fill="none" '
            f'stroke="{POINT_COLORS["front"]}" stroke-width="2" />')
        for x, y in coords:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
                f'fill="{POINT_COLORS["front"]}" />')
        parts.append("</svg>")
        return "\n".join(parts)

    # -- cards and tables ------------------------------------------------

    def _recommendation_card(self) -> str:
        """The recommended operating point, front and center."""
        rec = self.report.get("recommendation")
        if not rec:
            return ('<p class="meta">no recommendation — the search has '
                    'not completed a generation yet.</p>')
        objectives = rec["objectives"]
        return f"""<div class="card">
<b>{html.escape(rec["describe"])}</b>
<p class="meta">TOPSIS closeness {_fmt(rec["topsis"])} ·
weighted-sum score {_fmt(rec["weighted_sum"])}</p>
<table><tbody>
<tr><td>efficient-curve offset</td><td>{rec["offset_mv"]:g} mV</td></tr>
<tr><td>performance change</td><td>{_fmt(rec["perf_change_pct"])}%</td></tr>
<tr><td>power change</td><td>{_fmt(rec["power_change_pct"])}%</td></tr>
<tr><td>efficiency change</td>
<td>{_fmt(rec["efficiency_change_pct"])}%</td></tr>
<tr><td>duration ratio</td>
<td>{_fmt(objectives["duration_ratio"])}</td></tr>
<tr><td>energy ratio</td><td>{_fmt(objectives["energy_ratio"])}</td></tr>
<tr><td>security headroom</td>
<td>{_fmt(objectives["security_headroom_mv"])} mV</td></tr>
</tbody></table>
</div>"""

    def _generation_table(self) -> str:
        rows = "".join(
            f'<tr><td>{row["index"]}</td><td>{row["n_evaluated"]}</td>'
            f'<td>{row["n_feasible"]}</td><td>{row["front_size"]}</td>'
            f'<td>{_fmt(row["hypervolume"])}</td></tr>'
            for row in self.report["generations"])
        return ('<table><thead><tr><th>generation</th><th>evaluated</th>'
                '<th>feasible</th><th>front size</th><th>hypervolume</th>'
                f'</tr></thead><tbody>{rows}</tbody></table>')

    def _front_table(self) -> str:
        rec = self.report.get("recommendation") or {}
        rec_key = rec.get("key")
        by_key = {r["key"]: r for r in self.report["front"]}
        rows = []
        ordered = sorted(self.report["ranking"],
                         key=lambda r: r["topsis_rank"])
        for rank_row in ordered:
            record = by_key[rank_row["key"]]
            css = ' class="recommended"' if rank_row["key"] == rec_key \
                else ""
            rows.append(
                f'<tr{css}>'
                f'<td>{rank_row["topsis_rank"]}</td>'
                f'<td><code>{html.escape(Genome_describe(record["genome"]))}'
                '</code></td>'
                f'<td>{_fmt(record["duration_ratio"])}</td>'
                f'<td>{_fmt(record["energy_ratio"])}</td>'
                f'<td>{_fmt(record["headroom_mv"])}</td>'
                f'<td>{_fmt(rank_row["topsis"])}</td>'
                f'<td>{rank_row["weighted_sum_rank"]}</td></tr>')
        return ('<table><thead><tr><th>rank</th><th>operating point</th>'
                '<th>duration</th><th>energy</th><th>headroom (mV)</th>'
                '<th>TOPSIS</th><th>WS rank</th></tr></thead>'
                f'<tbody>{"".join(rows)}</tbody></table>')

    # -- page ------------------------------------------------------------

    def render(self) -> str:
        """The full standalone HTML page."""
        r = self.report
        spec = r["spec"]
        name = html.escape(r["search"])
        incomplete = ""
        if r["n_generations"] < r["generations_requested"]:
            incomplete = (
                f'<p class="meta"><strong>{r["n_generations"]}/'
                f'{r["generations_requested"]} generations complete'
                '</strong> — resume the search to finish.</p>')
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8" />
<title>DSE report: {name}</title>
<style>
{_CSS}
</style>
</head>
<body>
<h1>Design-space exploration: {name}</h1>
<p class="meta">workload <code>{html.escape(spec["workload"])}</code> ·
CPU <code>{html.escape(spec["cpu"])}</code> ·
seed {spec["seed"]} ·
{r["n_generations"]} generations × {spec["population"]} genomes ·
{r["n_distinct_genomes"]} distinct genomes /
{r["n_unique_sims"]} unique simulations ·
spec digest <code>{html.escape(r["spec_digest"][:12])}</code></p>
{incomplete}
<h2>Recommended operating point</h2>
{self._recommendation_card()}
<h2>Pareto scatter</h2>
{self._scatter()}
<h2>Hypervolume trend</h2>
{self._hypervolume_chart()}
<h2>Per-generation progress</h2>
{self._generation_table()}
<h2>Ranked frontier</h2>
{self._front_table()}
</body>
</html>
"""


def _star_path(cx: float, cy: float, radius: float) -> str:
    """SVG path of a five-pointed star centered on (*cx*, *cy*)."""
    import math

    points = []
    for i in range(10):
        r = radius if i % 2 == 0 else radius * 0.45
        angle = -math.pi / 2 + i * math.pi / 5
        points.append((cx + r * math.cos(angle), cy + r * math.sin(angle)))
    verbs = [f"M {points[0][0]:.1f} {points[0][1]:.1f}"]
    verbs += [f"L {x:.1f} {y:.1f}" for x, y in points[1:]]
    return " ".join(verbs) + " Z"


def Genome_describe(genome_dict: dict) -> str:
    """Compact operating-point label from a genome's JSON dict."""
    from repro.dse.space import Genome

    return Genome.from_json_dict(genome_dict).describe()
