"""Genome evaluation: batched, deduplicated, optionally distributed.

One generation of genomes becomes a handful of ``simulate_sweep``
calls: genomes canonicalize to :class:`~repro.dse.objectives.SimJob`
identities, unique jobs group by deadline (one
:class:`~repro.core.params.StrategyParams` per sweep call) and each
group replays the shared compiled trace episode through
:mod:`repro.core.batchsim` — never one scalar run per genome.  Jobs
seen in an earlier generation are memo hits; an optional on-disk
:class:`~repro.runtime.cache.ResultCache` extends the memo across
processes and searches, keyed by
:func:`~repro.runtime.cache.domain_cache_key`.

Two backends share that contract:

* :class:`LocalEvalBackend` — in-process, with optional ``--jobs``
  process-pool fan-out over deadline groups.  Every simulation payload
  is a pure function of the job identity and the search seed, so
  serial and pooled runs are byte-identical.
* :class:`ServiceEvalBackend` — ships each missing job as one
  :class:`~repro.service.request.SimRequest` (carrying the new
  ``deadline_us`` / ``imul_extra_cycles`` fields) to a running
  simulation service or fleet gateway; the worker tier reproduces the
  local semantics bit for bit.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.dse.objectives import (SimJob, objective_vector,
                                  security_headroom_mv, violation_mv)
from repro.dse.space import DseSpec, Genome
from repro.hardware.models import ALL_CPU_FACTORIES
from repro.runtime.cache import ResultCache, domain_cache_key, package_digest

#: Cache-key domain for DSE simulation payloads.
CACHE_DOMAIN = "repro.dse.sim.v1"

#: Simulation-payload fields persisted in checkpoints and caches.
_SIM_FIELDS = ("duration_s", "baseline_duration_s", "energy_rel",
               "n_exceptions", "n_switches", "n_timer_fires", "path")


def _sim_payload(result, path: str) -> dict:
    """Reduce a :class:`~repro.core.metrics.SimResult` to the stable
    payload stored in checkpoints, memos and caches."""
    return {
        "duration_s": float(result.duration_s),
        "baseline_duration_s": float(result.baseline_duration_s),
        "energy_rel": float(result.energy_rel),
        "n_exceptions": int(result.n_exceptions),
        "n_switches": int(result.n_switches),
        "n_timer_fires": int(result.n_timer_fires),
        "path": path,
    }


def evaluate_job_group(spec: DseSpec, jobs: Sequence[SimJob]) -> Dict[str, dict]:
    """Simulate one same-deadline job group through ``simulate_sweep``.

    All jobs must share ``deadline_us`` (one parameter set per sweep
    call).  Jobs become :class:`~repro.core.batchsim.SweepConfig`
    entries over the shared trace — ``harden_imul=False`` plus an
    explicit post-applied tax, so the IMUL-latency gene is honoured for
    any depth while ``extra_cycles == 1`` stays bit-equal to the
    simulator's built-in hardening.  Returns payloads keyed by job key.
    """
    from repro.core.batchsim import SweepConfig, simulate_sweep
    from repro.core.metrics import apply_imul_tax
    from repro.core.params import default_params_for
    from repro.workloads import resolve_profile
    from repro.workloads.tracecache import cached_trace

    if not jobs:
        return {}
    deadlines = {job.deadline_us for job in jobs}
    if len(deadlines) != 1:
        raise ValueError(f"a job group shares one deadline; got "
                         f"{sorted(deadlines)}")
    cpu = ALL_CPU_FACTORIES[spec.cpu]()
    profile = resolve_profile(spec.workload)
    trace = cached_trace(profile, spec.seed)
    params = replace(default_params_for(cpu.vendor),
                     deadline_s=jobs[0].deadline_us * 1e-6)
    configs = [SweepConfig(strategy=job.strategy,
                           voltage_offset=job.voltage_offset,
                           seed=spec.seed, harden_imul=False)
               for job in jobs]
    results = simulate_sweep(cpu, profile, trace, configs,
                             params=params, n_cores=spec.n_cores)
    payloads: Dict[str, dict] = {}
    for job, result in zip(jobs, results):
        if job.strategy == "e":
            # The closed-form estimate already carries the paper's
            # +1-cycle hardening (and canonical 'e' genomes pin the
            # latency gene to exactly that).
            path = "estimate"
        else:
            path = "vector"
            if job.imul_extra_cycles > 0:
                result = apply_imul_tax(result, profile,
                                        job.imul_extra_cycles)
        payloads[job.key()] = _sim_payload(result, path)
    return payloads


def _pool_eval_group(spec_json: str, jobs_json: str) -> Dict[str, dict]:
    """Process-pool entry point: rebuild spec and jobs from JSON (so
    the task payload is picklable and version-stable) and evaluate."""
    spec = DseSpec.from_json_dict(json.loads(spec_json))
    jobs = [SimJob.from_json_dict(j) for j in json.loads(jobs_json)]
    return evaluate_job_group(spec, jobs)


def build_record(spec: DseSpec, cpu, genome: Genome, sim: dict) -> dict:
    """The full evaluation record of one genome.

    A pure function of (spec, genome, simulation payload): resumed,
    pooled and serial runs all rebuild identical records from the same
    inputs, which is what makes ``dse_report.json`` byte-stable.
    """
    canon = genome.canonical()
    headroom = security_headroom_mv(cpu, canon, n_cores=spec.n_cores)
    objectives = objective_vector(sim, headroom)
    duration_ratio, energy_ratio, _ = objectives
    power_ratio = sim["energy_rel"] / sim["duration_s"]
    return {
        "genome": canon.to_json_dict(),
        "key": genome.canonical_key(),
        "sim_key": SimJob.from_genome(spec, genome).key(),
        "objectives": list(objectives),
        "duration_ratio": duration_ratio,
        "energy_ratio": energy_ratio,
        "headroom_mv": headroom,
        "violation_mv": violation_mv(headroom, spec.security_floor_mv),
        "perf_change_pct": (1.0 / duration_ratio - 1.0) * 100.0,
        "power_change_pct": (power_ratio - 1.0) * 100.0,
        "efficiency_change_pct":
            (1.0 / (duration_ratio * power_ratio) - 1.0) * 100.0,
        "n_exceptions": sim["n_exceptions"],
        "path": sim["path"],
    }


class LocalEvalBackend:
    """Evaluates genomes in-process (optionally over a process pool).

    Args:
        spec: the search being evaluated.
        jobs: worker processes for deadline groups; 1 runs inline.
        cache: optional on-disk result cache consulted (and filled)
            per simulation job.

    Attributes:
        sims: every simulation payload computed so far, keyed by job
            key — the runner persists this table into ``dse.ckpt.json``
            and re-seeds it on resume.
        memo_hits: job lookups answered from :attr:`sims`.
        cache_hits: job lookups answered from the on-disk cache.
    """

    def __init__(self, spec: DseSpec, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        """See class docstring."""
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.jobs = jobs
        self.cache = cache
        self.cpu = ALL_CPU_FACTORIES[spec.cpu]()
        self.sims: Dict[str, dict] = {}
        self.memo_hits = 0
        self.cache_hits = 0

    def _cache_key(self, job: SimJob) -> str:
        """On-disk cache key of *job* under this search's trace seed."""
        return domain_cache_key(
            domain=CACHE_DOMAIN,
            payload={"job": job.to_json_dict(), "seed": self.spec.seed},
            package_digest=package_digest())

    def _missing_groups(self, genomes: Sequence[Genome]
                        ) -> List[List[SimJob]]:
        """Unique un-memoized jobs, grouped by deadline, sorted stably."""
        unique: Dict[str, SimJob] = {}
        for genome in genomes:
            job = SimJob.from_genome(self.spec, genome)
            key = job.key()
            if key in self.sims:
                self.memo_hits += 1
                continue
            if key in unique:
                continue
            if self.cache is not None:
                hit = self.cache.get(self._cache_key(job))
                if hit is not None and all(f in hit for f in _SIM_FIELDS):
                    self.sims[key] = {f: hit[f] for f in _SIM_FIELDS}
                    self.cache_hits += 1
                    continue
            unique[key] = job
        groups: Dict[float, List[SimJob]] = {}
        for key in sorted(unique):
            job = unique[key]
            groups.setdefault(job.deadline_us, []).append(job)
        return [groups[deadline] for deadline in sorted(groups)]

    def evaluate(self, genomes: Sequence[Genome]) -> List[dict]:
        """Evaluation records for *genomes*, in input order."""
        groups = self._missing_groups(genomes)
        if self.jobs > 1 and len(groups) > 1:
            spec_json = json.dumps(self.spec.to_json_dict())
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(
                        _pool_eval_group, spec_json,
                        json.dumps([j.to_json_dict() for j in group]))
                    for group in groups]
                for future in futures:
                    self.sims.update(future.result())
        else:
            for group in groups:
                self.sims.update(evaluate_job_group(self.spec, group))
        if self.cache is not None:
            for group in groups:
                for job in group:
                    self.cache.put(self._cache_key(job),
                                   self.sims[job.key()])
        return [build_record(self.spec, self.cpu, genome,
                             self.sims[SimJob.from_genome(self.spec,
                                                          genome).key()])
                for genome in genomes]


class ServiceEvalBackend:
    """Evaluates genomes through a running simulation service or fleet.

    Each missing job becomes one :class:`~repro.service.request.SimRequest`
    carrying the search's seed plus the job's ``deadline_us`` and
    ``imul_extra_cycles``; the worker tier groups same-trace requests
    into vectorized sweeps on its side, so a generation still batches.

    Args:
        spec: the search being evaluated.
        host: service or gateway host.
        port: service or gateway port.
        timeout_s: overall bound per generation exchange.
    """

    def __init__(self, spec: DseSpec, host: str = "127.0.0.1",
                 port: int = 8642,
                 timeout_s: Optional[float] = None) -> None:
        """See class docstring."""
        self.spec = spec
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.cpu = ALL_CPU_FACTORIES[spec.cpu]()
        self.sims: Dict[str, dict] = {}
        self.memo_hits = 0
        self.cache_hits = 0

    def _request_for(self, job: SimJob):
        """The wire request evaluating *job*."""
        from repro.service.request import SimRequest

        return SimRequest(
            cpu=job.cpu, workload=job.workload, strategy=job.strategy,
            voltage_offset=job.voltage_offset, seed=self.spec.seed,
            n_cores=job.n_cores, deadline_us=job.deadline_us,
            imul_extra_cycles=job.imul_extra_cycles)

    def evaluate(self, genomes: Sequence[Genome]) -> List[dict]:
        """Evaluation records for *genomes*, in input order.

        Raises:
            RuntimeError: when the service fails any request — a DSE
                with silently missing evaluations would quietly explore
                a different space.
        """
        from repro.service.client import request_simulations

        unique: Dict[str, SimJob] = {}
        for genome in genomes:
            job = SimJob.from_genome(self.spec, genome)
            key = job.key()
            if key in self.sims:
                self.memo_hits += 1
            elif key not in unique:
                unique[key] = job
        jobs = [unique[key] for key in sorted(unique)]
        if jobs:
            responses = request_simulations(
                [self._request_for(job) for job in jobs],
                host=self.host, port=self.port, timeout_s=self.timeout_s)
            for job, response in zip(jobs, responses):
                if not response.ok or not isinstance(response.payload, dict):
                    raise RuntimeError(
                        f"service failed job {job.key()[:12]} "
                        f"({job.strategy}@{job.offset_mv:g}mV): "
                        f"{response.status}: {response.error}")
                payload = dict(response.payload)
                payload["path"] = "service"
                self.sims[job.key()] = {f: payload[f] for f in _SIM_FIELDS}
        return [build_record(self.spec, self.cpu, genome,
                             self.sims[SimJob.from_genome(self.spec,
                                                          genome).key()])
                for genome in genomes]
