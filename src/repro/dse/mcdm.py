"""Multi-criteria decision making over a Pareto frontier.

A Pareto front answers "what is achievable"; it does not answer "which
point do I deploy".  This module ranks frontier members into a single
recommended operating point two classic ways (DAVOS-style decision
support):

* **weighted sum** — min-max normalize each objective column to
  ``[0, 1]`` and score each row by the weighted mean of its normalized
  (minimized) objectives; lowest score wins.
* **TOPSIS** — on the same normalized matrix, measure each row's
  weighted Euclidean distance to the ideal (all zeros) and anti-ideal
  (all ones) corner and rank by relative closeness
  ``d- / (d+ + d-)``; highest closeness wins.

Both methods normalize with **min-max scaling**, which is invariant
under any positive affine rescaling of an objective column (volts vs
millivolts, ratios vs percentages) — the rank-stability property pinned
by ``tests/test_dse_properties.py``.  Ties break by row index, so
callers pass rows in canonical (sorted-key) order for deterministic
output.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def minmax_normalize(matrix: Sequence[Sequence[float]]) -> List[List[float]]:
    """Min-max normalize each column of *matrix* to ``[0, 1]``.

    A degenerate column (every value equal) maps to all zeros: the
    criterion distinguishes nothing, so it contributes nothing.
    """
    if not matrix:
        return []
    n_obj = len(matrix[0])
    if any(len(row) != n_obj for row in matrix):
        raise ValueError("rows must share one objective count")
    lows = [min(row[m] for row in matrix) for m in range(n_obj)]
    highs = [max(row[m] for row in matrix) for m in range(n_obj)]
    normalized: List[List[float]] = []
    for row in matrix:
        out = []
        for m in range(n_obj):
            span = highs[m] - lows[m]
            out.append((row[m] - lows[m]) / span if span > 0.0 else 0.0)
        normalized.append(out)
    return normalized


def _check_weights(weights: Sequence[float], n_obj: int) -> List[float]:
    """Validate and L1-normalize a weight vector."""
    if len(weights) != n_obj:
        raise ValueError(f"need {n_obj} weights, got {len(weights)}")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must not all be zero")
    return [w / total for w in weights]


def weighted_sum_scores(matrix: Sequence[Sequence[float]],
                        weights: Sequence[float]) -> List[float]:
    """Weighted-sum score per row (lower is better; minimized inputs)."""
    if not matrix:
        return []
    w = _check_weights(weights, len(matrix[0]))
    return [sum(wm * x for wm, x in zip(w, row))
            for row in minmax_normalize(matrix)]


def topsis_closeness(matrix: Sequence[Sequence[float]],
                     weights: Sequence[float]) -> List[float]:
    """TOPSIS relative closeness per row (higher is better).

    On the min-max normalized matrix the ideal point is the zero vector
    and the anti-ideal the all-ones vector; both distances use weighted
    Euclidean geometry.  A row equal to the ideal *and* the anti-ideal
    (possible only when every column is degenerate) scores 0.5.
    """
    if not matrix:
        return []
    w = _check_weights(weights, len(matrix[0]))
    closeness: List[float] = []
    for row in minmax_normalize(matrix):
        d_ideal = math.sqrt(sum((wm * x) ** 2 for wm, x in zip(w, row)))
        d_anti = math.sqrt(sum((wm * (1.0 - x)) ** 2
                               for wm, x in zip(w, row)))
        total = d_ideal + d_anti
        closeness.append(d_anti / total if total > 0.0 else 0.5)
    return closeness


def rank_rows(scores: Sequence[float], descending: bool = False) -> List[int]:
    """Rank (0 = best) per row from per-row scores.

    Args:
        scores: one score per row.
        descending: ``True`` when a higher score is better (TOPSIS).

    Ties resolve toward the earlier row, so ranks are a permutation and
    deterministic for a fixed row order.
    """
    order = sorted(range(len(scores)),
                   key=lambda i: (-scores[i] if descending else scores[i], i))
    ranks = [0] * len(scores)
    for rank, i in enumerate(order):
        ranks[i] = rank
    return ranks
