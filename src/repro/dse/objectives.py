"""Mapping genomes onto the DSE's three minimized objectives.

Performance and energy come from simulation: the duration ratio and
relative energy of one :class:`~repro.core.metrics.SimResult`.  The
security margin is analytic: at a given process-variation corner and
IMUL pipeline depth, the *kept* instruction set (everything SUIT does
not trap — the non-faultable mass plus the hardened IMUL) has a most
fragile member whose maximum safe curve offset bounds how deep the
efficient curve may sit.  The **headroom** is the distance (mV) between
the genome's offset and that bound; a feasible operating point keeps at
least ``security_floor_mv`` of headroom, anything less is a constraint
violation that Deb-dominates it off the frontier.

Two genomes differing only in their *corner* share one simulation: the
corner shifts the analytic margin, never the simulated timeline.
:class:`SimJob` captures exactly the simulation-identity genes, so the
evaluator deduplicates on its sha256 key (no ``hash()``, no dict-order
dependence — the ``PYTHONHASHSEED`` regression test holds the whole
path to that discipline).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dse.space import (CORNER_SIGMA_SHIFTS, DseSpec, Genome,
                             IMUL_BASE_LATENCY)
from repro.faults.model import FaultModel
from repro.hardware.cpu import CpuModel
from repro.isa.faultable import FAULTABLE_OPCODES
from repro.isa.opcodes import Opcode

#: Frequencies (Hz) the kept-set audit checks in addition to the CPU's
#: nominal frequency — undervolt headroom shrinks toward low clocks on
#: the efficient curve, so the audit covers the operating range.
AUDIT_FREQUENCIES: Tuple[float, ...] = (2.0e9, 3.0e9)

#: Hypervolume reference point over (duration ratio, energy ratio,
#: negated headroom in volts): anything slower/hungrier than 2x
#: baseline or with negative headroom contributes no volume.
REFERENCE_POINT: Tuple[float, float, float] = (2.0, 2.0, 0.0)

#: Identity domain for simulation jobs; bump on layout changes.
_JOB_DOMAIN = "repro.dse.sim.v1"

#: Memo of the kept-set worst safe offset per
#: ``(cpu, corner, imul_latency, n_cores)`` — the audit scans every
#: opcode x core x frequency, so computing it once per corner matters.
_WORST_OFFSET_MEMO: Dict[Tuple[str, str, int, int], float] = {}


def kept_opcodes() -> Tuple[Opcode, ...]:
    """The instruction classes SUIT leaves enabled on the efficient
    curve: everything outside the trap set, plus IMUL (hardened rather
    than trapped, section 4.2).  Sorted by name for deterministic
    iteration."""
    kept = [op for op in Opcode
            if op not in FAULTABLE_OPCODES or op is Opcode.IMUL]
    return tuple(sorted(kept, key=lambda op: op.name))


def worst_kept_offset_v(cpu: CpuModel, corner: str, imul_latency: int,
                        n_cores: int = 1) -> float:
    """Most restrictive (closest to zero) safe curve offset, in volts.

    Builds the deterministic corner chip, applies the genome's IMUL
    hardening depth, and takes the maximum ``max_safe_offset`` over
    every kept opcode, core and audited frequency — the binding
    constraint on how deep the efficient curve may sit at this corner.
    """
    key = (cpu.name, corner, int(imul_latency), int(n_cores))
    memo = _WORST_OFFSET_MEMO.get(key)
    if memo is not None:
        return memo
    shift = CORNER_SIGMA_SHIFTS[corner]
    chip = FaultModel().corner_chip(cpu.conservative_curve, shift,
                                    n_cores=n_cores)
    if imul_latency > IMUL_BASE_LATENCY:
        chip = chip.with_hardened_imul(IMUL_BASE_LATENCY, imul_latency)
    frequencies = tuple(AUDIT_FREQUENCIES) + (cpu.nominal_frequency,)
    worst = None
    for op in kept_opcodes():
        for core in range(n_cores):
            for freq in frequencies:
                offset = chip.max_safe_offset(op, core, freq)
                if worst is None or offset > worst:
                    worst = offset
    _WORST_OFFSET_MEMO[key] = worst
    return worst


def security_headroom_mv(cpu: CpuModel, genome: Genome,
                         n_cores: int = 1) -> float:
    """Undervolt headroom (mV) the genome's kept set retains.

    Positive: the offset sits *above* the most fragile kept
    instruction's fault threshold by that many millivolts.  Negative:
    kept instructions already fault — the operating point is broken
    regardless of any floor.
    """
    worst = worst_kept_offset_v(cpu, genome.corner, genome.imul_latency,
                                n_cores=n_cores)
    return (genome.offset_mv / 1000.0 - worst) * 1000.0


def violation_mv(headroom_mv: float, floor_mv: float) -> float:
    """Constraint violation: millivolts of missing headroom (0 = feasible)."""
    return max(0.0, floor_mv - headroom_mv)


@dataclass(frozen=True)
class SimJob:
    """The simulation identity of a genome: exactly the genes that can
    change the simulated timeline.

    The process-variation corner is deliberately absent — it only
    shifts the analytic security margin — so genomes differing solely
    by corner collapse onto one job (and one simulation).

    Attributes:
        cpu: CPU short name.
        workload: workload profile name.
        strategy: operating strategy.
        offset_mv: efficient-curve offset in millivolts (negative).
        deadline_us: deadline parameter in microseconds.
        imul_extra_cycles: IMUL pipeline cycles beyond the baseline.
        n_cores: active cores sharing the workload.
    """

    cpu: str
    workload: str
    strategy: str
    offset_mv: float
    deadline_us: float
    imul_extra_cycles: int
    n_cores: int

    @classmethod
    def from_genome(cls, spec: DseSpec, genome: Genome) -> "SimJob":
        """The job evaluating *genome* under *spec* (canonicalized first)."""
        canon = genome.canonical()
        return cls(cpu=spec.cpu, workload=spec.workload,
                   strategy=canon.strategy,
                   offset_mv=float(canon.offset_mv),
                   deadline_us=float(canon.deadline_us),
                   imul_extra_cycles=canon.imul_extra_cycles,
                   n_cores=spec.n_cores)

    @property
    def voltage_offset(self) -> float:
        """The offset in volts, as the simulator expects it."""
        return self.offset_mv / 1000.0

    def to_json_dict(self) -> dict:
        """Plain-JSON form (round-trips through :meth:`from_json_dict`)."""
        return {
            "cpu": self.cpu,
            "workload": self.workload,
            "strategy": self.strategy,
            "offset_mv": float(self.offset_mv),
            "deadline_us": float(self.deadline_us),
            "imul_extra_cycles": int(self.imul_extra_cycles),
            "n_cores": int(self.n_cores),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SimJob":
        """Rebuild a job from :meth:`to_json_dict` output."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job field(s): {sorted(unknown)}")
        return cls(**payload)

    def key(self) -> str:
        """sha256 content address (64 hex chars) of this job."""
        material = {"domain": _JOB_DOMAIN, "job": self.to_json_dict()}
        canonical = json.dumps(material, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def objective_vector(sim: dict, headroom_mv: float) -> Tuple[float, float, float]:
    """The minimized objective triple of one evaluation.

    Args:
        sim: a simulation payload with ``duration_s``,
            ``baseline_duration_s`` and ``energy_rel`` (the jsonified
            :class:`~repro.core.metrics.SimResult` fields).
        headroom_mv: the genome's analytic security headroom.

    Returns:
        ``(duration_ratio, energy_ratio, -headroom_v)`` — smaller is
        better on every axis; the security axis is in (negated) volts
        so the hypervolume reference point spans comparable magnitudes.
    """
    duration_ratio = sim["duration_s"] / sim["baseline_duration_s"]
    energy_ratio = sim["energy_rel"] / sim["baseline_duration_s"]
    return (duration_ratio, energy_ratio, -headroom_mv / 1000.0)
