"""Evolutionary design-space exploration for SUIT operating points.

The subpackage searches the SUIT parameter space — deadline, strategy,
efficient-curve offset, process-variation corner, IMUL pipeline depth —
with a seed-deterministic NSGA-II loop over three minimized objectives
(performance, energy, negated security headroom), then distills the
Pareto front into one recommended operating point per workload via
MCDM ranking (TOPSIS, cross-checked by weighted sum).

Modules:

* :mod:`repro.dse.space` — genome/spec types, mutation, crossover and
  the canned searches;
* :mod:`repro.dse.objectives` — simulation identity (:class:`SimJob`)
  and the analytic security-headroom audit;
* :mod:`repro.dse.pareto` — constrained dominance, non-dominated
  sorting, crowding distance, exact hypervolume;
* :mod:`repro.dse.mcdm` — normalization, weighted-sum and TOPSIS
  ranking;
* :mod:`repro.dse.evaluate` — batched evaluation backends (local
  :func:`~repro.core.batchsim.simulate_sweep` fan-out or the
  simulation service);
* :mod:`repro.dse.runner` — the generation loop, checkpointing and
  report assembly;
* :mod:`repro.dse.report` — the standalone HTML dashboard.
"""

from repro.dse import mcdm, pareto
from repro.dse.evaluate import (LocalEvalBackend, ServiceEvalBackend,
                                build_record)
from repro.dse.mcdm import (minmax_normalize, rank_rows, topsis_closeness,
                            weighted_sum_scores)
from repro.dse.objectives import (REFERENCE_POINT, SimJob, objective_vector,
                                  security_headroom_mv, violation_mv,
                                  worst_kept_offset_v)
from repro.dse.pareto import (crowding_distance, dominates, hypervolume,
                              non_dominated_sort, pareto_front_indices)
from repro.dse.report import ReportBuilder
from repro.dse.runner import (CheckpointMismatchError, DseRunner,
                              load_checkpoint_spec)
from repro.dse.space import (CANNED_SEARCHES, DseSpec, Genome, canned_search,
                             crossover, load_search, mutate, random_genome,
                             resolve_search)

__all__ = [
    "CANNED_SEARCHES",
    "CheckpointMismatchError",
    "DseRunner",
    "DseSpec",
    "Genome",
    "LocalEvalBackend",
    "REFERENCE_POINT",
    "ReportBuilder",
    "ServiceEvalBackend",
    "SimJob",
    "build_record",
    "canned_search",
    "crossover",
    "crowding_distance",
    "dominates",
    "hypervolume",
    "load_checkpoint_spec",
    "load_search",
    "mcdm",
    "minmax_normalize",
    "mutate",
    "non_dominated_sort",
    "objective_vector",
    "pareto",
    "pareto_front_indices",
    "random_genome",
    "rank_rows",
    "resolve_search",
    "security_headroom_mv",
    "topsis_closeness",
    "violation_mv",
    "weighted_sum_scores",
    "worst_kept_offset_v",
]
