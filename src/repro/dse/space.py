"""The SUIT design space: genomes, search specs and variation operators.

A :class:`Genome` is one candidate operating point — deadline, strategy,
efficient-curve offset, process-variation corner and IMUL pipeline
latency — with every gene drawn from the discrete grids of a
:class:`DseSpec`.  Discrete grids keep the evolutionary search honest
about what the platform can actually program (MSR granularity, Table 7
parameter steps), make genomes content-addressable for deduplication,
and let a whole generation batch through ``simulate_sweep`` per
deadline group.

Genome *canonicalization* folds genes that cannot influence the
phenotype: the emulation strategy ``e`` never arms the deadline timer
and always ships the paper's default +1-cycle IMUL hardening, so every
``e`` genome canonicalizes to one deadline/latency — revisited points
collapse onto one cache entry instead of re-simulating.

All identity is sha256-based (:meth:`Genome.canonical_key`,
:meth:`DseSpec.digest`): no salted ``hash()``, no dict-order
dependence, so reports are byte-identical across ``PYTHONHASHSEED``
values (the regression suite runs a generation under two different
hash seeds and compares bytes).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

#: Strategies a genome may select (matches the service / CLI set).
KNOWN_STRATEGIES: Tuple[str, ...] = ("fV", "f", "V", "e")

#: Process-variation corners: uniform margin shift in units of the
#: fault model's per-chip sigma.  Negative = strong silicon (margins
#: move away from the curve), positive = weak silicon.
CORNER_SIGMA_SHIFTS: Dict[str, float] = {
    "fast": -1.5,
    "typical": 0.0,
    "slow": 1.5,
    "worst": 3.0,
}

#: Baseline IMUL pipeline latency (cycles) — latency 3 means *no* SUIT
#: hardening; each extra cycle deepens IMUL's Vmin margin and raises
#: the static latency tax.
IMUL_BASE_LATENCY = 3

#: Canonical deadline/latency the ``e`` strategy folds onto: emulation
#: never arms the timer and always uses the paper's +1-cycle hardening.
E_CANONICAL_DEADLINE_US = 30.0
E_CANONICAL_IMUL_LATENCY = 4

#: Identity domain tags; bump when the canonical layout changes.
_GENOME_DOMAIN = "repro.dse.genome.v1"
_SPEC_SCHEMA = "repro.dse.spec.v1"


@dataclass(frozen=True)
class Genome:
    """One candidate SUIT operating point.

    Attributes:
        deadline_us: ``p_dl`` in microseconds (Table 7 knob).
        strategy: operating strategy short name ("fV", "f", "V", "e").
        offset_mv: efficient-curve offset in millivolts (negative).
        corner: process-variation corner (see
            :data:`CORNER_SIGMA_SHIFTS`).
        imul_latency: IMUL pipeline latency in cycles; 3 = unhardened,
            4 = the paper's +1-stage hardening.
    """

    deadline_us: float
    strategy: str
    offset_mv: float
    corner: str
    imul_latency: int

    def __post_init__(self) -> None:
        if self.strategy not in KNOWN_STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.corner not in CORNER_SIGMA_SHIFTS:
            raise ValueError(f"unknown corner {self.corner!r}; "
                             f"know {sorted(CORNER_SIGMA_SHIFTS)}")
        if self.deadline_us <= 0:
            raise ValueError("deadline must be positive")
        if self.offset_mv >= 0:
            raise ValueError("offset_mv must be negative (an undervolt)")
        if self.imul_latency < IMUL_BASE_LATENCY:
            raise ValueError(
                f"imul_latency must be >= {IMUL_BASE_LATENCY}")

    @property
    def imul_extra_cycles(self) -> int:
        """Extra pipeline cycles over the unhardened baseline."""
        return self.imul_latency - IMUL_BASE_LATENCY

    def canonical(self) -> "Genome":
        """The phenotype-equivalent canonical form.

        The ``e`` strategy ignores the deadline (no timer) and always
        carries the default hardening, so those genes fold onto fixed
        canonical values — different raw genomes with identical
        behaviour share one evaluation and one cache entry.
        """
        if self.strategy == "e":
            return replace(self, deadline_us=E_CANONICAL_DEADLINE_US,
                           imul_latency=E_CANONICAL_IMUL_LATENCY)
        return self

    def to_json_dict(self) -> dict:
        """Plain-JSON form (round-trips through :meth:`from_json_dict`)."""
        return {
            "deadline_us": float(self.deadline_us),
            "strategy": self.strategy,
            "offset_mv": float(self.offset_mv),
            "corner": self.corner,
            "imul_latency": int(self.imul_latency),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Genome":
        """Rebuild a genome from :meth:`to_json_dict` output."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown genome field(s): {sorted(unknown)}")
        return cls(**payload)

    def canonical_key(self) -> str:
        """sha256 content address of the canonical form (64 hex chars).

        This is the deduplication / checkpoint identity; it must never
        depend on ``hash()`` or dict iteration order.
        """
        material = {"domain": _GENOME_DOMAIN,
                    "genome": self.canonical().to_json_dict()}
        canonical = json.dumps(material, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Compact human-readable form for tables and logs."""
        return (f"{self.strategy}@{self.offset_mv:g}mV "
                f"dl={self.deadline_us:g}us imul={self.imul_latency} "
                f"{self.corner}")


@dataclass(frozen=True)
class DseSpec:
    """One design-space search, declaratively.

    Attributes:
        name: search name (seeds, file names, reports).
        cpu: paper CPU short name ("A", "B", "C", "i5").
        workload: workload profile searched over.
        seed: master seed; the whole search is a pure function of it.
        generations: evolutionary generations to run.
        population: genomes per generation (>= 4).
        n_cores: active cores sharing the workload.
        deadlines_us: deadline gene grid (microseconds, ascending).
        strategies: strategy gene choices.
        offsets_mv: offset gene grid (millivolts, negative).
        corners: process-variation corner choices.
        imul_latencies: IMUL pipeline latency grid (cycles).
        mutation_rate: per-gene mutation probability.
        crossover_rate: probability a child is recombined at all.
        weights: MCDM weights (performance, energy, security margin).
        security_floor_mv: minimum kept-instruction margin (mV) a
            feasible operating point must preserve; smaller margins
            count as security-invariant violations.
    """

    name: str
    cpu: str = "C"
    workload: str = "nginx"
    seed: int = 0
    generations: int = 4
    population: int = 16
    n_cores: int = 1
    deadlines_us: Tuple[float, ...] = (10.0, 20.0, 30.0, 50.0, 100.0,
                                       200.0, 450.0, 700.0)
    strategies: Tuple[str, ...] = ("fV", "f", "V", "e")
    offsets_mv: Tuple[float, ...] = (-50.0, -70.0, -85.0, -97.0,
                                     -110.0, -125.0, -140.0, -160.0)
    corners: Tuple[str, ...] = ("fast", "typical", "slow", "worst")
    imul_latencies: Tuple[int, ...] = (3, 4, 5, 6)
    mutation_rate: float = 0.25
    crossover_rate: float = 0.9
    weights: Tuple[float, float, float] = (0.45, 0.3, 0.25)
    security_floor_mv: float = 100.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a search needs a name")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.population < 4:
            raise ValueError("population must be >= 4")
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        for grid, label in ((self.deadlines_us, "deadlines_us"),
                            (self.strategies, "strategies"),
                            (self.offsets_mv, "offsets_mv"),
                            (self.corners, "corners"),
                            (self.imul_latencies, "imul_latencies")):
            if not grid:
                raise ValueError(f"{label} grid must not be empty")
            if len(set(grid)) != len(grid):
                raise ValueError(f"{label} grid has duplicates")
        if any(d <= 0 for d in self.deadlines_us):
            raise ValueError("deadlines must be positive")
        unknown = set(self.strategies) - set(KNOWN_STRATEGIES)
        if unknown:
            raise ValueError(f"unknown strategies: {sorted(unknown)}")
        if any(o >= 0 for o in self.offsets_mv):
            raise ValueError("offsets_mv must be negative (undervolts)")
        unknown = set(self.corners) - set(CORNER_SIGMA_SHIFTS)
        if unknown:
            raise ValueError(f"unknown corners: {sorted(unknown)}")
        if any(latency < IMUL_BASE_LATENCY
               for latency in self.imul_latencies):
            raise ValueError(
                f"IMUL latencies must be >= {IMUL_BASE_LATENCY}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be a probability")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be a probability")
        if len(self.weights) != 3:
            raise ValueError("weights are (performance, energy, security)")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative, not all zero")
        if self.security_floor_mv < 0:
            raise ValueError("security_floor_mv must be non-negative")

    def to_json_dict(self) -> dict:
        """Plain-JSON form (round-trips through :meth:`from_json_dict`)."""
        payload = asdict(self)
        for key in ("deadlines_us", "strategies", "offsets_mv", "corners",
                    "imul_latencies", "weights"):
            payload[key] = list(payload[key])
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "DseSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (or a parsed
        spec file); unknown keys raise so typos fail loudly."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        data = dict(payload)
        for key in ("deadlines_us", "strategies", "offsets_mv", "corners",
                    "imul_latencies", "weights"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)

    def canonical_json(self) -> str:
        """Deterministic serialization (digest input)."""
        return json.dumps({"schema": _SPEC_SCHEMA,
                           "spec": self.to_json_dict()},
                          sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content address; checkpoints pin it so ``dse resume``
        refuses a checkpoint written by a different search."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def with_overrides(self, **kwargs) -> "DseSpec":
        """A copy with the given fields replaced (CLI overrides)."""
        return replace(self, **kwargs)


# -- variation operators --------------------------------------------------

def random_genome(spec: DseSpec, rng: np.random.Generator) -> Genome:
    """Sample one genome uniformly from the spec's grids.

    Draw order is fixed (deadline, strategy, offset, corner, latency)
    so populations are reproducible for a given generator state.
    """
    return Genome(
        deadline_us=float(spec.deadlines_us[
            int(rng.integers(len(spec.deadlines_us)))]),
        strategy=str(spec.strategies[
            int(rng.integers(len(spec.strategies)))]),
        offset_mv=float(spec.offsets_mv[
            int(rng.integers(len(spec.offsets_mv)))]),
        corner=str(spec.corners[int(rng.integers(len(spec.corners)))]),
        imul_latency=int(spec.imul_latencies[
            int(rng.integers(len(spec.imul_latencies)))]),
    )


def _step(grid: Tuple, value, rng: np.random.Generator):
    """Move one step up or down an ordinal grid (clipped at the ends)."""
    index = grid.index(value)
    index += 1 if rng.random() < 0.5 else -1
    return grid[min(max(index, 0), len(grid) - 1)]


def _resample(grid: Tuple, value, rng: np.random.Generator):
    """Draw a different categorical value (no-op on 1-element grids)."""
    if len(grid) == 1:
        return value
    choices = [g for g in grid if g != value]
    return choices[int(rng.integers(len(choices)))]


def mutate(genome: Genome, spec: DseSpec,
           rng: np.random.Generator) -> Genome:
    """Mutate each gene with probability ``spec.mutation_rate``.

    Ordinal genes (deadline, offset, IMUL latency) take one grid step;
    categorical genes (strategy, corner) resample a different value.
    Every gene draws its mutation coin in fixed order so the operator
    is a pure function of the generator state.
    """
    deadline = genome.deadline_us
    if rng.random() < spec.mutation_rate:
        deadline = float(_step(spec.deadlines_us, deadline, rng))
    strategy = genome.strategy
    if rng.random() < spec.mutation_rate:
        strategy = str(_resample(spec.strategies, strategy, rng))
    offset = genome.offset_mv
    if rng.random() < spec.mutation_rate:
        offset = float(_step(spec.offsets_mv, offset, rng))
    corner = genome.corner
    if rng.random() < spec.mutation_rate:
        corner = str(_resample(spec.corners, corner, rng))
    latency = genome.imul_latency
    if rng.random() < spec.mutation_rate:
        latency = int(_step(spec.imul_latencies, latency, rng))
    return Genome(deadline_us=deadline, strategy=strategy,
                  offset_mv=offset, corner=corner, imul_latency=latency)


def crossover(a: Genome, b: Genome,
              rng: np.random.Generator) -> Genome:
    """Uniform crossover: each gene comes from either parent (p = 0.5)."""
    genes_a = a.to_json_dict()
    genes_b = b.to_json_dict()
    child = {key: (genes_a if rng.random() < 0.5 else genes_b)[key]
             for key in ("deadline_us", "strategy", "offset_mv",
                         "corner", "imul_latency")}
    return Genome.from_json_dict(child)


# -- canned searches ------------------------------------------------------

#: Canned searches shipped with the reproduction.  ``nginx_pareto`` is
#: the ISSUE's end-to-end golden: 4 generations x 16 genomes over the
#: nginx trace, whose recommendation must land in the paper-consistent
#: region (offset near -97 mV, zero violations on the frontier).
CANNED_SEARCHES: Dict[str, DseSpec] = {
    "nginx_pareto": DseSpec(
        name="nginx_pareto",
        cpu="C",
        workload="nginx",
        generations=4,
        population=16,
    ),
    "nginx_quick": DseSpec(
        name="nginx_quick",
        cpu="C",
        workload="nginx",
        generations=2,
        population=8,
    ),
}


def canned_search(name: str) -> DseSpec:
    """Look up a canned search (ValueError with the catalogue if unknown)."""
    try:
        return CANNED_SEARCHES[name]
    except KeyError:
        raise ValueError(
            f"unknown canned search {name!r}; know "
            f"{sorted(CANNED_SEARCHES)} (or pass a spec file path)")


def load_search(path: Path) -> DseSpec:
    """Load a search spec from a ``.json`` file."""
    with open(Path(path), encoding="utf-8") as handle:
        payload = json.load(handle)
    if "search" in payload and isinstance(payload["search"], dict):
        payload = payload["search"]
    return DseSpec.from_json_dict(payload)


def resolve_search(name_or_path: str) -> DseSpec:
    """A canned search name, or a path to a JSON spec file."""
    if name_or_path in CANNED_SEARCHES:
        return CANNED_SEARCHES[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return load_search(path)
    return canned_search(name_or_path)  # raises with the catalogue
