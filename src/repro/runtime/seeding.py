"""Deterministic per-experiment seeding.

Every experiment run by the engine receives a seed derived from the
base seed and its own module name.  The derivation is a pure function
of those two inputs, so:

* results never depend on worker scheduling or submission order
  (``--jobs 1`` and ``--jobs 4`` produce identical reports), and
* experiments are statistically decorrelated from each other even
  though they share one base seed (two experiments no longer consume
  the same random stream just because both were started with seed 0).
"""

from __future__ import annotations

import hashlib

#: Domain-separation tag; bump when the derivation scheme changes so
#: cached results and goldens keyed on derived seeds invalidate cleanly.
_SEED_DOMAIN = "repro.runtime.seed.v1"


def derive_seed(base_seed: int, experiment: str) -> int:
    """Derive the seed for *experiment* from *base_seed*.

    Returns an unsigned 32-bit integer (valid for
    :func:`numpy.random.default_rng` and for the ``seed + i`` arithmetic
    some experiments do internally).  The mapping is stable across
    processes, platforms and Python versions.
    """
    material = f"{_SEED_DOMAIN}:{int(base_seed)}:{experiment}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")
