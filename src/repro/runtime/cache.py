"""On-disk content-addressed cache for experiment results.

Each cached entry is one JSON file named ``<key>.json`` where *key* is
the SHA-256 of the canonical key material:

* ``module`` — the experiment module name (``"table6_main"``),
* ``module_sha256`` — hash of that module's source file,
* ``package_digest`` — hash of **every** ``.py`` file in the ``repro``
  package (so a change anywhere in the simulator invalidates results,
  not only edits to the experiment module itself),
* ``version`` — the ``repro`` distribution version,
* ``seed`` — the *derived* per-experiment seed,
* ``fast`` — fast/full mode.

Writes are atomic (temp file + :func:`os.replace`), so concurrent pool
workers and concurrent engine invocations can share one cache directory
without torn entries.  A corrupt or unreadable entry is treated as a
miss and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

#: Bump when the cached payload layout changes; invalidates old entries.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-suit``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-suit" / "experiments"


def experiment_cache_key(*, module: str, module_sha256: str,
                         package_digest: str, version: str,
                         seed: int, fast: bool) -> str:
    """Content-address (64 hex chars) of one experiment invocation.

    Equal inputs always map to equal keys; changing any single field
    changes the key (``tests/test_runtime_properties.py`` pins both
    properties).
    """
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "module": str(module),
        "module_sha256": str(module_sha256),
        "package_digest": str(package_digest),
        "version": str(version),
        "seed": int(seed),
        "fast": bool(fast),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def source_sha256(path: Path) -> str:
    """SHA-256 of one source file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


_PACKAGE_DIGEST_CACHE: Dict[str, str] = {}


def package_digest(root: Optional[Path] = None, *, refresh: bool = False) -> str:
    """Digest of every ``.py`` file under *root* (default: the ``repro`` package).

    The digest covers relative paths and file contents in sorted order,
    so renames, additions, deletions and edits all change it.  Computed
    once per process per root (hashing ~200 files costs a few ms; pass
    ``refresh=True`` to force recomputation after editing sources
    in-process).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root).resolve()
    cache_token = str(root)
    if not refresh and cache_token in _PACKAGE_DIGEST_CACHE:
        return _PACKAGE_DIGEST_CACHE[cache_token]
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        hasher.update(rel.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    digest = hasher.hexdigest()
    _PACKAGE_DIGEST_CACHE[cache_token] = digest
    return digest


class ResultCache:
    """Content-addressed store of serialized experiment results."""

    def __init__(self, root: Optional[Path] = None) -> None:
        """Create a cache rooted at *root* (default :func:`default_cache_dir`)."""
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """Path of the entry addressed by *key*."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the stored payload for *key*, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store *payload* under *key*; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        entry = {"cache_schema": CACHE_SCHEMA_VERSION, "key": key,
                 "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
