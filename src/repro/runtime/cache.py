"""On-disk content-addressed cache for experiment results.

Each cached entry is one JSON file named ``<key>.json`` where *key* is
the SHA-256 of the canonical key material:

* ``module`` — the experiment module name (``"table6_main"``),
* ``module_sha256`` — hash of that module's source file,
* ``package_digest`` — hash of **every** ``.py`` file in the ``repro``
  package (so a change anywhere in the simulator invalidates results,
  not only edits to the experiment module itself),
* ``version`` — the ``repro`` distribution version,
* ``seed`` — the *derived* per-experiment seed,
* ``fast`` — fast/full mode.

Writes are atomic (temp file + :func:`os.replace`), so concurrent pool
workers and concurrent engine invocations can share one cache directory
without torn entries.  A corrupt or unreadable entry is treated as a
miss and overwritten.

The cache can be **size-bounded**: construct with ``max_bytes`` (or run
``python -m repro.runtime.cache --prune``) and the least-recently-used
entries are deleted until the directory fits the cap.  Recency is the
entry file's mtime — refreshed on every :meth:`ResultCache.get` hit —
so a long-lived service keeps its hot results and sheds cold sweeps.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.testkit.chaos import inject

#: Bump when the cached payload layout changes; invalidates old entries.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default size cap applied by ``python -m repro.runtime.cache --prune``.
DEFAULT_PRUNE_MAX_BYTES = 1 << 30


def _count_corrupt_entry() -> None:
    """Record one corrupt/truncated cache entry in the obs registry."""
    try:
        from repro.obs.registry import get_registry

        get_registry().counter(
            "cache_corrupt_entries_total",
            "on-disk cache entries found corrupt and treated as misses",
        ).inc()
    except Exception:  # pragma: no cover - metrics must never fault
        pass


def default_cache_dir() -> Path:
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-suit``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-suit" / "experiments"


def experiment_cache_key(*, module: str, module_sha256: str,
                         package_digest: str, version: str,
                         seed: int, fast: bool) -> str:
    """Content-address (64 hex chars) of one experiment invocation.

    Equal inputs always map to equal keys; changing any single field
    changes the key (``tests/test_runtime_properties.py`` pins both
    properties).
    """
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "module": str(module),
        "module_sha256": str(module_sha256),
        "package_digest": str(package_digest),
        "version": str(version),
        "seed": int(seed),
        "fast": bool(fast),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def domain_cache_key(*, domain: str, payload: dict,
                     package_digest: str) -> str:
    """Content-address (64 hex chars) of an arbitrary cacheable payload.

    Generalizes :func:`experiment_cache_key` for subsystems that cache
    something other than whole experiment invocations (the DSE caches
    per-genome simulation batches).  *domain* separates key spaces so
    two subsystems can never collide even on identical payloads;
    *payload* must be a plain-JSON dict (the canonical material is
    ``json.dumps(..., sort_keys=True)``, so dict insertion order and
    ``PYTHONHASHSEED`` never leak into the key); *package_digest* ties
    the entry to the simulator sources that produced it.
    """
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "domain": str(domain),
        "package_digest": str(package_digest),
        "payload": payload,
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def source_sha256(path: Path) -> str:
    """SHA-256 of one source file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


_PACKAGE_DIGEST_CACHE: Dict[str, str] = {}


def package_digest(root: Optional[Path] = None, *, refresh: bool = False) -> str:
    """Digest of every ``.py`` file under *root* (default: the ``repro`` package).

    The digest covers relative paths and file contents in sorted order,
    so renames, additions, deletions and edits all change it.  Computed
    once per process per root (hashing ~200 files costs a few ms; pass
    ``refresh=True`` to force recomputation after editing sources
    in-process).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root).resolve()
    cache_token = str(root)
    if not refresh and cache_token in _PACKAGE_DIGEST_CACHE:
        return _PACKAGE_DIGEST_CACHE[cache_token]
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        hasher.update(rel.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    digest = hasher.hexdigest()
    _PACKAGE_DIGEST_CACHE[cache_token] = digest
    return digest


class ResultCache:
    """Content-addressed store of serialized experiment results.

    Args:
        root: cache directory (default :func:`default_cache_dir`).
        max_bytes: optional size cap; when set, every :meth:`put`
            LRU-prunes the directory back under the cap.
    """

    def __init__(self, root: Optional[Path] = None,
                 max_bytes: Optional[int] = None) -> None:
        """See class docstring."""
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes

    def path_for(self, key: str) -> Path:
        """Path of the entry addressed by *key*."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the stored payload for *key*, or None on miss/corruption.

        A truncated, bit-flipped or otherwise undecodable entry is a
        *counted* miss (``cache_corrupt_entries_total``) and is deleted
        so the recompute's :meth:`put` starts from a clean slot; an
        absent entry or a schema-version mismatch is a plain miss.  A
        hit refreshes the entry's mtime, which is what LRU pruning
        orders by.
        """
        path = self.path_for(key)
        inject("cache.entry", path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._corrupt_miss(path)
        if not isinstance(entry, dict):
            return self._corrupt_miss(path)
        if entry.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        payload = entry.get("payload")
        if isinstance(payload, dict):
            try:
                os.utime(path, (time.time(), time.time()))
            except OSError:
                pass  # recency refresh is best-effort
            return payload
        return self._corrupt_miss(path)

    def _corrupt_miss(self, path: Path) -> None:
        """Count a corrupt entry, drop it from disk, and miss."""
        _count_corrupt_entry()
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent prune (or chaos) beat us to it
        return None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store *payload* under *key*; returns the entry path.

        When the cache is size-bounded, pruning runs after the write so
        the new entry itself is counted (and, being newest, survives).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        inject("cache.put", path=path)
        entry = {"cache_schema": CACHE_SCHEMA_VERSION, "key": key,
                 "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self.prune()
        return path

    def entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(path, mtime, size_bytes)``, oldest first."""
        if not self.root.is_dir():
            return []
        listed = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            listed.append((path, stat.st_mtime, stat.st_size))
        listed.sort(key=lambda item: item[1])
        return listed

    def total_bytes(self) -> int:
        """Sum of all entry sizes on disk."""
        return sum(size for _, _, size in self.entries())

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Delete least-recently-used entries until the cap fits.

        Args:
            max_bytes: cap to enforce; defaults to the instance's
                ``max_bytes``.  ``None`` on both sides is a no-op.

        Returns:
            Number of entries removed.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        inject("cache.prune", root=str(self.root))
        listed = self.entries()
        total = sum(size for _, _, size in listed)
        removed = 0
        for path, _, size in listed:  # oldest first
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue  # already gone: someone else pruned it
            total -= size
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.runtime.cache`` — inspect, prune or clear a cache.

    With no action flag, prints the cache statistics.  ``--prune``
    LRU-prunes to ``--max-bytes`` (default 1 GiB); ``--clear`` removes
    everything.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.cache",
        description="inspect, LRU-prune or clear an on-disk result cache")
    parser.add_argument("--dir", default=None,
                        help="cache directory (default: the experiment "
                             "cache, honouring $REPRO_CACHE_DIR)")
    parser.add_argument("--prune", action="store_true",
                        help="delete least-recently-used entries until "
                             "the cache fits --max-bytes")
    parser.add_argument("--max-bytes", type=int,
                        default=DEFAULT_PRUNE_MAX_BYTES,
                        help="size cap enforced by --prune "
                             "(default: 1 GiB)")
    parser.add_argument("--clear", action="store_true",
                        help="delete every entry")
    args = parser.parse_args(argv)
    if args.max_bytes < 0:
        parser.error("--max-bytes must be >= 0")
    cache = ResultCache(Path(args.dir) if args.dir else None)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    if args.prune:
        before = cache.total_bytes()
        removed = cache.prune(args.max_bytes)
        after = cache.total_bytes()
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({before - after:,} bytes) from {cache.root}; "
              f"{len(cache)} entries / {after:,} bytes remain "
              f"(cap {args.max_bytes:,})")
        return 0
    print(f"cache {cache.root}: {len(cache)} entries, "
          f"{cache.total_bytes():,} bytes")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
