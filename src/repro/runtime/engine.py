"""The parallel, cached experiment engine.

:class:`ExperimentEngine` runs the modules of
:data:`repro.experiments.runall.EXPERIMENT_MODULES` (or any other
registry of ``run(seed=..., fast=...)`` modules) and produces an
:class:`EngineReport`:

* **Parallel** — cache misses execute on a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers);
  ``jobs <= 1`` runs in-process with no pool overhead.
* **Deterministic** — each experiment's seed is
  :func:`~repro.runtime.seeding.derive_seed`\\ (base_seed, module), a
  pure function of the base seed and the module name, so the report's
  canonical form is byte-identical whatever the worker count or
  completion order.
* **Cached** — results are memoized in a
  :class:`~repro.runtime.cache.ResultCache` keyed by module source
  hash, package digest, version, seed and mode; unchanged experiments
  are instant on re-run.
* **Fault-isolated** — an experiment that raises is reported as a
  ``"failed"`` record (with its traceback) without killing the pool or
  the run, and failures are never cached.

The JSON report written by :meth:`EngineReport.write` has a stable
schema (see ``docs/experiment_engine.md``); its *canonical* form
(:meth:`EngineReport.canonical_json`) strips the volatile runtime
fields (wall times, worker ids, cache hits, job count) and is what the
determinism tests compare.
"""

from __future__ import annotations

import importlib
import importlib.util
import json
import logging
import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.obs import get_registry, get_tracer
from repro.runtime.cache import (
    ResultCache,
    experiment_cache_key,
    package_digest,
    source_sha256,
)
from repro.runtime.seeding import derive_seed
from repro.runtime.serialization import deserialize_result, serialize_result

logger = logging.getLogger(__name__)

#: Version of the report JSON schema.
REPORT_SCHEMA_VERSION = 1

#: The repro distribution version baked into cache keys and reports.
REPRO_VERSION = "1.0.0"

#: Default registry package holding the experiment modules.
DEFAULT_REGISTRY = "repro.experiments"


def _execute_experiment(registry: str, name: str, seed: int, fast: bool) -> dict:
    """Run one experiment (in a pool worker or in-process).

    Never raises: an experiment failure is returned as a
    ``status == "failed"`` outcome carrying the traceback, so one crash
    cannot take down the pool or the run.
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    worker = multiprocessing.current_process().name
    tracer = get_tracer()
    try:
        with tracer.span(f"experiment:{name}", cat="engine",
                         args={"seed": seed, "fast": fast}):
            module = importlib.import_module(f"{registry}.{name}")
            result = module.run(seed=seed, fast=fast)
        payload: Optional[dict] = serialize_result(result)
        status, error = "ok", None
    except BaseException:  # noqa: BLE001 - the traceback is the report
        payload, status = None, "failed"
        error = traceback.format_exc()
    return {"module": name, "status": status, "error": error,
            "payload": payload, "wall_time_s": time.perf_counter() - start,
            "cpu_time_s": time.process_time() - cpu_start,
            "worker": worker}


@dataclass
class ExperimentRecord:
    """One experiment's entry in an :class:`EngineReport`.

    Attributes:
        module: experiment module name ("table6_main", ...).
        status: "ok" or "failed".
        seed: the derived seed the experiment ran with.
        payload: serialized result (None when failed) — see
            :func:`repro.runtime.serialization.serialize_result`.
        error: traceback text when failed.
        wall_time_s: execution time (0.0 for cache hits).
        cpu_time_s: process CPU time consumed (0.0 for cache hits).
        cache_hit: whether the result came from the cache.
        cache_key: content address used (None when caching is off).
        worker: name of the process that executed the experiment.
    """

    module: str
    status: str
    seed: int
    payload: Optional[dict] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    cache_hit: bool = False
    cache_key: Optional[str] = None
    worker: str = "cache"

    @property
    def ok(self) -> bool:
        """True when the experiment completed."""
        return self.status == "ok"

    def to_result(self) -> ExperimentResult:
        """Rebuild the :class:`ExperimentResult` (raises if failed)."""
        if not self.ok or self.payload is None:
            raise RuntimeError(f"experiment {self.module} failed:\n{self.error}")
        return deserialize_result(self.payload)

    def to_json_dict(self) -> dict:
        """Full JSON form, including the volatile ``runtime`` section."""
        entry = self.canonical_dict()
        entry["runtime"] = {
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "cache_hit": self.cache_hit,
            "worker": self.worker,
        }
        return entry

    def canonical_dict(self) -> dict:
        """Deterministic JSON form (no timing / worker / cache fields)."""
        payload = self.payload or {}
        return {
            "module": self.module,
            "status": self.status,
            "seed": self.seed,
            "experiment_id": payload.get("experiment_id"),
            "title": payload.get("title"),
            "metrics": payload.get("metrics", []),
            "lines": payload.get("lines", []),
            "data": payload.get("data", {}),
            "error": self.error,
        }


@dataclass
class EngineReport:
    """Everything one engine run produced, in registry order.

    Attributes:
        base_seed: the seed the per-experiment seeds were derived from.
        fast: fast/full mode.
        jobs: worker count used (volatile; excluded from canonical form).
        cache_enabled: whether a result cache was attached.
        records: one :class:`ExperimentRecord` per selected experiment.
        total_wall_time_s: wall time of the whole engine run.
    """

    base_seed: int
    fast: bool
    jobs: int
    cache_enabled: bool
    records: List[ExperimentRecord] = field(default_factory=list)
    total_wall_time_s: float = 0.0

    @property
    def n_failed(self) -> int:
        """Number of failed experiments."""
        return sum(1 for r in self.records if not r.ok)

    @property
    def n_cache_hits(self) -> int:
        """Number of records served from the cache."""
        return sum(1 for r in self.records if r.cache_hit)

    def results(self) -> List[ExperimentResult]:
        """The successful results, rebuilt, in registry order."""
        return [r.to_result() for r in self.records if r.ok]

    def to_json_dict(self) -> dict:
        """Full report JSON (stable schema + volatile runtime fields)."""
        return {
            "schema": {"name": "repro.experiment-report",
                       "version": REPORT_SCHEMA_VERSION},
            "run": {
                "repro_version": REPRO_VERSION,
                "base_seed": self.base_seed,
                "fast": self.fast,
                "jobs": self.jobs,
                "cache_enabled": self.cache_enabled,
                "total_wall_time_s": self.total_wall_time_s,
                "n_failed": self.n_failed,
                "n_cache_hits": self.n_cache_hits,
            },
            "experiments": [r.to_json_dict() for r in self.records],
        }

    def canonical_dict(self) -> dict:
        """Report stripped of everything that may vary between equal runs."""
        return {
            "schema": {"name": "repro.experiment-report",
                       "version": REPORT_SCHEMA_VERSION},
            "run": {
                "repro_version": REPRO_VERSION,
                "base_seed": self.base_seed,
                "fast": self.fast,
            },
            "experiments": [r.canonical_dict() for r in self.records],
        }

    def canonical_json(self) -> str:
        """Canonical bytes: equal runs serialize byte-identically."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: Path) -> Path:
        """Write the full report JSON to *path*; returns the path."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


class ExperimentEngine:
    """Discovers, schedules, caches and reports the experiments.

    Args:
        modules: registry order of experiment module names; defaults to
            :data:`repro.experiments.runall.EXPERIMENT_MODULES`.
        registry: package the modules live in.
        jobs: process-pool width; ``<= 1`` executes in-process.
        cache: result cache, or None to disable memoization.
        share_traces: serve synthesised traces from a zero-copy shared
            store (:mod:`repro.workloads.tracestore`) for the duration
            of each :meth:`run`: pool workers attach read-only views by
            name instead of re-synthesising per process.  Cannot change
            results — the store is just another layer of the pure
            trace cache.
    """

    def __init__(self, modules: Optional[Sequence[str]] = None,
                 registry: str = DEFAULT_REGISTRY, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 share_traces: bool = False) -> None:
        """See class docstring."""
        if modules is None:
            from repro.experiments.runall import EXPERIMENT_MODULES

            modules = EXPERIMENT_MODULES
        self.modules: Tuple[str, ...] = tuple(modules)
        self.registry = registry
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.share_traces = share_traces

    def select(self, only: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
        """Registry-ordered selection; unknown names raise ValueError."""
        if not only:
            return self.modules
        unknown = sorted(set(only) - set(self.modules))
        if unknown:
            raise ValueError(
                f"unknown experiment module(s): {', '.join(unknown)}")
        wanted = set(only)
        return tuple(name for name in self.modules if name in wanted)

    def _module_source_hash(self, name: str) -> str:
        """Hash of the module's source file (read without importing it)."""
        spec = importlib.util.find_spec(f"{self.registry}.{name}")
        if spec is None or not spec.origin:
            raise ValueError(f"cannot locate source of {self.registry}.{name}")
        return source_sha256(Path(spec.origin))

    def cache_key_for(self, name: str, *, seed: int, fast: bool) -> str:
        """Content address of one (module, derived seed, mode) invocation."""
        return experiment_cache_key(
            module=name,
            module_sha256=self._module_source_hash(name),
            package_digest=package_digest(),
            version=REPRO_VERSION,
            seed=seed,
            fast=fast,
        )

    def run(self, seed: int = 0, fast: bool = False,
            only: Optional[Sequence[str]] = None) -> EngineReport:
        """Run the selected experiments; returns the report.

        Individual experiment failures are captured in their records;
        this method itself only raises on orchestration errors (unknown
        module names, a hard-killed worker process).
        """
        started = time.perf_counter()
        store = None
        if self.share_traces:
            from repro.workloads.tracestore import SharedTraceStore

            store = SharedTraceStore.create("engine")
            store.activate()
        try:
            return self._run_selected(started, seed, fast, only)
        finally:
            if store is not None:
                stats = store.stats()
                logger.info("engine: trace store drained (%d published)",
                            stats["published"])
                store.cleanup()

    def _run_selected(self, started: float, seed: int, fast: bool,
                      only: Optional[Sequence[str]]) -> EngineReport:
        metrics = get_registry()
        experiments = metrics.counter(
            "engine_experiments_total", "engine experiment outcomes",
            label_names=("status",))
        wall_hist = metrics.histogram(
            "engine_experiment_wall_seconds",
            "per-experiment wall time of cache misses")
        names = self.select(only)
        records: Dict[str, ExperimentRecord] = {}
        pending: List[Tuple[str, int, Optional[str]]] = []
        for name in names:
            derived = derive_seed(seed, name)
            key: Optional[str] = None
            if self.cache is not None:
                key = self.cache_key_for(name, seed=derived, fast=fast)
                payload = self.cache.get(key)
                if payload is not None:
                    metrics.counter("engine_cache_hits_total",
                                    "experiments served from the cache").inc()
                    experiments.inc(status="cached")
                    records[name] = ExperimentRecord(
                        module=name, status="ok", seed=derived,
                        payload=payload, cache_hit=True, cache_key=key)
                    continue
            pending.append((name, derived, key))

        logger.info("engine: %d experiment(s), %d cached, %d to run on "
                    "%d worker(s)", len(names), len(names) - len(pending),
                    len(pending), self.jobs)
        for outcome, (name, derived, key) in zip(
                self._execute(pending, fast), pending):
            record = ExperimentRecord(
                module=name, status=outcome["status"], seed=derived,
                payload=outcome["payload"], error=outcome["error"],
                wall_time_s=outcome["wall_time_s"], cache_hit=False,
                cpu_time_s=outcome.get("cpu_time_s", 0.0),
                cache_key=key, worker=outcome["worker"])
            experiments.inc(status=record.status)
            wall_hist.observe(record.wall_time_s)
            if not record.ok:
                logger.warning("engine: %s failed", name)
            if self.cache is not None and record.ok and key is not None:
                try:
                    self.cache.put(key, record.payload)
                except OSError:
                    # An unwritable cache must not fail the run; the
                    # next invocation simply recomputes.
                    logger.warning("engine: cache write failed for %s", name)
            records[name] = record

        report = EngineReport(
            base_seed=seed, fast=fast, jobs=self.jobs,
            cache_enabled=self.cache is not None,
            records=[records[name] for name in names])
        report.total_wall_time_s = time.perf_counter() - started
        if names:
            metrics.gauge("engine_cache_hit_ratio",
                          "cache hits / experiments of the last run").set(
                report.n_cache_hits / len(names))
        logger.info("engine: run complete in %.1fs (%d failed, %d cached)",
                    report.total_wall_time_s, report.n_failed,
                    report.n_cache_hits)
        return report

    def _execute(self, pending: Sequence[Tuple[str, int, Optional[str]]],
                 fast: bool) -> List[dict]:
        """Execute the cache misses, in-process or on a process pool."""
        if not pending:
            return []
        if self.jobs <= 1 or len(pending) == 1:
            return [_execute_experiment(self.registry, name, derived, fast)
                    for name, derived, _ in pending]
        outcomes: Dict[str, dict] = {}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_experiment, self.registry, name,
                            derived, fast): name
                for name, derived, _ in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    outcomes[futures[future]] = future.result()
        return [outcomes[name] for name, _, _ in pending]
