"""Experiment execution runtime: parallel engine, result cache, goldens.

The runtime package turns the per-module experiments under
:mod:`repro.experiments` into a managed fleet:

* :mod:`repro.runtime.seeding` — deterministic per-experiment seeds, so
  results do not depend on worker scheduling.
* :mod:`repro.runtime.cache` — an on-disk content-addressed result
  cache keyed by (module source hash, package source digest, package
  version, seed, fast/full mode).
* :mod:`repro.runtime.serialization` — the stable JSON schema for
  :class:`~repro.experiments.common.ExperimentResult`.
* :mod:`repro.runtime.engine` — :class:`ExperimentEngine`, which runs
  experiments on a process pool and emits an :class:`EngineReport`
  (``report.json``).
* :mod:`repro.runtime.goldens` — golden-value snapshots of every paper
  metric plus the comparison used by the regression harness
  (``tests/test_goldens.py``).
"""

from repro.runtime.cache import ResultCache, experiment_cache_key, package_digest
from repro.runtime.engine import EngineReport, ExperimentEngine, ExperimentRecord
from repro.runtime.seeding import derive_seed
from repro.runtime.serialization import deserialize_result, jsonify, serialize_result

__all__ = [
    "ResultCache",
    "experiment_cache_key",
    "package_digest",
    "EngineReport",
    "ExperimentEngine",
    "ExperimentRecord",
    "derive_seed",
    "deserialize_result",
    "jsonify",
    "serialize_result",
]
