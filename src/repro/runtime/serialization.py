"""Stable JSON serialization of experiment results.

The engine, the on-disk cache and the golden files all share one
schema, produced by :func:`serialize_result`:

.. code-block:: python

    {"experiment_id": "table6", "title": "...",
     "metrics": [{"name": ..., "measured": ..., "paper": ..., "unit": ...}],
     "lines": ["..."],
     "data": {...}}          # jsonified raw series

:func:`jsonify` maps the raw ``ExperimentResult.data`` payloads (numpy
arrays and scalars, dataclasses, enum-keyed dicts, tuples) onto plain
JSON types deterministically, so serializing the same result twice —
in different processes, under different ``--jobs`` — yields identical
bytes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping, Optional

import numpy as np

from repro.experiments.common import ExperimentResult, Metric


def jsonify(value: object) -> object:
    """Map *value* onto plain JSON types (dict/list/str/float/int/bool/None).

    Numpy scalars become Python scalars, arrays become nested lists,
    tuples/sets become lists (sets sorted by repr for determinism),
    enums become their names, dataclasses become field dicts, and any
    remaining object falls back to ``repr`` — lossy but stable, which
    is what a report/cache format needs.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, np.generic):
        return jsonify(value.item())
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {_key_str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return [jsonify(item) for item in sorted(value, key=repr)]
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    return repr(value)


def _key_str(key: object) -> str:
    """Render a mapping key as a JSON object key."""
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, str):
        return key
    return repr(jsonify(key))


def serialize_metric(metric: Metric) -> dict:
    """One metric as a JSON object."""
    return {
        "name": metric.name,
        "measured": float(metric.measured),
        "paper": None if metric.paper is None else float(metric.paper),
        "unit": metric.unit,
    }


def serialize_result(result: ExperimentResult) -> dict:
    """Serialize *result* to the stable report/cache schema."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "metrics": [serialize_metric(m) for m in result.metrics],
        "lines": [str(line) for line in result.lines],
        "data": jsonify(dict(result.data)),
    }


def deserialize_result(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`serialize_result` output.

    ``data`` comes back in its jsonified form (lists instead of numpy
    arrays); metrics and report lines round-trip exactly.
    """
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        lines=list(payload.get("lines", ())),
        data=dict(payload.get("data", {})),
    )
    for m in payload.get("metrics", ()):
        paper: Optional[float] = m.get("paper")
        result.metrics.append(Metric(m["name"], m["measured"], paper,
                                     m.get("unit", "%")))
    return result
