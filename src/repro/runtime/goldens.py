"""Golden-value snapshots of every paper metric.

A golden file (``tests/goldens/<module>.json``) pins the fast-mode,
seed-derived value of every metric one experiment emits, together with
a per-metric tolerance.  The regression harness
(``tests/test_goldens.py``) re-runs each experiment and asserts

``abs(measured - golden) <= abs_tol + rel_tol * abs(golden)``

so any drift in the reproduced numbers — from a simulator change, a
calibration edit, a seeding change — fails the suite instead of
landing silently.

Workflow:

* regenerate after an intentional change::

      python -m repro.runtime.goldens --update [--jobs N] [--only mod ...]

  (per-metric tolerance overrides in existing files are preserved);
* verify outside pytest::

      python -m repro.runtime.goldens --check

Golden runs use fast mode and base seed 0; the stored ``seed`` field is
the derived per-experiment seed actually passed to ``run()``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.runtime.engine import EngineReport, ExperimentEngine, ExperimentRecord

#: Golden file schema version.
GOLDEN_SCHEMA_VERSION = 1

#: Environment variable overriding the golden directory.
GOLDENS_DIR_ENV = "REPRO_GOLDENS_DIR"

#: Default per-metric tolerances.  Fast-mode runs are deterministic for
#: a fixed seed, so these only need to absorb floating-point noise
#: across platforms/BLAS builds, not statistical variation.
DEFAULT_REL_TOL = 1e-6
DEFAULT_ABS_TOL = 1e-9

#: Base seed the golden snapshots are defined at.
GOLDEN_BASE_SEED = 0


def goldens_dir(directory: Optional[Path] = None) -> Path:
    """Resolve the golden directory (arg > env > ``<repo>/tests/goldens``)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(GOLDENS_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def golden_path(module: str, directory: Optional[Path] = None) -> Path:
    """Path of the golden file for *module*."""
    return goldens_dir(directory) / f"{module}.json"


def load_golden(module: str, directory: Optional[Path] = None) -> dict:
    """Load and return the golden dict for *module* (FileNotFoundError if unpinned)."""
    with open(golden_path(module, directory), "r", encoding="utf-8") as handle:
        return json.load(handle)


def build_golden(record: ExperimentRecord,
                 previous: Optional[dict] = None) -> dict:
    """Golden dict for one successful engine record.

    Tolerances are the defaults unless *previous* (the existing golden
    file) carries per-metric overrides, which are preserved so a
    deliberately widened tolerance survives ``--update``.
    """
    if not record.ok or record.payload is None:
        raise ValueError(f"cannot snapshot failed experiment {record.module}")
    prev_metrics: Dict[str, dict] = {}
    if previous:
        prev_metrics = dict(previous.get("metrics", {}))
    metrics: Dict[str, dict] = {}
    for m in record.payload["metrics"]:
        prev = prev_metrics.get(m["name"], {})
        metrics[m["name"]] = {
            "measured": m["measured"],
            "paper": m["paper"],
            "unit": m["unit"],
            "rel_tol": prev.get("rel_tol", DEFAULT_REL_TOL),
            "abs_tol": prev.get("abs_tol", DEFAULT_ABS_TOL),
        }
    golden = {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "module": record.module,
        "experiment_id": record.payload["experiment_id"],
        "base_seed": GOLDEN_BASE_SEED,
        "seed": record.seed,
        "fast": True,
        "metrics": metrics,
    }
    if not metrics:
        # Metric-less experiments (pure table regenerations) are pinned
        # by an exact hash of their report lines instead.
        golden["lines_sha256"] = _lines_sha256(record.payload["lines"])
    return golden


def _lines_sha256(lines: Sequence[str]) -> str:
    """Exact-match digest of an experiment's report lines."""
    joined = "\n".join(str(line) for line in lines)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def compare_result(result: ExperimentResult, golden: dict) -> List[str]:
    """Diff *result* against *golden*; returns human-readable violations.

    Reports metrics missing from the result, metrics the golden does
    not pin (new experiments/metrics must be snapshotted), and values
    outside ``abs_tol + rel_tol * |golden|``.
    """
    violations: List[str] = []
    produced = {m.name: m for m in result.metrics}
    pinned = golden.get("metrics", {})
    if "lines_sha256" in golden:
        actual_hash = _lines_sha256(result.lines)
        if actual_hash != golden["lines_sha256"]:
            violations.append(
                f"lines: report rows changed (sha256 {actual_hash[:12]}... "
                f"!= golden {golden['lines_sha256'][:12]}...)")
    for name in sorted(set(pinned) - set(produced)):
        violations.append(f"{name}: pinned in golden but not produced")
    for name in sorted(set(produced) - set(pinned)):
        violations.append(f"{name}: produced but has no golden value "
                          "(run `python -m repro.runtime.goldens --update`)")
    for name in sorted(set(pinned) & set(produced)):
        entry = pinned[name]
        expected = float(entry["measured"])
        actual = float(produced[name].measured)
        allowed = (float(entry.get("abs_tol", DEFAULT_ABS_TOL))
                   + float(entry.get("rel_tol", DEFAULT_REL_TOL)) * abs(expected))
        if abs(actual - expected) > allowed:
            violations.append(
                f"{name}: measured {actual!r} drifted from golden "
                f"{expected!r} (|delta| {abs(actual - expected):.3g} > "
                f"allowed {allowed:.3g})")
    return violations


def write_goldens(report: EngineReport,
                  directory: Optional[Path] = None) -> List[Path]:
    """Write one golden file per successful record; returns the paths."""
    target = goldens_dir(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for record in report.records:
        if not record.ok:
            raise RuntimeError(
                f"refusing to update goldens: {record.module} failed:\n"
                f"{record.error}")
        path = golden_path(record.module, target)
        previous: Optional[dict] = None
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(build_golden(record, previous), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written


def check_report(report: EngineReport,
                 directory: Optional[Path] = None) -> List[str]:
    """Compare every record of *report* against its golden file."""
    violations: List[str] = []
    for record in report.records:
        if not record.ok:
            violations.append(f"{record.module}: experiment failed:\n"
                              f"{record.error}")
            continue
        try:
            golden = load_golden(record.module, directory)
        except FileNotFoundError:
            violations.append(f"{record.module}: no golden file "
                              "(run `python -m repro.runtime.goldens --update`)")
            continue
        violations.extend(f"{record.module}.{v}"
                          for v in compare_result(record.to_result(), golden))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.runtime.goldens`` entry point; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.goldens", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--update", action="store_true",
                        help="re-run the experiments and rewrite the goldens")
    action.add_argument("--check", action="store_true",
                        help="re-run the experiments and verify the goldens")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for the experiment runs")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment module names")
    parser.add_argument("--dir", default=None,
                        help="golden directory (default: tests/goldens)")
    args = parser.parse_args(argv)

    engine = ExperimentEngine(jobs=args.jobs, cache=None)
    try:
        report = engine.run(seed=GOLDEN_BASE_SEED, fast=True, only=args.only)
    except ValueError as exc:
        parser.error(str(exc))
    directory = Path(args.dir) if args.dir else None
    if args.update:
        written = write_goldens(report, directory)
        print(f"wrote {len(written)} golden files to "
              f"{goldens_dir(directory)}")
        return 0
    violations = check_report(report, directory)
    for violation in violations:
        print(f"DRIFT {violation}")
    checked = len(report.records)
    if violations:
        print(f"{len(violations)} violation(s) across {checked} experiments")
        return 1
    print(f"all {checked} experiments match their goldens")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
