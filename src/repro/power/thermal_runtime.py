"""Transient thermal co-simulation and temperature-adaptive offsets.

Section 5.7 measures that the safe undervolt depends strongly on core
temperature (-90 mV at 50 degC vs -55 mV at 88 degC).  A SUIT system can
exploit that at runtime: sample the thermal sensor each control period
and widen the efficient-curve offset while the package is cool (cold
starts, duty-cycled load), shrinking it as the silicon heats up.

:class:`ThermalIntegrator` is a first-order RC package model;
:class:`TemperatureAdaptiveOffset` is the controller;
:func:`simulate_adaptive` co-simulates load, temperature and offset and
compares against a fixed-offset run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.power.guardband import TemperatureGuardband


@dataclass
class ThermalIntegrator:
    """First-order thermal model: ``tau * dT/dt = P * R - (T - T_amb)``.

    Attributes:
        ambient_c: ambient temperature.
        resistance_k_per_w: steady-state thermal resistance (K/W).
        time_constant_s: thermal time constant of the package+cooler.
        temperature_c: current core temperature (state).
    """

    ambient_c: float = 25.0
    resistance_k_per_w: float = 0.45
    time_constant_s: float = 8.0
    temperature_c: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.time_constant_s <= 0 or self.resistance_k_per_w <= 0:
            raise ValueError("thermal constants must be positive")
        if self.temperature_c is None:
            self.temperature_c = self.ambient_c

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the model by *dt_s* at *power_w*; returns the new
        temperature.  Uses the exact exponential step (stable for any dt)."""
        if power_w < 0 or dt_s < 0:
            raise ValueError("power and dt must be non-negative")
        import math

        target = self.ambient_c + power_w * self.resistance_k_per_w
        alpha = 1.0 - math.exp(-dt_s / self.time_constant_s)
        self.temperature_c += (target - self.temperature_c) * alpha
        return self.temperature_c

    def steady_state(self, power_w: float) -> float:
        """Equilibrium temperature at constant *power_w*."""
        return self.ambient_c + power_w * self.resistance_k_per_w


@dataclass(frozen=True)
class TemperatureAdaptiveOffset:
    """Map core temperature to the efficient-curve offset.

    The base offset is valid at the hot calibration point (Table 3's
    88 degC); cooler silicon gets the extra headroom the temperature
    guardband measurement licenses, capped for safety.

    Attributes:
        base_offset_v: offset at (and above) the hot reference (negative).
        guardband: the measured temperature/offset relation.
        hot_reference_c: temperature the base offset was calibrated at.
        max_extra_v: cap on additional depth (positive volts).
    """

    base_offset_v: float = -0.070
    guardband: TemperatureGuardband = field(default_factory=TemperatureGuardband)
    hot_reference_c: float = 88.0
    max_extra_v: float = 0.030

    def __post_init__(self) -> None:
        if self.base_offset_v >= 0:
            raise ValueError("base offset must be negative")
        if self.max_extra_v < 0:
            raise ValueError("max_extra_v must be non-negative")

    def offset_at(self, temperature_c: float) -> float:
        """The offset to apply at *temperature_c* (never shallower than
        the base, never deeper than base - max_extra)."""
        headroom = (self.guardband.max_undervolt(temperature_c)
                    - self.guardband.max_undervolt(self.hot_reference_c))
        extra = min(max(-headroom, 0.0), self.max_extra_v)
        return self.base_offset_v - extra


@dataclass
class AdaptiveRunResult:
    """Co-simulation outcome.

    Attributes:
        energy_j: total energy of the run.
        mean_offset_v: time-weighted applied offset.
        max_temperature_c: peak core temperature.
        trajectory: (time, temperature, offset) samples.
    """

    energy_j: float
    mean_offset_v: float
    max_temperature_c: float
    trajectory: List[Tuple[float, float, float]]


def simulate_adaptive(power_at_offset: Callable[[float], float],
                      duty_cycle: Callable[[float], float],
                      duration_s: float,
                      controller: Optional[TemperatureAdaptiveOffset] = None,
                      thermal: Optional[ThermalIntegrator] = None,
                      control_period_s: float = 0.1,
                      fixed_offset_v: Optional[float] = None,
                      ) -> AdaptiveRunResult:
    """Co-simulate temperature and offset control over a load profile.

    Args:
        power_at_offset: package power (W) at full load for an offset.
        duty_cycle: load fraction in [0, 1] as a function of time.
        duration_s: simulated wall-clock.
        controller: adaptive controller (required unless fixed_offset_v).
        thermal: thermal model (fresh default if omitted).
        control_period_s: sensor sampling / offset update period.
        fixed_offset_v: bypass the controller with a constant offset.
    """
    if controller is None and fixed_offset_v is None:
        raise ValueError("need a controller or a fixed offset")
    thermal = thermal if thermal is not None else ThermalIntegrator()
    t = 0.0
    energy = 0.0
    offset_integral = 0.0
    max_temp = thermal.temperature_c
    trajectory: List[Tuple[float, float, float]] = []
    while t < duration_s:
        if fixed_offset_v is not None:
            offset = fixed_offset_v
        else:
            offset = controller.offset_at(thermal.temperature_c)
        load = min(max(duty_cycle(t), 0.0), 1.0)
        # Idle power floor ~12 % of loaded power.
        power = power_at_offset(offset) * (0.12 + 0.88 * load)
        dt = min(control_period_s, duration_s - t)
        thermal.step(power, dt)
        energy += power * dt
        offset_integral += offset * dt
        max_temp = max(max_temp, thermal.temperature_c)
        trajectory.append((t, thermal.temperature_c, offset))
        t += dt
    return AdaptiveRunResult(
        energy_j=energy,
        mean_offset_v=offset_integral / duration_s,
        max_temperature_c=max_temp,
        trajectory=trajectory,
    )
