"""RAPL-style energy metering (paper section 5.4).

The paper measures package power via Intel/AMD's Running Average Power
Limit interface: a monotonically increasing energy counter in fixed
energy units that wraps around at 32 bits.  :class:`RaplCounter`
reproduces that register semantics (quantisation + wraparound) and
:class:`EnergyMeter` is the convenient continuous accumulator the
simulator uses internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default RAPL energy unit: 2^-14 J ~ 61 uJ (Intel ESU default).
DEFAULT_ENERGY_UNIT_J: float = 2.0 ** -14

_WRAP = 2 ** 32


@dataclass
class EnergyMeter:
    """Continuous energy accumulator.

    Attributes:
        energy_j: accumulated energy in joules.
        time_s: accumulated time in seconds.
    """

    energy_j: float = 0.0
    time_s: float = 0.0

    def accumulate(self, power_w: float, duration_s: float) -> None:
        """Add *duration_s* seconds at *power_w* watts."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if power_w < 0:
            raise ValueError("power must be non-negative")
        self.energy_j += power_w * duration_s
        self.time_s += duration_s

    @property
    def mean_power_w(self) -> float:
        """Average power over the accumulated interval (0 if empty)."""
        if self.time_s == 0:
            return 0.0
        return self.energy_j / self.time_s


@dataclass
class RaplCounter:
    """The MSR-visible face of an energy meter.

    Software reads a 32-bit register that counts energy in units of
    ``energy_unit_j`` and silently wraps around; meters must poll often
    enough to observe at most one wrap per interval.

    Attributes:
        energy_unit_j: joules per counter increment.
    """

    energy_unit_j: float = DEFAULT_ENERGY_UNIT_J
    _energy_j: float = field(default=0.0, repr=False)

    def accumulate(self, power_w: float, duration_s: float) -> None:
        """Add energy, as the hardware would while running."""
        if duration_s < 0 or power_w < 0:
            raise ValueError("power and duration must be non-negative")
        self._energy_j += power_w * duration_s

    def read(self) -> int:
        """Current register value (quantised, wrapped at 32 bits)."""
        return int(self._energy_j / self.energy_unit_j) % _WRAP

    @staticmethod
    def delta(before: int, after: int) -> int:
        """Counter increments between two reads, handling one wraparound."""
        for reading in (before, after):
            if not 0 <= reading < _WRAP:
                raise ValueError(f"reading {reading} outside 32-bit range")
        return (after - before) % _WRAP

    def energy_between(self, before: int, after: int) -> float:
        """Joules elapsed between two reads of :meth:`read`."""
        return self.delta(before, after) * self.energy_unit_j
