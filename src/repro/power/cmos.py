"""CMOS circuit power model (paper section 2.1).

The dynamic power of a CMOS circuit is ``P_dyn = C_L * V_DD^2 * f_CLK``:
switching energy per cycle grows with the supply voltage squared, which is
exactly why undervolting pays off so strongly.  Leakage (static) power is
modelled as a lower-order term proportional to ``V_DD`` — accurate enough
for the voltage range a CPU is operated in (a few hundred mV around
nominal).
"""

from __future__ import annotations

from dataclasses import dataclass


def dynamic_power(c_load: float, voltage: float, frequency: float) -> float:
    """Dynamic switching power ``C_L * V^2 * f`` in watts.

    Args:
        c_load: effective switched capacitance in farads.
        voltage: supply voltage in volts.
        frequency: clock frequency in hertz.
    """
    if c_load < 0 or voltage < 0 or frequency < 0:
        raise ValueError("capacitance, voltage and frequency must be non-negative")
    return c_load * voltage * voltage * frequency


def leakage_power(leak_coeff: float, voltage: float) -> float:
    """First-order leakage power ``k * V`` in watts."""
    if leak_coeff < 0 or voltage < 0:
        raise ValueError("leakage coefficient and voltage must be non-negative")
    return leak_coeff * voltage


@dataclass(frozen=True)
class CmosPowerModel:
    """Package power model of a CPU as one big CMOS circuit.

    Attributes:
        c_eff: effective switched capacitance of the whole package (F).
            Captures both the circuit and its average activity factor.
        leak_coeff: leakage coefficient (A): static power = leak_coeff * V.
        uncore_power: constant floor (W) for memory controller, fabric and
            board components inside the measured power domain.
    """

    c_eff: float
    leak_coeff: float = 0.0
    uncore_power: float = 0.0

    def power(self, frequency: float, voltage: float) -> float:
        """Total package power in watts at the given operating point."""
        return (
            dynamic_power(self.c_eff, voltage, frequency)
            + leakage_power(self.leak_coeff, voltage)
            + self.uncore_power
        )

    def power_ratio(self, frequency: float, voltage: float,
                    base_frequency: float, base_voltage: float) -> float:
        """Power at (f, V) relative to power at (f0, V0)."""
        base = self.power(base_frequency, base_voltage)
        if base <= 0:
            raise ValueError("baseline operating point has non-positive power")
        return self.power(frequency, voltage) / base

    @classmethod
    def calibrated(cls, frequency: float, voltage: float, total_power: float,
                   dynamic_share: float = 0.80, uncore_share: float = 0.08) -> "CmosPowerModel":
        """Build a model hitting *total_power* at one measured point.

        Args:
            frequency: measured operating frequency (Hz).
            voltage: measured core voltage (V).
            total_power: measured package power (W) at that point.
            dynamic_share: fraction of total power that is switching power.
            uncore_share: fraction that is a constant uncore floor; the
                remainder is leakage.
        """
        if not 0.0 < dynamic_share <= 1.0:
            raise ValueError("dynamic_share must be in (0, 1]")
        if not 0.0 <= uncore_share < 1.0 or dynamic_share + uncore_share > 1.0:
            raise ValueError("invalid uncore_share")
        p_dyn = total_power * dynamic_share
        p_unc = total_power * uncore_share
        p_leak = total_power - p_dyn - p_unc
        return cls(
            c_eff=p_dyn / (voltage * voltage * frequency),
            leak_coeff=p_leak / voltage,
            uncore_power=p_unc,
        )
