"""Discrete p-state ladders and the OS frequency governor (section 2.4).

Real CPUs expose DVFS as a *discrete* ladder of p-states (100 MHz bins
on Intel), and an OS governor walks it based on utilisation.  SUIT's
curve selection is orthogonal to the governor's p-state selection: both
curves define a voltage for every ladder rung.  This module provides
the ladder, a classic ondemand-style governor, and the combined view a
SUIT system sees (rung x curve -> operating point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.power.dvfs import CurveKind, DVFSCurve, PState

#: Intel p-state granularity.
DEFAULT_BIN_HZ: float = 100e6


@dataclass(frozen=True)
class PStateLadder:
    """The discrete p-states of one DVFS curve.

    Attributes:
        curve: the underlying continuous curve.
        bin_hz: frequency granularity.
    """

    curve: DVFSCurve
    bin_hz: float = DEFAULT_BIN_HZ

    def __post_init__(self) -> None:
        if self.bin_hz <= 0:
            raise ValueError("bin size must be positive")

    @property
    def frequencies(self) -> List[float]:
        """Ladder rungs from f_min to f_max, inclusive."""
        rungs = []
        f = self.curve.f_min
        while f <= self.curve.f_max + 1e-3:
            rungs.append(round(f / self.bin_hz) * self.bin_hz)
            f += self.bin_hz
        return sorted(set(rungs))

    @property
    def n_states(self) -> int:
        return len(self.frequencies)

    def pstate(self, index: int) -> PState:
        """The *index*-th rung (0 = slowest)."""
        return self.curve.pstate(self.frequencies[index])

    def nearest_index(self, frequency: float) -> int:
        """Index of the rung closest to *frequency*."""
        freqs = self.frequencies
        return min(range(len(freqs)), key=lambda i: abs(freqs[i] - frequency))

    def clamp(self, frequency: float) -> float:
        """Snap *frequency* onto the ladder."""
        return self.frequencies[self.nearest_index(frequency)]


@dataclass
class OndemandGovernor:
    """A classic utilisation-driven frequency governor.

    Jumps to the highest rung when utilisation exceeds ``up_threshold``
    (the ondemand heuristic) and steps down proportionally as load
    falls; the sampled decision is sticky for one sampling period.

    Attributes:
        ladder: the p-state ladder to walk.
        up_threshold: utilisation that triggers the jump to max.
        sampling_period_s: governor decision period.
    """

    ladder: PStateLadder
    up_threshold: float = 0.80
    sampling_period_s: float = 10e-3
    _index: int = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0.0 < self.up_threshold <= 1.0:
            raise ValueError("up_threshold must be in (0, 1]")
        if self.sampling_period_s <= 0:
            raise ValueError("sampling period must be positive")
        if self._index is None:
            self._index = self.ladder.n_states - 1

    @property
    def current(self) -> PState:
        return self.ladder.pstate(self._index)

    def sample(self, utilization: float) -> PState:
        """One governor decision for the observed *utilization*."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be a fraction")
        top = self.ladder.n_states - 1
        if utilization >= self.up_threshold:
            self._index = top
        else:
            # Proportional target: freq scaled to current load.
            target = (self.ladder.frequencies[0]
                      + utilization / self.up_threshold
                      * (self.ladder.frequencies[top]
                         - self.ladder.frequencies[0]))
            self._index = self.ladder.nearest_index(target)
        return self.current

    def run_profile(self, utilizations: List[float]) -> List[PState]:
        """Walk a utilisation time series; one decision per sample."""
        return [self.sample(u) for u in utilizations]


@dataclass(frozen=True)
class DualCurveLadder:
    """The SUIT view: every ladder rung exists on both curves.

    Attributes:
        conservative: ladder on the stock curve.
        efficient: ladder on the offset curve (same rungs, lower volts).
    """

    conservative: PStateLadder
    efficient: PStateLadder

    @classmethod
    def from_curve(cls, curve: DVFSCurve, voltage_offset: float,
                   bin_hz: float = DEFAULT_BIN_HZ) -> "DualCurveLadder":
        if voltage_offset >= 0:
            raise ValueError("the efficient curve needs a negative offset")
        return cls(
            conservative=PStateLadder(curve, bin_hz),
            efficient=PStateLadder(
                curve.with_offset(voltage_offset, CurveKind.EFFICIENT), bin_hz),
        )

    def operating_point(self, index: int, efficient: bool) -> PState:
        """The p-state at rung *index* on the selected curve."""
        ladder = self.efficient if efficient else self.conservative
        return ladder.pstate(index)

    def power_saving_at(self, index: int) -> float:
        """Fractional dynamic-power saving of the efficient curve at
        rung *index* (quadratic in the voltage ratio)."""
        cons = self.conservative.pstate(index)
        eff = self.efficient.pstate(index)
        return 1.0 - (eff.voltage / cons.voltage) ** 2
