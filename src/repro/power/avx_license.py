"""AVX frequency licensing (paper sections 5.8 / 6.7, Table 4).

Table 4 contains a surprise the paper attributes to "AVX throttling":
525.x264 and 548.exchange2 get *faster* when compiled without SIMD.
The mechanism is Intel's frequency licensing: wide vector instructions
draw so much current that the core must drop to a lower frequency
license (L1 for heavy AVX2, L2 for AVX-512) before executing them, and
the downclock persists for a hysteresis window (~670 us) after the last
wide instruction.  Sparse AVX use therefore taxes the *scalar* code
around it — removing the vector instructions can win more frequency
than their data-parallelism was worth.

This module models the license state machine and the resulting
effective frequency of a workload, reproducing Table 4's sign structure
mechanistically: dense, efficient SIMD wins; sparse SIMD sprinkled
through hot scalar loops loses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple


class LicenseLevel(enum.IntEnum):
    """Intel-style frequency license levels (higher = slower)."""

    L0 = 0  # scalar / light SIMD: full turbo
    L1 = 1  # heavy AVX2 (FP / multiply-like wide ops)
    L2 = 2  # AVX-512 heavy


@dataclass(frozen=True)
class AvxLicenseModel:
    """License frequency caps and hysteresis.

    Attributes:
        l1_frequency_ratio: frequency at L1 relative to L0 (Skylake-X
            class parts: ~0.85–0.95; client Skylake ~0.97).
        l2_frequency_ratio: frequency at L2 relative to L0 (~0.80).
        hysteresis_s: how long the lower license persists after the
            last wide instruction (~670 us measured on real parts).
        transition_stall_s: stall while the license level drops (the
            core halts ~20 us during the voltage/frequency shuffle).
    """

    l1_frequency_ratio: float = 0.94
    l2_frequency_ratio: float = 0.82
    hysteresis_s: float = 670e-6
    transition_stall_s: float = 20e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.l2_frequency_ratio <= self.l1_frequency_ratio <= 1.0:
            raise ValueError("license ratios must satisfy 0 < L2 <= L1 <= 1")
        if self.hysteresis_s < 0 or self.transition_stall_s < 0:
            raise ValueError("times must be non-negative")

    def frequency_ratio(self, level: LicenseLevel) -> float:
        """Frequency at *level* relative to the scalar license."""
        if level is LicenseLevel.L0:
            return 1.0
        if level is LicenseLevel.L1:
            return self.l1_frequency_ratio
        return self.l2_frequency_ratio


@dataclass
class LicenseTracker:
    """The per-core license state machine.

    Feed it wide-instruction events (time + demanded level); query the
    effective level at any time.  Upgrades (to a slower license) are
    immediate with a stall; downgrades wait out the hysteresis.
    """

    model: AvxLicenseModel
    _level: LicenseLevel = LicenseLevel.L0
    _last_wide_s: float = field(default=-1e9, repr=False)
    transitions: int = 0

    def demand(self, time_s: float, level: LicenseLevel) -> float:
        """A wide instruction at *time_s* demanding *level*.

        Returns:
            The stall charged (0 unless the license had to drop).
        """
        self._expire(time_s)
        self._last_wide_s = time_s
        if level > self._level:
            self._level = level
            self.transitions += 1
            return self.model.transition_stall_s
        return 0.0

    def level_at(self, time_s: float) -> LicenseLevel:
        """The license level in force at *time_s*."""
        self._expire(time_s)
        return self._level

    def _expire(self, time_s: float) -> None:
        if (self._level is not LicenseLevel.L0
                and time_s - self._last_wide_s > self.model.hysteresis_s):
            self._level = LicenseLevel.L0
            self.transitions += 1


def effective_frequency_ratio(
        model: AvxLicenseModel,
        wide_events: Iterable[Tuple[float, LicenseLevel]],
        duration_s: float) -> Tuple[float, int]:
    """Mean frequency ratio of a run with the given wide-instruction events.

    Args:
        model: the license model.
        wide_events: sorted (time, level) wide-instruction occurrences.
        duration_s: total run duration at the L0 clock.

    Returns:
        (time-weighted mean frequency ratio, number of license transitions).
    """
    tracker = LicenseTracker(model)
    t_prev = 0.0
    level_prev = LicenseLevel.L0
    weighted = 0.0
    stall_total = 0.0
    for time_s, level in wide_events:
        if time_s < t_prev:
            raise ValueError("wide events must be time-sorted")
        time_s = min(time_s, duration_s)
        # Segment [t_prev, time_s) runs at level_prev, possibly expiring.
        expiry = tracker._last_wide_s + model.hysteresis_s
        if level_prev is not LicenseLevel.L0 and expiry < time_s:
            weighted += (expiry - t_prev) * model.frequency_ratio(level_prev)
            weighted += (time_s - expiry) * 1.0
        else:
            weighted += (time_s - t_prev) * model.frequency_ratio(
                level_prev if expiry >= time_s else LicenseLevel.L0)
        stall_total += tracker.demand(time_s, level)
        level_prev = tracker.level_at(time_s)
        t_prev = time_s
    # Tail after the last event.
    expiry = tracker._last_wide_s + model.hysteresis_s
    if level_prev is not LicenseLevel.L0 and expiry < duration_s:
        weighted += (expiry - t_prev) * model.frequency_ratio(level_prev)
        weighted += (duration_s - expiry) * 1.0
    else:
        weighted += (duration_s - t_prev) * model.frequency_ratio(level_prev)
    mean_ratio = weighted / duration_s if duration_s > 0 else 1.0
    # Stalls shave additional effective frequency.
    mean_ratio *= duration_s / (duration_s + stall_total)
    return mean_ratio, tracker.transitions


def nosimd_tradeoff(model: AvxLicenseModel, *, simd_speedup: float,
                    wide_event_rate_hz: float, demanded: LicenseLevel,
                    duration_s: float = 1.0) -> Tuple[float, float]:
    """Score ratios of the SIMD and scalar builds of one workload.

    Args:
        model: license model.
        simd_speedup: algorithmic speedup the vector code provides over
            scalar at *equal* frequency (>= 1).
        wide_event_rate_hz: rate of license-demanding instruction bursts.
        demanded: license level the workload's wide instructions need.
        duration_s: nominal run duration.

    Returns:
        (simd_score, scalar_score), both relative to the scalar build at
        full frequency: the SIMD build scores ``speedup x freq_ratio``.
        ``scalar_score > simd_score`` reproduces Table 4's positive
        no-SIMD entries.
    """
    if simd_speedup < 1.0:
        raise ValueError("simd_speedup is >= 1 by definition")
    n = max(int(wide_event_rate_hz * duration_s), 0)
    events = [(k / max(wide_event_rate_hz, 1e-9), demanded) for k in range(n)]
    freq_ratio, _ = effective_frequency_ratio(model, events, duration_s)
    return simd_speedup * freq_ratio, 1.0
