"""TDP throttling, thermal behaviour and undervolting response.

Covers paper section 5.4 (Fig 12, Table 2): most CPUs are limited by their
thermal design power, so lowering the core voltage both cuts power *and*
lets the CPU sustain higher boost frequencies — undervolting can increase
performance.  Also covers the fan/temperature model behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import DVFSCurve


@dataclass(frozen=True)
class TdpModel:
    """Power-limit model: the sustained frequency is the highest one whose
    package power stays below the limit.

    Attributes:
        cmos: package power model.
        curve: conservative DVFS curve giving V(f).
        power_limit: sustained package power limit in watts (PL1).
        f_max: maximum boost frequency in hertz (never exceeded).
    """

    cmos: CmosPowerModel
    curve: DVFSCurve
    power_limit: float
    f_max: float

    def power_at(self, frequency: float, voltage_offset: float = 0.0) -> float:
        """Package power at *frequency* on the curve shifted by *voltage_offset*."""
        return self.cmos.power(frequency, self.curve.voltage_at(frequency) + voltage_offset)

    def sustained_frequency(self, voltage_offset: float = 0.0) -> float:
        """Highest frequency (<= f_max) within the power limit at *voltage_offset*.

        Solved by bisection on the monotone power(frequency) function.
        """
        if self.power_at(self.f_max, voltage_offset) <= self.power_limit:
            return self.f_max
        lo, hi = self.curve.f_min, self.f_max
        if self.power_at(lo, voltage_offset) > self.power_limit:
            return lo
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.power_at(mid, voltage_offset) <= self.power_limit:
                lo = mid
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class UndervoltResponse:
    """Calibrated per-CPU response to an undervolt offset (Table 2, Fig 12).

    Real workloads alternate between power-limited phases (where the
    undervolt converts into higher sustained frequency at constant power)
    and unconstrained phases (where it converts into lower power).  A
    thermal-headroom term captures boost algorithms granting extra bins
    when the package runs cooler even without hitting the power limit.

    Attributes:
        tdp: power-limit model of the package.
        nominal_frequency: average core clock of the workload mix at 0 mV.
        tdp_bound_fraction: fraction of runtime spent at the power limit.
        perf_sensitivity: d(score)/d(frequency) ratio (< 1 for
            memory-bound workload mixes).
        thermal_boost_per_volt: extra relative frequency gained per volt of
            undervolt from thermal headroom (boost-bin effect).
        voltage_leverage: effective multiplier on the offset when computing
            power, calibrated at the -97 mV reference point.  Workloads
            spend part of their time in lower-voltage p-states where a
            fixed absolute offset is relatively larger, so the
            fleet-average power reduction exceeds the one computed at the
            nominal operating point alone.
        voltage_leverage_slope: change of the leverage per volt of
            additional undervolt (empirical: the measured power response
            in Table 2 is super-quadratic in the offset; shallow offsets
            are partially absorbed by load-line regulation).
    """

    tdp: TdpModel
    nominal_frequency: float
    tdp_bound_fraction: float
    perf_sensitivity: float
    thermal_boost_per_volt: float = 0.0
    voltage_leverage: float = 1.0
    voltage_leverage_slope: float = 0.0

    _LEVERAGE_REF_V = 0.097  # leverage is quoted at the paper's -97 mV point

    def _effective_offset(self, voltage_offset: float) -> float:
        """Offset scaled by the (offset-dependent) leverage."""
        depth = abs(min(voltage_offset, 0.0))
        leverage = self.voltage_leverage + self.voltage_leverage_slope * (
            depth - self._LEVERAGE_REF_V)
        return voltage_offset * max(leverage, 0.2)

    def frequency_ratio(self, voltage_offset: float) -> float:
        """Mean sustained frequency at *voltage_offset* relative to nominal."""
        f0 = self.nominal_frequency
        f_tdp0 = self.tdp.sustained_frequency(0.0)
        f_tdp = self.tdp.sustained_frequency(voltage_offset)
        tdp_gain = f_tdp / f_tdp0 - 1.0
        thermal_gain = self.thermal_boost_per_volt * abs(min(voltage_offset, 0.0))
        f_mean = f0 * (1.0 + self.tdp_bound_fraction * tdp_gain + thermal_gain)
        return min(f_mean, self.tdp.f_max) / f0

    def power_ratio(self, voltage_offset: float) -> float:
        """Mean package power at *voltage_offset* relative to nominal.

        Power-limited phases stay pinned at the limit (ratio 1); in
        unconstrained phases power follows the CMOS model at the boosted
        frequency and reduced voltage.
        """
        f0 = self.nominal_frequency
        v0 = self.tdp.curve.voltage_at(f0)
        f1 = f0 * self.frequency_ratio(voltage_offset)
        v1 = v0 + self._effective_offset(voltage_offset)
        free = self.tdp.cmos.power_ratio(f1, v1, f0, v0)
        theta = self.tdp_bound_fraction
        return theta * 1.0 + (1.0 - theta) * free

    def score_ratio(self, voltage_offset: float) -> float:
        """Benchmark score (1 / duration) relative to nominal."""
        return 1.0 + self.perf_sensitivity * (self.frequency_ratio(voltage_offset) - 1.0)

    def efficiency_ratio(self, voltage_offset: float) -> float:
        """Efficiency change factor, paper definition (section 5.4):
        ``1 / (duration_ratio * power_ratio)``."""
        duration_ratio = 1.0 / self.score_ratio(voltage_offset)
        return 1.0 / (duration_ratio * self.power_ratio(voltage_offset))


@dataclass(frozen=True)
class FanCurve:
    """Fan-speed to core-temperature model (Table 3).

    Core temperature = ambient + dissipated power * thermal resistance,
    with the cooler's thermal resistance falling like 1/sqrt(rpm).
    Calibrated to the paper's i9-9900K measurements: 50 degC at 1800 rpm
    and 88 degC at 300 rpm while dissipating ~120 W at 4 GHz.

    Attributes:
        ambient_c: room temperature in degC.
        resistance_coeff: thermal resistance at 1 rpm (K/W); the effective
            resistance is ``resistance_coeff / sqrt(rpm)``.
    """

    ambient_c: float = 25.0
    resistance_coeff: float = 8.84

    def core_temperature(self, power_w: float, fan_rpm: float) -> float:
        """Steady-state core temperature at *power_w* and *fan_rpm*."""
        if fan_rpm <= 0:
            raise ValueError("fan speed must be positive")
        if power_w < 0:
            raise ValueError("power must be non-negative")
        return self.ambient_c + power_w * self.resistance_coeff / fan_rpm ** 0.5
