"""DVFS curves and p-states (paper sections 2.4, 3.2, Fig 4 and Fig 13).

A DVFS curve is a monotone mapping from clock frequency to the minimum
supply voltage (including guardband) at which the CPU operates reliably.
Vendors publish it as a discrete set of p-states; we model the underlying
curve as piecewise-linear interpolation through measured anchor points and
derive p-states from it.

SUIT adds a second, *efficient* curve: the conservative curve shifted down
by the instruction-voltage-variation margin (and optionally part of the
aging guardband), valid only while the faultable instruction set is
disabled.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple


class CurveKind(enum.Enum):
    """Which DVFS curve a p-state belongs to."""

    CONSERVATIVE = "conservative"
    EFFICIENT = "efficient"


class SwitchPath(enum.Enum):
    """How to move from the efficient to the conservative curve (Fig 4).

    ``CF`` keeps the voltage and lowers the frequency; ``CV`` keeps the
    frequency and raises the voltage.
    """

    CF = "frequency"
    CV = "voltage"


@dataclass(frozen=True)
class PState:
    """One DVFS operating point.

    Attributes:
        frequency: core clock in hertz.
        voltage: core supply voltage in volts.
        kind: the curve this p-state lies on.
    """

    frequency: float
    voltage: float
    kind: CurveKind = CurveKind.CONSERVATIVE

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")
        if self.voltage <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage}")


#: Anchor points (Hz, V) of the stable frequency-voltage pairs measured on
#: the Intel Core i9-9900K in paper Fig 13.  The 4->5 GHz gradient is the
#: 183 mV/GHz the paper uses to size the aging guardband; 4 GHz sits at
#: 991 mV (section 5.7) and 5 GHz at 1.174 V (section 5.6).
I9_9900K_CURVE_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.8e9, 0.760),
    (1.0e9, 0.775),
    (2.0e9, 0.840),
    (3.0e9, 0.910),
    (4.0e9, 0.991),
    (5.0e9, 1.174),
)


class DVFSCurve:
    """Piecewise-linear voltage(frequency) curve.

    The curve must be strictly increasing in both coordinates; this makes
    it invertible, which :meth:`frequency_at` relies on.
    """

    def __init__(self, points: Sequence[Tuple[float, float]],
                 kind: CurveKind = CurveKind.CONSERVATIVE,
                 name: str = "") -> None:
        """Args:
            points: (frequency_hz, voltage_v) anchors, any order.
            kind: which role this curve plays.
            name: optional label for reports.
        """
        pts = sorted((float(f), float(v)) for f, v in points)
        if len(pts) < 2:
            raise ValueError("a DVFS curve needs at least two points")
        for (f0, v0), (f1, v1) in zip(pts, pts[1:]):
            if f1 <= f0:
                raise ValueError("duplicate frequency in DVFS curve")
            if v1 <= v0:
                raise ValueError("DVFS curve voltage must strictly increase with frequency")
        if pts[0][1] <= 0:
            raise ValueError("voltages must be positive")
        self._freqs = [p[0] for p in pts]
        self._volts = [p[1] for p in pts]
        self.kind = kind
        self.name = name

    @property
    def points(self) -> List[Tuple[float, float]]:
        """The (frequency, voltage) anchors, ascending in frequency."""
        return list(zip(self._freqs, self._volts))

    @property
    def f_min(self) -> float:
        return self._freqs[0]

    @property
    def f_max(self) -> float:
        return self._freqs[-1]

    def voltage_at(self, frequency: float) -> float:
        """Minimum stable voltage at *frequency* (linear extrapolation
        beyond the anchor range)."""
        fs, vs = self._freqs, self._volts
        i = bisect.bisect_left(fs, frequency)
        if i == 0:
            i = 1
        elif i == len(fs):
            i = len(fs) - 1
        f0, f1 = fs[i - 1], fs[i]
        v0, v1 = vs[i - 1], vs[i]
        return v0 + (v1 - v0) * (frequency - f0) / (f1 - f0)

    def frequency_at(self, voltage: float) -> float:
        """Maximum stable frequency at *voltage* (inverse of the curve)."""
        fs, vs = self._freqs, self._volts
        i = bisect.bisect_left(vs, voltage)
        if i == 0:
            i = 1
        elif i == len(vs):
            i = len(vs) - 1
        f0, f1 = fs[i - 1], fs[i]
        v0, v1 = vs[i - 1], vs[i]
        return f0 + (f1 - f0) * (voltage - v0) / (v1 - v0)

    def gradient_at(self, frequency: float) -> float:
        """Local slope dV/df in volts per hertz at *frequency*."""
        fs, vs = self._freqs, self._volts
        i = bisect.bisect_left(fs, frequency)
        if i == 0:
            i = 1
        elif i == len(fs):
            i = len(fs) - 1
        return (vs[i] - vs[i - 1]) / (fs[i] - fs[i - 1])

    def with_offset(self, voltage_offset: float,
                    kind: CurveKind = CurveKind.EFFICIENT,
                    name: str = "") -> "DVFSCurve":
        """A copy of this curve shifted by *voltage_offset* volts.

        SUIT's efficient curve is the conservative one shifted by the
        (negative) undervolting margin.
        """
        return DVFSCurve(
            [(f, v + voltage_offset) for f, v in self.points],
            kind=kind,
            name=name or (self.name + f"{voltage_offset * 1e3:+.0f}mV"),
        )

    def pstate(self, frequency: float) -> PState:
        """The p-state on this curve at *frequency*."""
        return PState(frequency, self.voltage_at(frequency), self.kind)

    def pstates(self, frequencies: Sequence[float]) -> List[PState]:
        """P-states at each of *frequencies*."""
        return [self.pstate(f) for f in frequencies]


def modified_imul_curve(conservative: DVFSCurve,
                        old_latency: int = 3,
                        new_latency: int = 4) -> DVFSCurve:
    """Safe voltages for IMUL after a static latency increase (Fig 13).

    Stretching IMUL from ``old_latency`` to ``new_latency`` pipeline stages
    gives each stage ``new/old`` times the time budget, which is equivalent
    to running the original circuit at ``old/new`` of the clock: the safe
    voltage at frequency ``f`` becomes the conservative voltage at
    ``f * old/new``.  At 5 GHz on the i9-9900K curve this is roughly
    220 mV below the conservative voltage — the paper's best case — and it
    shrinks toward low frequencies where the curve flattens.
    """
    if new_latency <= old_latency:
        raise ValueError("latency must increase")
    scale = old_latency / new_latency
    return DVFSCurve(
        [(f, conservative.voltage_at(f * scale)) for f, _ in conservative.points],
        kind=CurveKind.EFFICIENT,
        name=f"imul-{new_latency}cyc",
    )


def switch_targets(efficient: DVFSCurve, conservative: DVFSCurve,
                   frequency: float) -> Tuple[PState, PState]:
    """The two conservative targets reachable from the efficient p-state
    at *frequency* (Fig 4).

    Returns:
        ``(cf, cv)`` where ``cf`` keeps the current (efficient) voltage and
        lowers the frequency onto the conservative curve, and ``cv`` keeps
        the frequency and raises the voltage onto the conservative curve.
    """
    v_eff = efficient.voltage_at(frequency)
    cf = PState(conservative.frequency_at(v_eff), v_eff, CurveKind.CONSERVATIVE)
    cv = PState(frequency, conservative.voltage_at(frequency), CurveKind.CONSERVATIVE)
    return cf, cv
