"""CMOS power and DVFS substrate.

Models the physical layer SUIT builds on: dynamic/leakage power of CMOS
circuits (paper section 2.1), voltage-frequency curves and p-states
(section 2.4, Fig 13), the aging and temperature guardbands (sections
2.2, 5.6, 5.7, Fig 1/2), TDP-limited boost behaviour under undervolting
(section 5.4, Fig 12, Table 2) and a RAPL-style energy meter.
"""

from repro.power.cmos import CmosPowerModel, dynamic_power, leakage_power
from repro.power.dvfs import (
    PState,
    DVFSCurve,
    CurveKind,
    SwitchPath,
    modified_imul_curve,
    switch_targets,
    I9_9900K_CURVE_POINTS,
)
from repro.power.guardband import (
    AgingModel,
    TemperatureGuardband,
    GuardbandBudget,
    INSTRUCTION_VARIATION_V,
)
from repro.power.thermal import TdpModel, UndervoltResponse, FanCurve
from repro.power.rapl import EnergyMeter, RaplCounter
from repro.power.pstates import PStateLadder, OndemandGovernor, DualCurveLadder
from repro.power.thermal_runtime import ThermalIntegrator, TemperatureAdaptiveOffset
from repro.power.avx_license import AvxLicenseModel, LicenseLevel, LicenseTracker

__all__ = [
    "CmosPowerModel",
    "dynamic_power",
    "leakage_power",
    "PState",
    "DVFSCurve",
    "CurveKind",
    "SwitchPath",
    "modified_imul_curve",
    "switch_targets",
    "I9_9900K_CURVE_POINTS",
    "AgingModel",
    "TemperatureGuardband",
    "GuardbandBudget",
    "INSTRUCTION_VARIATION_V",
    "TdpModel",
    "UndervoltResponse",
    "FanCurve",
    "EnergyMeter",
    "RaplCounter",
    "PStateLadder",
    "OndemandGovernor",
    "DualCurveLadder",
    "ThermalIntegrator",
    "TemperatureAdaptiveOffset",
    "AvxLicenseModel",
    "LicenseLevel",
    "LicenseTracker",
]
