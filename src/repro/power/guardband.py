"""Voltage guardband models (paper sections 2.2, 3.1, 5.6, 5.7).

The supply voltage of a shipped CPU sits well above the nominal minimum to
absorb process variation, aging (BTI / hot-carrier injection), temperature
and supply noise (Fig 1).  SUIT does *not* consume the aging or
temperature guardband; its margin comes from the variation in per-
instruction voltage requirements (Fig 2), optionally plus a small,
explicitly budgeted fraction of the aging guardband.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.dvfs import DVFSCurve

#: Average instruction-voltage-variation margin across the CPUs measured
#: by Murdock et al. and Kogler et al. that exhibit the effect
#: (n = 6, sigma = 44 mV, max 150 mV) — paper section 3.1.
INSTRUCTION_VARIATION_V: float = 0.070

#: Maximum observed instruction voltage variation (Murdock et al.).
INSTRUCTION_VARIATION_MAX_V: float = 0.150


@dataclass(frozen=True)
class AgingModel:
    """FinFET aging model (section 5.6).

    Sub-20 nm FinFET propagation delay degrades by ~15 % over 10 years at
    >100 degC.  To keep the shipped maximum frequency reachable for the
    whole lifetime, the day-one voltage must support a 15 % higher
    frequency than nominal — that surplus is the aging guardband.

    Attributes:
        lifetime_degradation: fractional propagation-delay increase over
            the rated lifetime (0.15 for 10 years at high temperature).
        lifetime_years: rated lifetime in years.
        reference_temp_c: temperature the worst-case degradation assumes.
    """

    lifetime_degradation: float = 0.15
    lifetime_years: float = 10.0
    reference_temp_c: float = 100.0

    def degradation(self, years: float, temp_c: float = 100.0) -> float:
        """Fractional delay degradation after *years* at *temp_c*.

        Degradation follows a sub-linear (square-root, BTI-like) time law
        and roughly halves for every 25 degC below the reference
        temperature (Arrhenius-style acceleration).
        """
        if years < 0:
            raise ValueError("years must be non-negative")
        time_factor = (years / self.lifetime_years) ** 0.5
        temp_factor = 2.0 ** ((temp_c - self.reference_temp_c) / 25.0)
        return self.lifetime_degradation * time_factor * min(temp_factor, 1.0)

    def guardband_voltage(self, curve: DVFSCurve, frequency: float) -> float:
        """Aging guardband in volts at *frequency* on *curve* (section 5.6).

        The guardband must cover a ``lifetime_degradation`` higher
        frequency at day one: ``f * 0.15 * dV/df``.  For the i9-9900K at
        5 GHz with the 183 mV/GHz top-end gradient this yields ~137 mV
        (about 12 % of the supply voltage), matching the paper.
        """
        return frequency * self.lifetime_degradation * curve.gradient_at(frequency)

    def guardband_fraction(self, curve: DVFSCurve, frequency: float) -> float:
        """Aging guardband as a fraction of the supply voltage."""
        return self.guardband_voltage(curve, frequency) / curve.voltage_at(frequency)


@dataclass(frozen=True)
class TemperatureGuardband:
    """Temperature guardband (section 5.7, Table 3).

    The minimum stable voltage rises with core temperature.  The paper
    measures the maximum undervolt offset at two operating points of an
    i9-9900K: -90 mV at 50 degC and -55 mV at 88 degC, i.e. a 35 mV
    (~3.5 % of the 991 mV supply at 4 GHz) temperature guardband; we
    interpolate linearly between (and beyond) those anchors.

    Attributes:
        cool_temp_c / cool_offset_v: low-temperature anchor.
        hot_temp_c / hot_offset_v: high-temperature anchor.
    """

    cool_temp_c: float = 50.0
    cool_offset_v: float = -0.090
    hot_temp_c: float = 88.0
    hot_offset_v: float = -0.055

    def max_undervolt(self, temp_c: float) -> float:
        """Maximum safe undervolt offset (negative volts) at *temp_c*."""
        span = self.hot_temp_c - self.cool_temp_c
        frac = (temp_c - self.cool_temp_c) / span
        return self.cool_offset_v + frac * (self.hot_offset_v - self.cool_offset_v)

    def guardband_voltage(self) -> float:
        """Size of the temperature guardband in volts (positive)."""
        return abs(self.cool_offset_v - self.hot_offset_v)


@dataclass(frozen=True)
class GuardbandBudget:
    """SUIT's undervolting budget (section 3.1, Fig 2).

    SUIT's efficient-curve offset is the instruction-voltage-variation
    margin, optionally plus a bounded fraction of the aging guardband
    (justified by the short procurement cycles of data-center CPUs and
    well-controlled core temperatures).

    Attributes:
        instruction_variation_v: margin from disabling faultable
            instructions (positive volts; default 70 mV, the study mean).
        aging_guardband_v: full aging guardband in volts (137 mV for the
            i9-9900K at 5 GHz).
        aging_fraction: fraction of the aging guardband consumed
            (paper evaluates 0 and 0.20).
    """

    instruction_variation_v: float = INSTRUCTION_VARIATION_V
    aging_guardband_v: float = 0.137
    aging_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.aging_fraction <= 1.0:
            raise ValueError("aging_fraction must be in [0, 1]")
        if self.instruction_variation_v < 0 or self.aging_guardband_v < 0:
            raise ValueError("guardband components must be non-negative")

    def offset(self) -> float:
        """The efficient-curve voltage offset in volts (negative).

        With the defaults plus ``aging_fraction=0.20`` this is the paper's
        combined -97 mV operating point.
        """
        return -(self.instruction_variation_v + self.aging_fraction * self.aging_guardband_v)
