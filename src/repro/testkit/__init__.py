"""repro.testkit — deterministic chaos harness + differential oracle.

The chaos core (:mod:`repro.testkit.chaos`) and the injectable clocks
(:mod:`repro.testkit.clock`) are imported eagerly: production modules
depend on them (`inject` hooks, `clock` defaults) and they are
dependency-free.  The oracle and soak runner import the full service
stack, so they load lazily — ``repro.testkit.DifferentialOracle``
works, but merely importing :mod:`repro.testkit` from a worker process
stays cheap and cycle-free.
"""

from repro.testkit.chaos import (
    ENV_PLAN,
    ChaosController,
    FaultPlan,
    FaultSpec,
    PlannedFault,
    get_controller,
    inject,
    install_controller,
)
from repro.testkit.clock import SYSTEM_CLOCK, FakeClock, SystemClock

__all__ = [
    "ENV_PLAN",
    "ChaosController",
    "FaultPlan",
    "FaultSpec",
    "PlannedFault",
    "get_controller",
    "inject",
    "install_controller",
    "SYSTEM_CLOCK",
    "FakeClock",
    "SystemClock",
    "DifferentialOracle",
    "OracleReport",
    "ChaosSoak",
    "SoakConfig",
]

_LAZY = {
    "DifferentialOracle": "repro.testkit.oracle",
    "OracleReport": "repro.testkit.oracle",
    "ChaosSoak": "repro.testkit.soak",
    "SoakConfig": "repro.testkit.soak",
}


def __getattr__(name):
    """Lazy-load the oracle/soak layer on first attribute access."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.testkit' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
