"""Deterministic, seed-driven fault injection for the whole sim stack.

SUIT's premise is surviving induced faults; this module holds the
reproduction stack to the same standard.  Production modules call
:func:`inject` at named **hook points** ("sites"):

* ``workers.dispatch`` / ``workers.batch`` / ``workers.request`` —
  the sharded worker tier (kill a pool worker mid-batch, hold a worker
  past its deadline, fail one request).
* ``server.admission`` / ``server.frame`` — the asyncio server
  (admission-queue overflow, connection drop, garbled frame).
* ``tracestore.publish`` / ``tracestore.attach`` /
  ``tracestore.segment`` — the shared trace store (publish failure,
  stale/corrupt manifest, shm segment unlinked under readers).
* ``cache.entry`` / ``cache.put`` — the on-disk result cache
  (corrupted / truncated / vanished entries, write failures).
* ``fleet.route`` / ``fleet.forward`` / ``fleet.health`` — the fleet
  gateway (routing fault on the ring walk, forwarding failure after a
  node was picked, health-probe failure demoting a live node).

When no :class:`ChaosController` is active, :func:`inject` is a
two-comparison no-op — the hooks cost nothing in production.

Determinism: a :class:`FaultPlan` is generated **up front** from a
seed.  For every (site, kind) pair a private PRNG — seeded by
``sha256(seed, site, kind)`` — walks invocation indices ``1..horizon``
and marks which invocations fire.  The plan is a pure function of
``(seed, specs, horizon)``; replaying a chaos run with the same seed
replays the identical schedule.  Process-killing faults never fire on
a site's *first* invocation, so a freshly recycled worker can always
make progress (no livelock under high kill rates).

Worker processes participate through the ``REPRO_CHAOS_PLAN``
environment variable: :meth:`ChaosController.activate` serialises the
plan to a JSON file and exports its path; pool workers lazily load it
on their first :func:`inject` call and append every fired fault to a
shared ``fired.jsonl`` log (O_APPEND, one JSON object per line), which
:meth:`ChaosController.report` aggregates.  Every fired injection is
also counted in the :mod:`repro.obs` default registry
(``chaos_injections_total{site=...}``).

Fault kinds with built-in effects:

* ``raise``   — raise ``exception`` (resolved from a fixed whitelist).
* ``crash``   — ``os._exit(3)``: a hard process death, no cleanup.
* ``sleep``   — ``time.sleep(param)``: a slow worker / stalled stage.
* ``corrupt`` — bit-flip and truncate the file at ``ctx["path"]``.
* ``unlink``  — delete the file at ``ctx["path"]``, or unlink the
  POSIX shm segment named ``ctx["shm"]``.

Any other kind (``kill_worker``, ``garble``, ...) has no built-in
effect; :func:`inject` returns the fired kinds and the *site*
interprets them — that is how value-level faults (e.g. rewriting a
protocol frame) stay next to the code that owns the value.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment variable carrying the plan file path to worker processes.
ENV_PLAN = "REPRO_CHAOS_PLAN"

#: Exit code used by the ``crash`` effect (mirrors the ``__crash__``
#: workload hook of :mod:`repro.service.workers`).
CRASH_EXIT_CODE = 3

#: Fault kinds whose effect kills the current process; the plan
#: generator never schedules these on a site's first invocation.
_PROCESS_KILLING_KINDS = frozenset({"crash"})

#: Exceptions the ``raise`` kind may throw, by name.  A whitelist, not
#: ``eval``: the plan file crosses a process boundary.
def _exception_factory(name: str) -> BaseException:
    if name == "AdmissionError":
        from repro.service.scheduler import AdmissionError

        return AdmissionError(1 << 30, 0.05)
    if name == "BrokenExecutor":
        from concurrent.futures import BrokenExecutor

        return BrokenExecutor("injected executor breakage")
    plain = {
        "OSError": OSError,
        "ConnectionError": ConnectionError,
        "ConnectionResetError": ConnectionResetError,
        "TimeoutError": TimeoutError,
        "RuntimeError": RuntimeError,
        "ValueError": ValueError,
    }
    if name not in plain:
        raise ValueError(f"unknown injectable exception {name!r}")
    return plain[name]("injected fault")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault type at one site.

    Attributes:
        site: hook-point name the fault applies to.
        kind: fault kind ("raise", "crash", "sleep", "corrupt",
            "unlink", or a site-interpreted kind).
        rate: per-invocation firing probability used when generating
            the plan (0..1).
        max_fires: cap on how many invocations fire (None: unlimited).
        param: numeric parameter (sleep seconds).
        exception: exception name for the ``raise`` kind.
    """

    site: str
    kind: str
    rate: float
    max_fires: Optional[int] = None
    param: float = 0.0
    exception: str = "OSError"

    def to_json_dict(self) -> dict:
        """Plain-JSON form (plan file / report)."""
        return {"site": self.site, "kind": self.kind, "rate": self.rate,
                "max_fires": self.max_fires, "param": self.param,
                "exception": self.exception}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultSpec":
        """Rebuild from :meth:`to_json_dict` output."""
        return cls(site=payload["site"], kind=payload["kind"],
                   rate=float(payload["rate"]),
                   max_fires=payload.get("max_fires"),
                   param=float(payload.get("param", 0.0)),
                   exception=payload.get("exception", "OSError"))


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled injection: fire *kind* on invocation *index* of *site*."""

    site: str
    index: int
    kind: str
    param: float = 0.0
    exception: str = "OSError"

    def to_json_dict(self) -> dict:
        """Plain-JSON form."""
        return {"site": self.site, "index": self.index, "kind": self.kind,
                "param": self.param, "exception": self.exception}


def _site_rng(seed: int, site: str, kind: str) -> random.Random:
    """The private PRNG of one (site, kind) schedule."""
    material = f"{seed}\x1f{site}\x1f{kind}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class FaultPlan:
    """The full, deterministic injection schedule of one chaos run.

    Generate with :meth:`generate` — a pure function of
    ``(seed, specs, horizon)`` — or rebuild a serialized plan with
    :meth:`from_json_dict`.
    """

    seed: int
    horizon: int
    specs: List[FaultSpec] = field(default_factory=list)
    entries: List[PlannedFault] = field(default_factory=list)
    _by_site: Dict[str, Dict[int, List[PlannedFault]]] = \
        field(default_factory=dict, repr=False)

    @classmethod
    def generate(cls, seed: int, specs: Sequence[FaultSpec],
                 horizon: int) -> "FaultPlan":
        """Draw the schedule for *specs* over ``1..horizon`` invocations."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        entries: List[PlannedFault] = []
        for spec in sorted(specs, key=lambda s: (s.site, s.kind)):
            rng = _site_rng(seed, spec.site, spec.kind)
            fired = 0
            first_allowed = 2 if spec.kind in _PROCESS_KILLING_KINDS else 1
            for index in range(1, horizon + 1):
                hit = rng.random() < spec.rate
                if not hit or index < first_allowed:
                    continue
                if spec.max_fires is not None and fired >= spec.max_fires:
                    break
                fired += 1
                entries.append(PlannedFault(
                    site=spec.site, index=index, kind=spec.kind,
                    param=spec.param, exception=spec.exception))
        plan = cls(seed=int(seed), horizon=int(horizon),
                   specs=list(specs), entries=entries)
        plan._index()
        return plan

    def _index(self) -> None:
        """Build the by-site lookup table."""
        table: Dict[str, Dict[int, List[PlannedFault]]] = {}
        for entry in self.entries:
            table.setdefault(entry.site, {}).setdefault(
                entry.index, []).append(entry)
        self._by_site = table

    def at(self, site: str, index: int) -> List[PlannedFault]:
        """The faults scheduled on invocation *index* of *site*."""
        return self._by_site.get(site, {}).get(index, [])

    @property
    def sites(self) -> Tuple[str, ...]:
        """Every site with at least one scheduled fault, sorted."""
        return tuple(sorted(self._by_site))

    def to_json_dict(self) -> dict:
        """Plain-JSON form (deterministic: sorted entries)."""
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "specs": [s.to_json_dict() for s in self.specs],
            "entries": [e.to_json_dict() for e in sorted(
                self.entries, key=lambda e: (e.site, e.index, e.kind))],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild from :meth:`to_json_dict` output."""
        plan = cls(
            seed=int(payload["seed"]), horizon=int(payload["horizon"]),
            specs=[FaultSpec.from_json_dict(s) for s in payload["specs"]],
            entries=[PlannedFault(site=e["site"], index=int(e["index"]),
                                  kind=e["kind"],
                                  param=float(e.get("param", 0.0)),
                                  exception=e.get("exception", "OSError"))
                     for e in payload["entries"]])
        plan._index()
        return plan


def _corrupt_file(path: str) -> None:
    """Bit-flip the first byte and truncate the file at *path* — the
    on-disk damage a torn write or rotting medium leaves behind."""
    try:
        with open(path, "r+b") as handle:
            data = handle.read()
            if not data:
                return
            handle.seek(0)
            handle.write(bytes([data[0] ^ 0xFF]) + data[1:len(data) // 2])
            handle.truncate()
    except OSError:
        pass  # the file vanished first: that is chaos too


def _unlink_target(ctx: dict) -> None:
    """Delete the file at ``ctx["path"]`` or the shm segment ``ctx["shm"]``."""
    path = ctx.get("path")
    if path is not None:
        try:
            os.unlink(path)
        except OSError:
            pass
        return
    shm_name = ctx.get("shm")
    if shm_name is not None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=shm_name)
            segment.unlink()
            segment.close()
        except (OSError, ValueError):
            pass


class ChaosController:
    """Executes a :class:`FaultPlan` against the live hook points.

    One controller per process; :meth:`activate` installs it as the
    process-wide target of :func:`inject` and (optionally) exports the
    plan to child processes.  Thread-safe: the asyncio loop, executor
    callback threads and thread-tier workers may all hit sites
    concurrently — each site keeps one atomic invocation counter.

    Args:
        plan: the schedule to execute.
        log_path: append-only JSONL file recording every fired fault;
            shared with worker processes so :meth:`report` sees their
            firings too.  None keeps the record in-memory only.
    """

    def __init__(self, plan: FaultPlan,
                 log_path: Optional[Path] = None) -> None:
        """See class docstring."""
        import threading

        self.plan = plan
        self.log_path = Path(log_path) if log_path is not None else None
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._fired: List[dict] = []
        self._plan_dir: Optional[Path] = None

    # -- the hot path ---------------------------------------------------

    def on_inject(self, site: str, ctx: dict) -> Tuple[str, ...]:
        """Count one invocation of *site*; fire whatever the plan says.

        Returns the kinds of fired faults that have **no** built-in
        effect, for the site to interpret.  Built-in effects run here
        (and ``raise`` kinds propagate out of this call).
        """
        with self._lock:
            index = self._counters.get(site, 0) + 1
            self._counters[site] = index
        faults = self.plan.at(site, index)
        if not faults:
            return ()
        site_kinds: List[str] = []
        for fault in faults:
            self._record(fault, ctx)
            if fault.kind == "raise":
                raise _exception_factory(fault.exception)
            if fault.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if fault.kind == "sleep":
                time.sleep(fault.param)
            elif fault.kind == "corrupt":
                if ctx.get("path") is not None:
                    _corrupt_file(str(ctx["path"]))
            elif fault.kind == "unlink":
                _unlink_target(ctx)
            else:
                site_kinds.append(fault.kind)
        return tuple(site_kinds)

    def _record(self, fault: PlannedFault, ctx: dict) -> None:
        """Log one firing (memory, JSONL file, obs metrics) — before the
        effect runs, so even a ``crash`` leaves its trace."""
        entry = {"site": fault.site, "index": fault.index,
                 "kind": fault.kind, "pid": os.getpid()}
        with self._lock:
            self._fired.append(entry)
        if self.log_path is not None:
            line = json.dumps(entry, sort_keys=True) + "\n"
            try:
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(line)
            except OSError:
                pass  # the log is best-effort; the plan is the truth
        try:
            from repro.obs.registry import get_registry

            get_registry().counter(
                "chaos_injections_total", "chaos faults fired, by site",
                label_names=("site",)).inc(site=fault.site)
        except Exception:  # pragma: no cover - metrics must never fault
            pass

    # -- results --------------------------------------------------------

    def invocations(self) -> Dict[str, int]:
        """Per-site invocation counts seen by *this* process."""
        with self._lock:
            return dict(self._counters)

    def fired(self) -> List[dict]:
        """Every fired fault, all processes, sorted ``(site, index, kind)``.

        Reads the shared JSONL log when one is attached (covering
        worker-process firings); otherwise the in-memory record.
        """
        entries: List[dict] = []
        if self.log_path is not None and self.log_path.exists():
            try:
                with open(self.log_path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            entries.append(json.loads(line))
            except (OSError, ValueError):
                entries = []
        if not entries:
            with self._lock:
                entries = list(self._fired)
        return sorted(entries,
                      key=lambda e: (e["site"], e["index"], e["kind"]))

    def report(self) -> dict:
        """The injected-fault report: schedule + what actually fired.

        The ``schedule`` section is a pure function of the seed; the
        ``injected`` section is deterministic whenever the per-site
        invocation sequences are (see ``docs/testing.md``).  The
        ``pid`` field is stripped from fired entries so reports from
        replayed runs compare equal byte-for-byte.
        """
        fired = [{k: v for k, v in entry.items() if k != "pid"}
                 for entry in self.fired()]
        by_site: Dict[str, int] = {}
        for entry in fired:
            by_site[entry["site"]] = by_site.get(entry["site"], 0) + 1
        return {"seed": self.plan.seed,
                "schedule": self.plan.to_json_dict(),
                "injected": {"total": len(fired), "by_site": by_site,
                             "fired": fired}}

    # -- lifecycle ------------------------------------------------------

    def activate(self, export: bool = True) -> "ChaosController":
        """Install as the process-wide controller; optionally export the
        plan (and the shared firing log) to child processes."""
        global _CONTROLLER
        if export:
            if self._plan_dir is None:
                self._plan_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
                plan_path = self._plan_dir / "plan.json"
                plan_path.write_text(json.dumps(self.plan.to_json_dict()))
                if self.log_path is None:
                    self.log_path = self._plan_dir / "fired.jsonl"
            os.environ[ENV_PLAN] = str(self._plan_dir / "plan.json")
        _CONTROLLER = self
        return self

    def deactivate(self) -> None:
        """Uninstall; stop exporting to new child processes."""
        global _CONTROLLER
        if _CONTROLLER is self:
            _CONTROLLER = None
        if self._plan_dir is not None and \
                os.environ.get(ENV_PLAN) == str(self._plan_dir / "plan.json"):
            del os.environ[ENV_PLAN]

    def cleanup(self) -> None:
        """Deactivate and remove the exported plan directory."""
        self.deactivate()
        if self._plan_dir is not None:
            for name in ("plan.json", "fired.jsonl"):
                try:
                    (self._plan_dir / name).unlink()
                except OSError:
                    pass
            try:
                self._plan_dir.rmdir()
            except OSError:
                pass
            self._plan_dir = None

    def __enter__(self) -> "ChaosController":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.cleanup()


#: The process-wide active controller (None: injection disabled).
_CONTROLLER: Optional[ChaosController] = None

#: Plan path this process already loaded from the environment, so a
#: worker builds its controller exactly once.
_LOADED_PLAN: Optional[str] = None


def get_controller() -> Optional[ChaosController]:
    """The active controller: installed in-process, or lazily loaded
    from ``REPRO_CHAOS_PLAN`` (worker processes).  None when chaos is
    off."""
    global _CONTROLLER, _LOADED_PLAN
    if _CONTROLLER is not None:
        return _CONTROLLER
    plan_path = os.environ.get(ENV_PLAN)
    if not plan_path or plan_path == _LOADED_PLAN:
        return None
    _LOADED_PLAN = plan_path
    try:
        payload = json.loads(Path(plan_path).read_text())
        plan = FaultPlan.from_json_dict(payload)
    except (OSError, ValueError, KeyError):
        return None
    _CONTROLLER = ChaosController(
        plan, log_path=Path(plan_path).parent / "fired.jsonl")
    return _CONTROLLER


def install_controller(controller: Optional[ChaosController]) -> None:
    """Set (or, with None, clear) the process-wide controller directly."""
    global _CONTROLLER, _LOADED_PLAN
    _CONTROLLER = controller
    if controller is None:
        _LOADED_PLAN = None


def inject(site: str, **ctx: object) -> Tuple[str, ...]:
    """The hook production code calls at a named fault-injection site.

    No-op (returns ``()``) unless a :class:`ChaosController` is active
    in this process or exported through ``REPRO_CHAOS_PLAN``.  Returns
    the fired site-interpreted kinds; built-in effects (crash, sleep,
    file corruption, raises) happen inside the call.
    """
    controller = _CONTROLLER
    if controller is None:
        if ENV_PLAN not in os.environ:
            return ()
        controller = get_controller()
        if controller is None:
            return ()
    return controller.on_inject(site, ctx)
