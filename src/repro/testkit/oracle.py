"""Differential-testing oracle over the simulation stack.

*V0LTpwn* (and SUIT's own threat model) make the point that the
dangerous failure mode of an undervolted core is not the crash — it is
the **silently wrong answer**.  The same holds for this reproduction's
execution stack: a worker pool that loses a process, a shared-memory
segment that vanishes under its readers, or a cache entry that rots on
disk must all end in either a *correct* result or an *explicit*
failure, never a plausible-looking wrong payload.

The :class:`DifferentialOracle` checks exactly that.  It takes one
canonical request set and replays it through every execution channel
the stack offers:

* **scalar** — ``SuitSystem.run_profile`` per request: the reference.
* **sweep**  — the vectorized ``run_sweep`` grouping used by
  :func:`repro.service.workers._simulate_group`.
* **batch**  — :func:`repro.service.workers.execute_batch`, the exact
  code pool workers run (fault hooks included).
* **engine** — two independent :class:`ExperimentEngine` runs compared
  via their canonical report bytes.
* **service** — a live :class:`SimulationService` (usually under an
  active :class:`~repro.testkit.chaos.ChaosController`).

Comparisons are strict ``==`` on the jsonified payloads.  Explicit
failures (status ``failed``/``rejected``/``timeout``) are *degraded* —
allowed under chaos; an ``ok`` response whose payload differs from the
reference is *wrong* — never allowed.

The reference is always computed with chaos suspended (the controller
and the exported plan are stashed for the duration), so the yardstick
itself cannot be bent by the faults it measures against.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.service.request import STATUS_OK, SimRequest
from repro.testkit import chaos

#: CPU models / workloads / strategies the canonical set cycles
#: through: small enough to stay tier-1-fast, varied enough to exercise
#: grouping (shared traces) and sharding (distinct shard keys).
_CANON_CPUS = ("A", "C")
_CANON_WORKLOADS = ("557.xz", "541.leela", "nginx", "vlc")
_CANON_STRATEGIES = ("fV", "e")


@dataclass
class ChannelReport:
    """Outcome of one execution channel against the reference.

    Attributes:
        channel: channel name ("sweep", "batch", "engine", "service").
        checked: requests (or report pairs) compared.
        ok: answers strictly equal to the reference.
        degraded: explicit failures — tolerated under chaos.
        wrong: silent corruption — ``ok`` answers that differ.  Any
            non-zero value is an oracle failure.
        mismatches: details of each wrong answer (bounded).
    """

    channel: str
    checked: int = 0
    ok: int = 0
    degraded: int = 0
    wrong: int = 0
    mismatches: List[dict] = field(default_factory=list)

    _MISMATCH_CAP = 16

    def record(self, request: Optional[SimRequest], expected: object,
               actual: object, status: str = STATUS_OK) -> None:
        """Compare one answer and file it in the right bucket."""
        self.checked += 1
        if status != STATUS_OK:
            self.degraded += 1
            return
        if actual == expected:
            self.ok += 1
            return
        self.wrong += 1
        if len(self.mismatches) < self._MISMATCH_CAP:
            self.mismatches.append({
                "request": request.to_dict() if request is not None else None,
                "expected_keys": sorted(expected)
                if isinstance(expected, dict) else str(type(expected)),
                "actual": _shrink(actual),
            })

    def to_json_dict(self) -> dict:
        """JSON form for the chaos report."""
        return {"channel": self.channel, "checked": self.checked,
                "ok": self.ok, "degraded": self.degraded,
                "wrong": self.wrong, "mismatches": self.mismatches}


def _shrink(value: object, limit: int = 512) -> object:
    """Bound a mismatch detail so reports stay readable."""
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."


@dataclass
class OracleReport:
    """Aggregate of every channel the oracle ran."""

    channels: List[ChannelReport] = field(default_factory=list)

    @property
    def wrong_total(self) -> int:
        """Silent-corruption count across all channels."""
        return sum(c.wrong for c in self.channels)

    @property
    def passed(self) -> bool:
        """True when no channel produced a wrong answer."""
        return self.wrong_total == 0

    def to_json_dict(self) -> dict:
        """JSON form for the chaos report."""
        return {"passed": self.passed, "wrong_total": self.wrong_total,
                "channels": [c.to_json_dict() for c in self.channels]}


@contextmanager
def _chaos_suspended() -> Iterator[None]:
    """Hold chaos off while computing reference answers."""
    controller = chaos.get_controller()
    exported = os.environ.pop(chaos.ENV_PLAN, None)
    chaos.install_controller(None)
    try:
        yield
    finally:
        chaos.install_controller(controller)
        if exported is not None:
            os.environ[chaos.ENV_PLAN] = exported


class DifferentialOracle:
    """Replays one canonical request set through every channel.

    Args:
        requests: the canonical set; every request must be a plain
            simulation (no ``__crash__``/``__sleep__`` hooks) so a
            reference answer exists.
    """

    def __init__(self, requests: Sequence[SimRequest]) -> None:
        """See class docstring."""
        self.requests: List[SimRequest] = []
        for request in requests:
            request.validate()
            if request.workload.startswith("__"):
                raise ValueError(
                    f"hook workload {request.workload!r} has no reference")
            self.requests.append(request)
        if not self.requests:
            raise ValueError("the oracle needs at least one request")
        self._reference: Optional[List[dict]] = None

    @staticmethod
    def canonical_requests(n: int = 8, seed: int = 0) -> List[SimRequest]:
        """A deterministic canonical set of *n* requests.

        Cycles CPU models, workloads, strategies and seeds so the set
        exercises trace-sharing groups *and* distinct shards; a given
        ``(n, seed)`` always produces the same set.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        requests = []
        for i in range(n):
            requests.append(SimRequest(
                cpu=_CANON_CPUS[i % len(_CANON_CPUS)],
                workload=_CANON_WORKLOADS[(i // 2) % len(_CANON_WORKLOADS)],
                strategy=_CANON_STRATEGIES[(i // 4) % len(_CANON_STRATEGIES)],
                seed=seed + i % 3,
            ))
        return requests

    # -- channels -------------------------------------------------------

    def reference(self) -> List[dict]:
        """Scalar reference payloads, one per request (chaos-free)."""
        if self._reference is not None:
            return self._reference
        from repro.runtime.serialization import jsonify
        from repro.workloads import resolve_profile

        payloads = []
        with _chaos_suspended():
            for request in self.requests:
                system = _fresh_system(request)
                result = system.run_profile(
                    resolve_profile(request.workload))
                payloads.append(jsonify(result))
        self._reference = payloads
        return payloads

    def check_sweep(self) -> ChannelReport:
        """Vectorized ``run_sweep`` vs the scalar reference.

        Mirrors the grouping of
        :func:`repro.service.workers.execute_batch`: requests sharing
        ``(cpu, workload, seed, n_cores)`` ride one compiled episode.
        """
        from repro.core.batchsim import SweepConfig
        from repro.runtime.serialization import jsonify
        from repro.workloads import resolve_profile

        expected = self.reference()
        report = ChannelReport("sweep")
        groups: Dict[tuple, List[int]] = {}
        for i, request in enumerate(self.requests):
            key = (request.cpu, request.workload, request.seed,
                   request.n_cores)
            groups.setdefault(key, []).append(i)
        with _chaos_suspended():
            for members in groups.values():
                first = self.requests[members[0]]
                system = _fresh_system(first)
                profile = resolve_profile(first.workload)
                configs = [SweepConfig(
                    strategy=self.requests[i].strategy,
                    voltage_offset=self.requests[i].voltage_offset,
                    seed=self.requests[i].seed) for i in members]
                for i, result in zip(members,
                                     system.run_sweep(profile, configs)):
                    report.record(self.requests[i], expected[i],
                                  jsonify(result))
        return report

    def check_batch(self) -> ChannelReport:
        """``execute_batch`` — the worker-process code path — vs the
        reference.  Runs in-process, so an active chaos controller's
        worker-side faults fire here too."""
        from repro.service.workers import execute_batch

        expected = self.reference()
        report = ChannelReport("batch")
        outcomes = execute_batch(
            [request.to_dict() for request in self.requests])
        for request, want, outcome in zip(self.requests, expected, outcomes):
            report.record(request, want, outcome.get("payload"),
                          status=STATUS_OK if outcome.get("status") == "ok"
                          else "failed")
        return report

    def check_engine(self, modules: Sequence[str] = ("table3_temperature",),
                     seed: int = 0) -> ChannelReport:
        """Two independent engine runs must report byte-identical
        canonical results (no cache, so both actually compute)."""
        from repro.runtime.engine import ExperimentEngine

        report = ChannelReport("engine")
        with _chaos_suspended():
            first = ExperimentEngine(modules=list(modules), jobs=1,
                                     cache=None).run(seed=seed, fast=True)
        second = ExperimentEngine(modules=list(modules), jobs=1,
                                  cache=None).run(seed=seed, fast=True)
        report.record(None, first.canonical_json(), second.canonical_json())
        return report

    async def check_service(self, service) -> ChannelReport:
        """A live :class:`SimulationService` vs the reference.

        The service is typically running under chaos: explicit
        failures count as degraded, ``ok`` payloads must be strictly
        equal to the scalar reference.  Requests are submitted
        concurrently — chaos should meet a loaded service, and one
        stalled request must not serialise the whole pass.
        """
        import asyncio

        expected = self.reference()
        report = ChannelReport("service")
        responses = await asyncio.gather(
            *(service.submit(request) for request in self.requests))
        for request, want, response in zip(self.requests, expected,
                                           responses):
            report.record(request, want, response.payload,
                          status=response.status)
        return report

    def run_local(self, engine: bool = True) -> OracleReport:
        """The synchronous channels (sweep, batch, optionally engine)."""
        channels = [self.check_sweep(), self.check_batch()]
        if engine:
            channels.append(self.check_engine())
        return OracleReport(channels=channels)


def _fresh_system(request: SimRequest):
    """A newly configured SuitSystem for *request* (no shared state)."""
    from repro.core.suit import SuitSystem

    return SuitSystem.for_cpu(
        request.cpu, strategy_name=request.strategy,
        voltage_offset=request.voltage_offset,
        n_cores=request.n_cores, seed=request.seed)
