"""Seeded chaos soak: a live service under fault injection, refereed
by the differential oracle.

One :class:`ChaosSoak` run is the acceptance experiment of the whole
harness: build a deterministic :class:`~repro.testkit.chaos.FaultPlan`
from a seed, activate it, start a real :class:`SimulationService`
(worker pools, micro-batching, shared trace store, on-disk result
cache — the full production wiring), then drive the oracle's canonical
request set through it over and over while workers are killed, shm
segments unlink under their readers and cache entries rot on disk.

The verdict is binary: explicit failures (rejected / failed / timeout)
are *degraded service* and acceptable; an ``ok`` answer that differs
from the chaos-free scalar reference is *silent corruption* and fails
the soak.  The JSON report separates injected faults, degraded
answers and wrong answers, and embeds the full fault schedule — which
is a pure function of the seed, so two soaks with the same seed always
print the identical ``fault_schedule`` section (that is the replay
guarantee; with ``use_processes=False`` and ``concurrency=1`` the
*fired* log replays exactly too).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.testkit.chaos import ChaosController, FaultPlan, FaultSpec
from repro.testkit.oracle import ChannelReport, DifferentialOracle


@dataclass
class SoakConfig:
    """Knobs of one chaos soak run.

    Attributes:
        seed: master seed — fixes the fault schedule *and* the
            canonical request set.
        duration_s: keep driving passes until this much wall time has
            elapsed (ignored when ``passes`` is set).
        passes: exact number of request-set passes to drive; setting
            it makes the workload (and with the thread tier, the whole
            fired-fault log) deterministic.
        n_requests: size of the canonical request set.
        worker_kill_rate: P(kill a pool worker) per batch dispatch.
        shm_unlink_rate: P(unlink the shm segment) per store attach.
        manifest_corrupt_rate: P(corrupt the manifest) per store attach.
        cache_corrupt_rate: P(corrupt the entry file) per cache read.
        admission_reject_rate: P(injected admission overflow) per submit.
        slow_worker_rate: P(hold a worker ``slow_worker_s``) per request.
        slow_worker_s: how long a slow worker sleeps.
        request_fail_rate: P(injected exception) per worker request.
        horizon: invocation-index horizon of the fault plan.
        use_processes: process pools (real kills) vs thread pools
            (deterministic unit-test mode; kill faults become no-ops).
        n_shards / workers_per_shard: service topology.
        check_engine: also run the engine channel once at the end.
    """

    seed: int = 0
    duration_s: float = 10.0
    passes: Optional[int] = None
    n_requests: int = 8
    worker_kill_rate: float = 0.1
    shm_unlink_rate: float = 0.1
    manifest_corrupt_rate: float = 0.05
    cache_corrupt_rate: float = 0.1
    admission_reject_rate: float = 0.05
    slow_worker_rate: float = 0.0
    slow_worker_s: float = 0.05
    request_fail_rate: float = 0.0
    horizon: int = 20_000
    use_processes: bool = True
    n_shards: int = 2
    workers_per_shard: int = 2
    check_engine: bool = False

    def fault_specs(self) -> List[FaultSpec]:
        """The armed fault set this config describes (zero rates drop out)."""
        armed = [
            FaultSpec("workers.dispatch", "kill_worker",
                      self.worker_kill_rate),
            FaultSpec("tracestore.shm", "unlink", self.shm_unlink_rate),
            FaultSpec("tracestore.attach", "corrupt",
                      self.manifest_corrupt_rate),
            FaultSpec("cache.entry", "corrupt", self.cache_corrupt_rate),
            FaultSpec("server.admission", "raise",
                      self.admission_reject_rate,
                      exception="AdmissionError"),
            FaultSpec("workers.request", "sleep", self.slow_worker_rate,
                      param=self.slow_worker_s),
            FaultSpec("workers.request", "raise", self.request_fail_rate,
                      exception="RuntimeError"),
        ]
        return [spec for spec in armed if spec.rate > 0]

    def build_plan(self) -> FaultPlan:
        """The deterministic fault plan of this config."""
        return FaultPlan.generate(self.seed, self.fault_specs(),
                                  self.horizon)


@dataclass
class SoakResult:
    """Everything one soak run produced."""

    config: SoakConfig
    passes: int = 0
    wall_time_s: float = 0.0
    channels: List[ChannelReport] = field(default_factory=list)
    chaos_report: dict = field(default_factory=dict)
    service_metrics: dict = field(default_factory=dict)

    @property
    def wrong_answers(self) -> int:
        """Silent corruptions across every pass (must be zero)."""
        return sum(c.wrong for c in self.channels)

    @property
    def passed(self) -> bool:
        """The binary soak verdict."""
        return self.passes > 0 and self.wrong_answers == 0

    def to_json_dict(self) -> dict:
        """The reproducible JSON report of the run."""
        injected = self.chaos_report.get("injected", {})
        degraded = sum(c.degraded for c in self.channels)
        checked = sum(c.checked for c in self.channels)
        return {
            "passed": self.passed,
            "seed": self.config.seed,
            "passes": self.passes,
            "wall_time_s": round(self.wall_time_s, 3),
            "requests_checked": checked,
            "summary": {
                "injected": injected.get("total", 0),
                "degraded": degraded,
                "wrong_answers": self.wrong_answers,
                # Faults the stack absorbed without corrupting any
                # answer (degraded-but-honest counts as recovered).
                "recovered": max(0, injected.get("total", 0)
                                 - self.wrong_answers),
            },
            "channels": [c.to_json_dict() for c in self.channels],
            # Pure function of the seed: byte-identical across replays.
            "fault_schedule": self.chaos_report.get("schedule", {}),
            "injected_by_site": injected.get("by_site", {}),
            "service_metrics": self.service_metrics,
        }


class ChaosSoak:
    """Runs one seeded soak (see module docstring).

    Args:
        config: the soak's knobs.
    """

    def __init__(self, config: Optional[SoakConfig] = None) -> None:
        """See class docstring."""
        self.config = config or SoakConfig()

    async def run(self) -> SoakResult:
        """Execute the soak; always tears chaos and the service down."""
        from repro.runtime.cache import ResultCache
        from repro.service.server import ServiceConfig, SimulationService

        cfg = self.config
        oracle = DifferentialOracle(DifferentialOracle.canonical_requests(
            n=cfg.n_requests, seed=cfg.seed))
        # The yardstick first, before any fault can fire.
        oracle.reference()

        result = SoakResult(config=cfg)
        controller = ChaosController(cfg.build_plan())
        started = time.monotonic()
        with tempfile.TemporaryDirectory(prefix="repro-soak-cache-") \
                as cache_dir:
            # Activate before start() so forked pool workers inherit
            # the exported plan and fire worker-side faults too.
            with controller:
                service = SimulationService(
                    ServiceConfig(
                        n_shards=cfg.n_shards,
                        workers_per_shard=cfg.workers_per_shard,
                        use_processes=cfg.use_processes,
                        share_traces=True,
                        batch_window_s=0.002,
                        default_timeout_s=20.0),
                    cache=ResultCache(Path(cache_dir)))
                try:
                    await service.start()
                    while True:
                        result.channels.append(
                            await oracle.check_service(service))
                        result.passes += 1
                        if cfg.passes is not None:
                            if result.passes >= cfg.passes:
                                break
                        elif (time.monotonic() - started >= cfg.duration_s
                              and result.passes >= 2):
                            break
                finally:
                    await service.stop()
                    result.service_metrics = {
                        name: service.metrics.counter(name)
                        for name in ("requests_submitted",
                                     "requests_completed",
                                     "requests_failed",
                                     "requests_rejected",
                                     "requests_timed_out",
                                     "cache_hits",
                                     "cache_put_failures",
                                     "batch_retries",
                                     "batch_failures",
                                     "worker_restarts")}
                if cfg.check_engine:
                    result.channels.append(oracle.check_engine())
                result.chaos_report = controller.report()
        result.wall_time_s = time.monotonic() - started
        return result
