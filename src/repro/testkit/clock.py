"""Injectable time sources: the real clock and a deterministic fake.

Timing-sensitive components (the deadline scheduler, the micro-batcher
window, the worker tier's retry backoff) historically called
``time.monotonic`` / ``asyncio.sleep`` directly, which forced their
tests to *actually wait* — and to guess how long was long enough on a
loaded CI machine.  Every such component now takes an optional
``clock`` argument:

* :data:`SYSTEM_CLOCK` (the default) — ``time.monotonic`` +
  ``asyncio.sleep``, unchanged production behaviour.
* :class:`FakeClock` — virtual time.  ``sleep`` advances the virtual
  clock instantly (yielding to the event loop once so concurrent tasks
  interleave deterministically), so a 5 s batch window elapses in
  microseconds of real time and a test can step time explicitly with
  :meth:`FakeClock.advance`.
"""

from __future__ import annotations

import asyncio
import time


class SystemClock:
    """The real clock: ``time.monotonic`` and ``asyncio.sleep``."""

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling task for *seconds* of real time."""
        await asyncio.sleep(seconds)


#: Process-wide default clock instance (stateless, safe to share).
SYSTEM_CLOCK = SystemClock()


class FakeClock:
    """A deterministic virtual clock for tests.

    ``sleep`` advances virtual time by the requested amount and yields
    to the event loop exactly once, so code written against the clock
    protocol runs at full speed while still observing time passing.
    Set ``auto_advance=False`` to make ``sleep`` wait (yielding) until
    the test advances time explicitly via :meth:`advance` — useful to
    hold a component *inside* its waiting loop while the test acts.

    Args:
        start: initial virtual time in seconds.
        auto_advance: whether ``sleep`` moves time forward by itself.
    """

    def __init__(self, start: float = 1000.0,
                 auto_advance: bool = True) -> None:
        """See class docstring."""
        self._now = float(start)
        self.auto_advance = auto_advance
        self.sleep_calls = 0

    def monotonic(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward by *seconds* (never backwards)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds

    async def sleep(self, seconds: float) -> None:
        """Advance virtual time (or wait for :meth:`advance`) and yield."""
        self.sleep_calls += 1
        if self.auto_advance:
            self._now += max(0.0, float(seconds))
            await asyncio.sleep(0)
            return
        target = self._now + max(0.0, float(seconds))
        while self._now < target:
            await asyncio.sleep(0)
