"""Fig 8: core-voltage change delay on the i9-9900K.

Replays the paper's measurement: reset a -100 mV offset to 0 at time 0
and poll the voltage sensor until it settles, 20 repetitions.  Reports
the mean and maximum settle times (paper: 350 us mean, sigma 22,
maximum 379 us).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 8 measurement."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="Voltage change delay, Intel i9-9900K (20 repetitions)",
    )
    cpu = cpu_a_i9_9900k()
    spec = cpu.transitions.voltage
    assert spec is not None
    rng = np.random.default_rng(seed)
    reps = 5 if fast else 20
    v_from, v_to = 0.800, 0.900  # the paper's figure spans 800..900 mV

    settle_times = []
    trajectories = []
    for _ in range(reps):
        times, volts = spec.trajectory(v_from, v_to, rng)
        settle_times.append(
            spec.settle_time_from_trajectory(times, volts, v_to))
        trajectories.append((times, volts))
    settle = np.array(settle_times)

    result.lines.append(
        f"settle time: mean {settle.mean() * 1e6:.0f} us "
        f"(sigma {settle.std() * 1e6:.0f}), max {settle.max() * 1e6:.0f} us")
    result.add_metric("mean_settle_us", settle.mean(), 350e-6, unit="s")
    result.add_metric("max_settle_us", settle.max(), 379e-6, unit="s")
    result.data["trajectories"] = trajectories
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
