"""Fig 5: an AES burst and the resulting DVFS-curve switch.

Builds a short trace containing one dense AES burst, runs the fV
strategy with timeline recording, and reports the gap-size series plus
the curve-switch timeline: conservative exactly from the first burst
instruction until one deadline after the last.
"""

from __future__ import annotations

from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult
from repro.isa.opcodes import Opcode
from repro.workloads.analysis import gap_size_timeline
from repro.workloads.generator import single_burst_trace
from repro.workloads.profile import WorkloadProfile


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 5 data."""
    del fast
    result = ExperimentResult(
        experiment_id="fig5",
        title="AES instruction burst and the DVFS curve switching around it",
    )
    n = 40_000_000
    trace = single_burst_trace(
        name="aes-burst", n_instructions=n, ipc=1.5,
        burst_start=n // 2, burst_length=3_000_000, dense_gap=80.0,
        opcode=Opcode.AESENC, seed=seed,
    )
    profile = WorkloadProfile(
        name="aes-burst", suite="network", n_instructions=n, ipc=1.5,
        efficient_occupancy=0.9, n_episodes=1, dense_gap=80.0,
        opcode_mix={Opcode.AESENC: 1.0},
    )
    suit = SuitSystem.for_cpu("C", strategy_name="fV", voltage_offset=-0.097,
                              seed=seed)
    suit.prime_trace(profile, trace)
    sim_result = suit.run_profile(profile, record_timeline=True)

    indices, log_gaps = gap_size_timeline(trace)
    result.data["gap_timeline"] = (indices, log_gaps)
    result.data["curve_timeline"] = sim_result.timeline

    states = [label for _, label in sim_result.timeline or []]
    conservative_visits = sum(1 for s in states if s.startswith("Cf"))
    result.add_metric("exceptions", sim_result.n_exceptions, 1.0, unit="count")
    result.add_metric("switched_to_conservative",
                      1.0 if conservative_visits >= 1 else 0.0, 1.0, unit="")
    result.add_metric("returned_to_efficient",
                      1.0 if states and states[-1].startswith("E") else 0.0,
                      1.0, unit="")
    cons_time = (sim_result.state_time.get("Cf", 0.0)
                 + sim_result.state_time.get("CV", 0.0))
    result.lines.append(
        f"burst of {trace.n_events} AES instructions -> {sim_result.n_exceptions} "
        f"#DO exception(s), {cons_time * 1e6:.0f} us on the conservative curve")
    result.data["conservative_time_s"] = cons_time
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
