"""Fig 12: SPEC score, power and frequency versus undervolt offset.

Sweeps the i9-9900K's undervolting response from 0 to -97 mV (the Fig 12
x-axis) and reports the score-increase, mean-power and mean-frequency
series; at -97 mV the paper measures +3.8 % score and -16 % power.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k

OFFSETS = (0.0, -0.040, -0.070, -0.097)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 12 series."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="fig12",
        title="Undervolting sweep on the i9-9900K (score / power / frequency)",
    )
    cpu = cpu_a_i9_9900k()
    r = cpu.response
    nominal_power = cpu.cmos.power(cpu.nominal_frequency, cpu.nominal_voltage)

    scores, powers, freqs = [], [], []
    result.lines.append("offset   score      power(W)   freq(GHz)")
    for off in OFFSETS:
        if off == 0.0:
            score, pwr, frq = 0.0, 1.0, 1.0
        else:
            score = r.score_ratio(off) - 1.0
            pwr = r.power_ratio(off)
            frq = r.frequency_ratio(off)
        scores.append(score)
        powers.append(pwr * nominal_power)
        freqs.append(frq * cpu.nominal_frequency / 1e9)
        result.lines.append(
            f"{off * 1e3:+5.0f}mV  {score * 100:+5.2f}%   "
            f"{pwr * nominal_power:6.1f}     {freqs[-1]:.3f}")

    result.add_metric("score@-97mV", scores[-1], 0.038)
    result.add_metric("power_drop@-97mV", powers[-1] / powers[0] - 1.0, -0.16)
    # Monotonicity of the series (the figure's qualitative shape).
    result.add_metric("score_monotone",
                      1.0 if all(np.diff(scores) > 0) else 0.0, 1.0, unit="")
    result.add_metric("power_monotone",
                      1.0 if all(np.diff(powers) < 0) else 0.0, 1.0, unit="")
    result.data["offsets"] = OFFSETS
    result.data["scores"] = scores
    result.data["powers_w"] = powers
    result.data["freqs_ghz"] = freqs
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
