"""Extension: evolutionary design-space exploration on nginx.

Runs the ``nginx_pareto`` canned search (:mod:`repro.dse`): NSGA-II
over (deadline, strategy, efficient-curve offset, process-variation
corner, IMUL pipeline depth) with three minimized objectives —
duration ratio, energy ratio, negated security headroom — then ranks
the Pareto frontier with TOPSIS into one recommended operating point.

The headline: the search independently rediscovers the paper's
operating point.  The recommended genome is the ``fV`` strategy at the
paper's −97 mV offset (Table 6 runs SUIT there), with the frontier
entirely free of security-floor violations — undervolting depth is
bought with IMUL pipeline depth, exactly the trade SUIT's hardened
multiplier makes.
"""

from __future__ import annotations

from repro.dse import DseRunner, canned_search
from repro.experiments.common import ExperimentResult


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run the canned nginx search; report frontier and recommendation."""
    spec = canned_search("nginx_pareto").with_overrides(seed=seed)
    if fast:
        spec = spec.with_overrides(generations=2, population=8)

    report = DseRunner(spec).run()
    result = ExperimentResult(
        experiment_id="ext-dse-nginx",
        title="Design-space exploration: Pareto search over SUIT knobs",
    )
    result.lines.append(
        f"{report['n_generations']} generations x {spec.population} "
        f"genomes: {report['n_distinct_genomes']} distinct operating "
        f"points, {report['n_unique_sims']} unique simulations")
    for row in report["generations"]:
        result.lines.append(
            f"  gen {row['index']}: {row['n_feasible']:>2}/"
            f"{row['n_evaluated']:>2} feasible, front={row['front_size']}, "
            f"hypervolume={row['hypervolume']:.4f}")
    rec = report["recommendation"]
    result.lines.append(f"recommended: {rec['describe']}")

    result.add_metric("front_size", float(len(report["front"])), unit="")
    # The frontier must be entirely feasible: every member keeps the
    # full security floor of undervolt headroom.
    result.add_metric("front_violations",
                      float(report["front_violations"]), paper=0.0, unit="")
    # The search rediscovers the paper's Table 6 operating point.
    result.add_metric("recommended_offset_mv", rec["offset_mv"],
                      paper=-97.0, unit="mV")
    result.add_metric("recommended_headroom_mv",
                      rec["objectives"]["security_headroom_mv"], unit="mV")
    result.add_metric("recommended_perf_change",
                      rec["perf_change_pct"] / 100.0, unit="%")
    result.add_metric("recommended_efficiency_change",
                      rec["efficiency_change_pct"] / 100.0, unit="%")
    result.add_metric("final_hypervolume",
                      report["generations"][-1]["hypervolume"], unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
