"""Table 5: the gem5 system used for the instruction-latency evaluation.

Table 5 is a configuration table, not a measurement; this experiment
prints our pipeline model's corresponding configuration next to the
paper's and verifies the parameters the dataflow model actually
consumes (core dimensions; the memory hierarchy folds into the optional
:class:`~repro.pipeline.uarch.MemoryModel` latencies).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.isa.opcodes import PortClass
from repro.pipeline.config import GEM5_REFERENCE_CONFIG
from repro.pipeline.uarch import MemoryModel

#: Paper Table 5 rows.
PAPER_TABLE5 = {
    "cpu": "x86-64, 2 Core, 3 GHz, O3 (Out-Of-Order) CPU",
    "dram": "2 Channel, 3 GB DDR4_2400_8x8",
    "cache": "64 kB L1I, 32 kB L1D, 2 MB LLC",
    "mode": "Full System, Ubuntu 20.04.1, Linux 5.19.0",
}


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Print the model configuration against Table 5."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="table5",
        title="gem5 system configuration vs the dataflow-model equivalent",
    )
    cfg = GEM5_REFERENCE_CONFIG
    mem = MemoryModel()
    result.lines.append(f"paper CPU   : {PAPER_TABLE5['cpu']}")
    result.lines.append(
        f"model CPU   : O3 dataflow, {cfg.frequency / 1e9:.0f} GHz, "
        f"ROB {cfg.rob_size}, issue {cfg.issue_width}, "
        f"{sum(cfg.pipes.values())} pipes")
    result.lines.append(f"paper cache : {PAPER_TABLE5['cache']}")
    result.lines.append(
        f"model memory: L1 {mem.l1_latency} cyc / LLC {mem.l2_latency} cyc "
        f"/ DRAM {mem.dram_latency} cyc "
        f"(hit rates {mem.l1_hit_rate:.2f}/{mem.l2_hit_rate:.2f})")
    result.lines.append(f"paper DRAM  : {PAPER_TABLE5['dram']}")
    result.lines.append(f"paper mode  : {PAPER_TABLE5['mode']} "
                        "(full-system effects folded into stream statistics)")

    result.add_metric("frequency_ghz", cfg.frequency / 1e9, 3.0, unit="GHz")
    result.add_metric("has_mul_pipe",
                      1.0 if cfg.pipes.get(PortClass.MUL, 0) >= 1 else 0.0,
                      paper=1.0, unit="")
    result.add_metric("rob_in_o3_range",
                      1.0 if 100 <= cfg.rob_size <= 400 else 0.0,
                      paper=1.0, unit="")
    result.add_metric("dram_latency_cycles", float(mem.dram_latency),
                      unit="cyc")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
