"""Ablation: why IMUL must be statically hardened (paper section 4.2).

SUIT's second building block exists because IMUL is *frequent*: on
average one IMUL every ~560 instructions (0.07-1 % of the stream).  This
ablation compares the two designs:

* **harden** (SUIT): +1 pipeline stage; tiny static tax, zero traps.
* **trap** (counterfactual): IMUL stays in the disabled set; every IMUL
  outside a deadline window raises #DO.

With trapping, the deadline timer is reset every ~560 instructions —
the CPU permanently stays on the conservative curve and the entire
efficiency gain evaporates, exactly the paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import imul_latency_overhead
from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

#: Paper section 1: one IMUL "as frequently as every 560 instructions".
IMUL_GAP_INSTRUCTIONS = 560


def _imul_trap_trace(n_instructions: int, ipc: float,
                     rng: np.random.Generator) -> FaultableTrace:
    """A trace whose events are the IMUL executions themselves."""
    gaps = rng.exponential(IMUL_GAP_INSTRUCTIONS,
                           size=int(n_instructions / IMUL_GAP_INSTRUCTIONS))
    indices = np.cumsum(np.maximum(gaps, 1.0)).astype(np.int64)
    indices = indices[indices < n_instructions]
    return FaultableTrace(
        name="imul-trapped", n_instructions=n_instructions, ipc=ipc,
        indices=indices, opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VXOR,),  # stand-in class for the trapped IMUL
    )


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Compare hardened-IMUL SUIT against trap-everything SUIT."""
    result = ExperimentResult(
        experiment_id="ablation-imul",
        title="Static IMUL hardening vs dynamically trapping IMUL",
    )
    cpu = cpu_c_xeon_4208()
    n = 100_000_000 if fast else 400_000_000
    ipc = 1.8
    profile = WorkloadProfile(
        name="imul-trapped", suite="SPECint", n_instructions=n, ipc=ipc,
        efficient_occupancy=0.9, n_episodes=1, dense_gap=1000,
        imul_density=1.0 / IMUL_GAP_INSTRUCTIONS, imul_chain_fraction=0.2,
        opcode_mix={Opcode.VXOR: 1.0})

    # Design 1: harden. No IMUL traps at all; pay the latency tax.
    tax = imul_latency_overhead(profile, extra_cycles=1)
    empty = FaultableTrace(
        name="imul-trapped", n_instructions=n, ipc=ipc,
        indices=np.array([], dtype=np.int64),
        opcodes=np.array([], dtype=np.uint8), opcode_table=(Opcode.VXOR,))
    hardened = TraceSimulator(
        cpu, profile, empty, strategy_for("fV", DEFAULT_PARAMS_INTEL),
        -0.097, seed=seed).run()

    # Design 2: trap IMUL like everything else.
    rng = np.random.default_rng(seed)
    trapped_trace = _imul_trap_trace(n, ipc, rng)
    trapped = TraceSimulator(
        cpu, profile, trapped_trace, strategy_for("fV", DEFAULT_PARAMS_INTEL),
        -0.097, seed=seed, harden_imul=False).run()

    result.lines.append(
        f"harden: eff {hardened.efficiency_change * 100:+.2f}% "
        f"(tax {tax * 100:.2f}%), occupancy "
        f"{hardened.efficient_occupancy:.2f}, traps {hardened.n_exceptions}")
    result.lines.append(
        f"trap:   eff {trapped.efficiency_change * 100:+.2f}%, occupancy "
        f"{trapped.efficient_occupancy:.3f}, traps {trapped.n_exceptions}")

    result.add_metric("harden.efficiency", hardened.efficiency_change)
    result.add_metric("trap.efficiency", trapped.efficiency_change)
    result.add_metric("trap.occupancy", trapped.efficient_occupancy,
                      paper=0.0, unit="")
    result.add_metric("hardening_wins",
                      1.0 if hardened.efficiency_change
                      > trapped.efficiency_change + 0.05 else 0.0,
                      paper=1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
