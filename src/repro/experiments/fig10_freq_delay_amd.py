"""Fig 10: frequency change delay on the AMD Ryzen 7 7700X.

The AMD part ramps through intermediate frequencies over ~668 us
(sigma 292) and — unlike the Intel parts — never stalls the core.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_b_ryzen_7700x


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 10 measurement."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Frequency change delay, AMD Ryzen 7 7700X",
    )
    cpu = cpu_b_ryzen_7700x()
    spec = cpu.transitions.frequency
    rng = np.random.default_rng(seed)
    reps = 5 if fast else 10

    delays, stalls = [], []
    trajectories = []
    for _ in range(reps):
        delays.append(spec.sample_delay(rng))
        stalls.append(spec.sample_stall(rng))
        trajectories.append(spec.trajectory(3.0e9, 1.8e9, rng))
    delays = np.array(delays)

    # Staircase check: intermediate frequencies appear in the ramp.
    times, freqs = trajectories[0]
    ramp = freqs[(times > 0) & (times < delays[0])]
    has_staircase = bool(
        ramp.size and np.any((ramp > 1.9e9) & (ramp < 2.9e9)))

    result.lines.append(
        f"frequency change: mean {delays.mean() * 1e6:.0f} us "
        f"(sigma {delays.std() * 1e6:.0f}); stall {np.mean(stalls) * 1e6:.1f} us; "
        f"staircase ramp: {has_staircase}")
    result.add_metric("mean_delay", delays.mean(), 668e-6, unit="s")
    result.add_metric("no_stall", 1.0 if np.mean(stalls) == 0 else 0.0, 1.0,
                      unit="")
    result.add_metric("staircase", 1.0 if has_staircase else 0.0, 1.0, unit="")
    result.data["trajectories"] = trajectories
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
