"""Extension: the adaptive per-workload strategy policy (section 6.8).

The paper's summary notes the OS "could dynamically switch between CV
and e for highest efficiency".  This experiment evaluates our
implementation of that policy against the per-workload oracle across
the SPEC + network mix: the cheap heuristic should capture nearly all
of the oracle's efficiency while never picking a catastrophic strategy
(emulation on a crypto workload).
"""

from __future__ import annotations

from repro.core.metrics import geomean_change
from repro.core.policy import AdaptiveStrategyPolicy, oracle_best
from repro.experiments.common import ExperimentResult, cached_trace
from repro.hardware.models import cpu_a_i9_9900k
from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE
from repro.workloads.spec import spec_profile

_WORKLOADS = ("557.xz", "502.gcc", "520.omnetpp", "525.x264", "527.cam4")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Adaptive policy vs per-workload oracle on CPU A."""
    result = ExperimentResult(
        experiment_id="ext-adaptive",
        title="Adaptive strategy selection vs the per-workload oracle",
    )
    cpu = cpu_a_i9_9900k()
    policy = AdaptiveStrategyPolicy(cpu)
    names = _WORKLOADS[:3] if fast else _WORKLOADS
    profiles = [spec_profile(n) for n in names] + [NGINX_PROFILE, VLC_PROFILE]

    policy_effs, oracle_effs = [], []
    never_catastrophic = True
    for profile in profiles:
        trace = cached_trace(profile, seed)
        decision, chosen = policy.run(profile, trace, -0.097, seed=seed)
        best_name, all_results = oracle_best(cpu, profile, trace, -0.097,
                                             seed=seed)
        best = all_results[best_name]
        policy_effs.append(chosen.efficiency_change)
        oracle_effs.append(best.efficiency_change)
        if chosen.perf_change < -0.5:
            never_catastrophic = False
        result.lines.append(
            f"{profile.name:<14} policy={decision.strategy:<3} "
            f"(eff {chosen.efficiency_change * 100:+6.2f}%)  "
            f"oracle={best_name:<3} (eff {best.efficiency_change * 100:+6.2f}%)")

    gap = geomean_change(oracle_effs) - geomean_change(policy_effs)
    result.add_metric("oracle_gap", gap, unit="")
    result.add_metric("policy_geomean_eff", geomean_change(policy_effs))
    result.add_metric("never_catastrophic",
                      1.0 if never_catastrophic else 0.0, paper=1.0, unit="")
    result.add_metric("policy_within_2pp_of_oracle",
                      1.0 if gap < 0.02 else 0.0, paper=1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
