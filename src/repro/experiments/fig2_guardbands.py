"""Figs 1/2 and sections 3.1, 5.6, 5.7: the guardband decomposition.

Quantifies the voltage guardband components of Fig 2 on the i9-9900K
curve: instruction voltage variation (70 mV mean / 150 mV max), the
aging guardband (137 mV, ~12 % of the 5 GHz supply), the temperature
guardband (35 mV, ~3.5 %), and SUIT's combined offsets (-70 mV without
and -97 mV with 20 % of the aging guardband).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.guardband import (
    INSTRUCTION_VARIATION_MAX_V,
    INSTRUCTION_VARIATION_V,
    AgingModel,
    GuardbandBudget,
    TemperatureGuardband,
)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Quantify the Fig 2 guardband components."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="fig2",
        title="Guardband decomposition and SUIT's undervolting budget",
    )
    curve = DVFSCurve(I9_9900K_CURVE_POINTS)
    aging = AgingModel()
    aging_v = aging.guardband_voltage(curve, 5.0e9)
    aging_frac = aging.guardband_fraction(curve, 5.0e9)
    temp = TemperatureGuardband()

    result.lines.append(f"instruction variation: {INSTRUCTION_VARIATION_V * 1e3:.0f} mV "
                        f"mean / {INSTRUCTION_VARIATION_MAX_V * 1e3:.0f} mV max")
    result.lines.append(f"aging guardband @5GHz: {aging_v * 1e3:.0f} mV "
                        f"({aging_frac * 100:.1f}% of supply)")
    result.lines.append(f"temperature guardband: {temp.guardband_voltage() * 1e3:.0f} mV")

    result.add_metric("aging_guardband_v", aging_v, 0.137, unit="V")
    result.add_metric("aging_guardband_frac", aging_frac, 0.12)
    result.add_metric("temp_guardband_v", temp.guardband_voltage(), 0.035, unit="V")
    result.add_metric("gradient_4to5GHz", curve.gradient_at(4.5e9) * 1e9,
                      0.183, unit="V/GHz")
    result.add_metric("voltage_at_5GHz", curve.voltage_at(5.0e9), 1.174, unit="V")

    conservative = GuardbandBudget(aging_guardband_v=aging_v, aging_fraction=0.0)
    combined = GuardbandBudget(aging_guardband_v=aging_v, aging_fraction=0.20)
    result.add_metric("offset_conservative", conservative.offset(), -0.070, unit="V")
    result.add_metric("offset_combined", combined.offset(), -0.097, unit="V")

    # Aging model sanity: after 10 years at >100 degC, ~15 % delay
    # degradation; much less at controlled temperatures.
    result.add_metric("degradation_10y_100C", aging.degradation(10.0, 100.0),
                      0.15, unit="")
    result.lines.append(
        f"degradation after 5y at 60C: {aging.degradation(5.0, 60.0) * 100:.1f}% "
        "(why data centers can spend part of the guardband)")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
