"""Extension: exhaustive verification of the SUIT state machine.

The trace simulator samples one schedule; the security argument (section
3.5/6.9) must hold under *every* interleaving of traps, timer expiries
and regulator completions.  This experiment runs the explicit-state
model checker over the abstract fV machine and reports the verified
invariants — and, as a sanity check of the checker itself, confirms it
catches a seeded bug (returning to the efficient curve without
disabling the trapped set).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.security import model_check as mc


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Model-check the fV machine and a seeded mutant."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="ext-modelcheck",
        title="Exhaustive state-space verification of the fV machine",
    )
    verified = mc.explore()
    result.lines.append(
        f"explored {verified.states_explored} states / "
        f"{verified.transitions} transitions: "
        f"violations={len(verified.violations)}, "
        f"non-returning={len(verified.non_returning)}")

    # Seeded mutant: the checker must catch it (otherwise it proves
    # nothing).  Locally patch the transition relation.
    original = mc.step

    def buggy(state, event):
        out = original(state, event)
        if event == "timer_fire" and out is not None:
            return mc.AbstractState(curve="E", disabled=False,
                                    timer_armed=False, pending="E")
        return out

    mc.step = buggy
    try:
        mutant = mc.explore()
    finally:
        mc.step = original
    result.lines.append(
        f"seeded mutant (no disable on return): "
        f"{len(mutant.violations)} violation(s) found, witness trace "
        f"{mutant.violations[0].trace if mutant.violations else '-'}")

    result.add_metric("machine_verified",
                      1.0 if verified.holds else 0.0, paper=1.0, unit="")
    result.add_metric("no_deadlock",
                      1.0 if not verified.non_returning else 0.0,
                      paper=1.0, unit="")
    result.add_metric("mutant_caught",
                      1.0 if not mutant.holds else 0.0, paper=1.0, unit="")
    result.add_metric("states_explored", float(verified.states_explored),
                      unit="count")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
