"""Fig 7: timeline of AES instruction executions while VLC streams.

Regenerates the gap-size timeline of the VLC trace (bursts appear as
vertical segments, idle spans as high plateaus) and the burst statistics
behind the paper's observation that faultable instructions arrive in
bursts with gaps spanning many orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cached_trace
from repro.workloads.analysis import burst_statistics, gap_size_timeline
from repro.workloads.network import VLC_PROFILE


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 7 data."""
    del fast
    result = ExperimentResult(
        experiment_id="fig7",
        title="AES gap-size timeline of VLC streaming",
    )
    trace = cached_trace(VLC_PROFILE, seed)
    indices, log_gaps = gap_size_timeline(trace)
    stats = burst_statistics(trace, burst_threshold=1_000_000)

    result.lines.append(
        f"{trace.n_events} AES-class events in {trace.n_instructions:,} "
        f"instructions; {stats.n_bursts} bursts, mean intra-burst gap "
        f"{stats.mean_intra_gap:.0f} instr, median inter-burst gap "
        f"{stats.median_inter_gap:.2e} instr")

    # The defining property: gaps span many orders of magnitude and the
    # trace is strongly burst-structured.
    spread_decades = float(log_gaps.max() - np.median(log_gaps))
    result.add_metric("gap_spread_decades", spread_decades, unit="dec")
    result.add_metric("bursty", 1.0 if stats.n_bursts >= 5 else 0.0, 1.0, unit="")
    result.add_metric(
        "intra_gap_below_deadline",
        1.0 if stats.mean_intra_gap < 30e-6 * 1.5 * 3e9 else 0.0, 1.0, unit="")
    result.data["gap_timeline"] = (indices, log_gaps)
    result.data["burst_statistics"] = stats
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
