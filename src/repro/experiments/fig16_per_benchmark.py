"""Fig 16: per-benchmark performance and efficiency on CPU C (fV).

Runs all 23 SPEC benchmarks plus Nginx and VLC at both offsets and
reports the per-workload performance/efficiency pairs, ordered like the
figure (descending efficiency).  Anchors from section 6.4: 557.xz
(+2.75 % perf, +16.9 % eff, 97.1 % on the efficient curve), 502.gcc
(-2.89 % perf, +9.67 % eff), 520.omnetpp (-0.13 % perf, +0.47 % eff).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.batchsim import SweepConfig
from repro.core.metrics import SimResult
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult
from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE
from repro.workloads.spec import all_spec_profiles

PAPER_ANCHORS = {
    "557.xz": {"perf": 0.0275, "eff": 0.169, "occupancy": 0.971},
    "502.gcc": {"perf": -0.0289, "eff": 0.0967, "occupancy": 0.766},
    "520.omnetpp": {"perf": -0.0013, "eff": 0.0047, "occupancy": 0.032},
}


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 16 data."""
    result = ExperimentResult(
        experiment_id="fig16",
        title="Per-benchmark performance and efficiency, CPU C, fV strategy",
    )
    profiles = all_spec_profiles() + [NGINX_PROFILE, VLC_PROFILE]
    if fast:
        keep = set(PAPER_ANCHORS) | {"525.x264", "521.wrf", "nginx"}
        profiles = [p for p in profiles if p.name in keep]

    # One vectorized sweep per profile covers both offsets over the
    # shared compiled episode (bit-identical to the per-offset
    # run_profile loops this replaces — the goldens hold).
    offsets = (-0.070, -0.097)
    suit = SuitSystem.for_cpu("C", strategy_name="fV", seed=seed)
    configs = [SweepConfig(strategy="fV", voltage_offset=off, seed=seed)
               for off in offsets]
    per_offset: Dict[float, List[SimResult]] = {off: [] for off in offsets}
    for p in profiles:
        for offset, sim in zip(offsets, suit.run_sweep(p, configs)):
            per_offset[offset].append(sim)

    results = sorted(per_offset[-0.097], key=lambda r: -r.efficiency_change)
    result.lines.append("workload          perf(-97)   eff(-97)   occupancy")
    for r in results:
        result.lines.append(
            f"{r.workload:<16s} {r.perf_change * 100:+8.2f}%  "
            f"{r.efficiency_change * 100:+8.2f}%  {r.efficient_occupancy:9.3f}")

    for name, anchors in PAPER_ANCHORS.items():
        match = next((r for r in results if r.workload == name), None)
        if match is None:
            continue
        result.add_metric(f"{name}.perf", match.perf_change, anchors["perf"])
        result.add_metric(f"{name}.eff", match.efficiency_change, anchors["eff"])
        result.add_metric(f"{name}.occupancy", match.efficient_occupancy,
                          anchors["occupancy"], unit="")
    if not fast:
        eff97 = {r.workload: r.efficiency_change for r in per_offset[-0.097]}
        eff70 = {r.workload: r.efficiency_change for r in per_offset[-0.070]}
        doubled = [eff97[w] / eff70[w] for w in eff97
                   if eff70[w] > 0.02]
        result.add_metric(
            "mean_eff_ratio_97_vs_70",
            sum(doubled) / len(doubled), 2.0, unit="x")
    result.data["results"] = {off: rs for off, rs in per_offset.items()}
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
