"""Run every experiment and emit a combined report.

Usage:
    python -m repro.experiments.runall [--fast] [--out report.md]

The full run regenerates every table and figure of the paper and prints
each paper-vs-measured comparison; its output is the source of
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List

from repro.experiments.common import ExperimentResult

#: Experiment module names, in paper order.
EXPERIMENT_MODULES = (
    "table1_faults",
    "table2_undervolting",
    "table3_temperature",
    "table4_nosimd",
    "table5_gem5_config",
    "table6_main",
    "table7_parameters",
    "table8_nosimd_vs_suit",
    "fig2_guardbands",
    "fig5_burst_detail",
    "fig6_fv_timeline",
    "fig7_vlc_timeline",
    "fig8_voltage_delay",
    "fig9_freq_delay_intel",
    "fig10_freq_delay_amd",
    "fig11_xeon_pstate",
    "fig12_undervolt_sweep",
    "fig13_dvfs_curves",
    "fig14_imul_latency",
    "fig16_per_benchmark",
    "ablation_imul",
    "ablation_thrashing",
    "ablation_cores",
    "ablation_uarch",
    "ext_adaptive_policy",
    "ext_covert_channel",
    "ext_baselines",
    "ext_scheduler",
    "ext_thermal_adaptive",
    "ext_heterogeneous",
    "ext_governor",
    "ext_aging_lifetime",
    "ext_seed_sensitivity",
    "ext_avx_licensing",
    "ext_model_check",
    "ext_tiers",
    "ext_percore",
)


def run_all(seed: int = 0, fast: bool = False,
            only: List[str] = None) -> List[ExperimentResult]:
    """Run all (or the selected) experiments; returns their results."""
    results = []
    for name in EXPERIMENT_MODULES:
        if only and name not in only:
            continue
        module = importlib.import_module(f"repro.experiments.{name}")
        start = time.time()
        result = module.run(seed=seed, fast=fast)
        elapsed = time.time() - start
        print(result.report())
        print(f"[{name} finished in {elapsed:.1f}s]\n", flush=True)
        results.append(result)
    return results


def summarize(results: List[ExperimentResult]) -> str:
    """One-line-per-metric summary of every comparison."""
    lines = ["# Paper-vs-measured summary", ""]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        for metric in result.metrics:
            lines.append(f"- {metric.format()}")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Command-line entry point; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="trimmed workloads / repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment module names")
    parser.add_argument("--out", default=None,
                        help="write the metric summary to this file")
    args = parser.parse_args(argv)
    results = run_all(seed=args.seed, fast=args.fast, only=args.only)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(summarize(results))
        print(f"summary written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
