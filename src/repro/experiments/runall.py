"""Run every experiment and emit a combined report.

Usage:
    python -m repro.experiments.runall [--fast] [--jobs N] [--no-cache]
                                       [--only MOD ...] [--out report.md]
                                       [--json [report.json]]

The full run regenerates every table and figure of the paper and prints
each paper-vs-measured comparison; its output is the source of
EXPERIMENTS.md.  Execution is delegated to
:class:`repro.runtime.engine.ExperimentEngine`: experiments run on a
process pool (``--jobs``), are seeded deterministically per module, and
are memoized in an on-disk content-addressed cache (disable with
``--no-cache``), so a warm re-run is near-instant.  ``--json`` writes
the machine-readable report next to the markdown summary.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs import logging_setup

# Explicit name: under ``python -m repro.experiments.runall`` this file
# runs as ``__main__``, which would fall outside the ``repro`` logger
# hierarchy that logging_setup configures.
logger = logging.getLogger("repro.experiments.runall")

#: Experiment module names, in paper order.
EXPERIMENT_MODULES = (
    "table1_faults",
    "table2_undervolting",
    "table3_temperature",
    "table4_nosimd",
    "table5_gem5_config",
    "table6_main",
    "table7_parameters",
    "table8_nosimd_vs_suit",
    "fig2_guardbands",
    "fig5_burst_detail",
    "fig6_fv_timeline",
    "fig7_vlc_timeline",
    "fig8_voltage_delay",
    "fig9_freq_delay_intel",
    "fig10_freq_delay_amd",
    "fig11_xeon_pstate",
    "fig12_undervolt_sweep",
    "fig13_dvfs_curves",
    "fig14_imul_latency",
    "fig15_strategies",
    "fig16_per_benchmark",
    "ablation_imul",
    "ablation_thrashing",
    "ablation_cores",
    "ablation_uarch",
    "ext_adaptive_policy",
    "ext_covert_channel",
    "ext_baselines",
    "ext_scheduler",
    "ext_thermal_adaptive",
    "ext_heterogeneous",
    "ext_governor",
    "ext_aging_lifetime",
    "ext_seed_sensitivity",
    "ext_avx_licensing",
    "ext_model_check",
    "ext_tiers",
    "ext_percore",
    "ext_campaign_msr",
    "ext_campaign_vmin",
    "ext_dse_nginx",
)


def _print_report(report) -> None:
    """Print each record's textual report (or failure) in paper order."""
    for record in report.records:
        if record.ok:
            print(record.to_result().report())
            print(flush=True)
            cached = " (cached)" if record.cache_hit else ""
            logger.info("%s finished in %.1fs%s", record.module,
                        record.wall_time_s, cached)
        else:
            print(f"== {record.module}: FAILED ==")
            print(record.error)
            print(flush=True)
            logger.error("%s failed: %s", record.module, record.error)


def run_all(seed: int = 0, fast: bool = False,
            only: Optional[Sequence[str]] = None, jobs: int = 1,
            cache=None, share_traces: bool = False) -> List[ExperimentResult]:
    """Run all (or the selected) experiments; returns their results.

    Thin wrapper over :class:`~repro.runtime.engine.ExperimentEngine`
    keeping the historical interface: prints each report as it is known
    and returns the successful :class:`ExperimentResult` objects in
    paper order.  Pass a :class:`~repro.runtime.cache.ResultCache` as
    *cache* to memoize across invocations; *share_traces* serves
    synthesised traces to pool workers through the zero-copy shared
    store.
    """
    from repro.runtime.engine import ExperimentEngine

    engine = ExperimentEngine(modules=EXPERIMENT_MODULES, jobs=jobs,
                              cache=cache, share_traces=share_traces)
    report = engine.run(seed=seed, fast=fast, only=only)
    _print_report(report)
    return report.results()


def summarize(results: List[ExperimentResult]) -> str:
    """One-line-per-metric summary of every comparison."""
    lines = ["# Paper-vs-measured summary", ""]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        for metric in result.metrics:
            lines.append(f"- {metric.format()}")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point; returns the exit code."""
    from repro.runtime.cache import ResultCache
    from repro.runtime.engine import ExperimentEngine

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="trimmed workloads / repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment module names")
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_JOBS", "1")),
                        help="parallel worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; do not touch the result cache")
    parser.add_argument("--share-traces", action="store_true",
                        help="serve synthesised traces to pool workers "
                             "through the zero-copy shared trace store")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro-suit)")
    parser.add_argument("--out", default=None,
                        help="write the metric summary to this file")
    parser.add_argument("--json", nargs="?", const=True, default=None,
                        metavar="PATH",
                        help="write the machine-readable report "
                             "(default: report.json next to --out)")
    parser.add_argument("--log-level", default="INFO",
                        help="logging threshold (DEBUG, INFO, ...)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines")
    args = parser.parse_args(argv)

    try:
        logging_setup(args.log_level, json_format=args.log_json)
    except ValueError as exc:
        parser.error(str(exc))

    cache = None
    if not args.no_cache:
        cache = ResultCache(Path(args.cache_dir) if args.cache_dir else None)
    engine = ExperimentEngine(modules=EXPERIMENT_MODULES, jobs=args.jobs,
                              cache=cache, share_traces=args.share_traces)
    try:
        report = engine.run(seed=args.seed, fast=args.fast, only=args.only)
    except ValueError as exc:
        parser.error(str(exc))
    _print_report(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(summarize(report.results()))
        logger.info("summary written to %s", args.out)
    if args.json is not None:
        if args.json is True:
            base = Path(args.out).parent if args.out else Path(".")
            json_path = base / "report.json"
        else:
            json_path = Path(args.json)
        report.write(json_path)
        logger.info("report written to %s (%d/%d cached, %.1fs)",
                    json_path, report.n_cache_hits, len(report.records),
                    report.total_wall_time_s)
    return 0 if report.n_failed == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
