"""Extension: SUIT under the OS frequency governor (section 2.4).

SUIT's curve selection is orthogonal to the governor's p-state
selection; two facts make them compose cleanly, both checked here:

1. the efficient curve saves dynamic power on *every* rung of the
   ladder (the fixed offset is relatively larger at low rungs, so the
   saving only grows when the governor downclocks);
2. the timescales are separated by ~three orders of magnitude — SUIT's
   30 us deadline churns well inside one 10 ms governor period, so a
   governor sample almost never lands mid-transition.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k
from repro.power.pstates import DualCurveLadder, OndemandGovernor, PStateLadder


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Governor walk over a bursty utilisation profile, with SUIT."""
    result = ExperimentResult(
        experiment_id="ext-governor",
        title="SUIT's efficient curve under an ondemand governor",
    )
    cpu = cpu_a_i9_9900k()
    dual = DualCurveLadder.from_curve(cpu.conservative_curve, -0.097)
    governor = OndemandGovernor(dual.conservative)

    rng = np.random.default_rng(seed)
    n = 50 if fast else 400
    # Bursty utilisation: interactive idling punctuated by load spikes.
    utilization = np.clip(
        np.where(rng.random(n) < 0.3, rng.uniform(0.85, 1.0, n),
                 rng.uniform(0.05, 0.45, n)), 0.0, 1.0)

    savings = []
    rungs = []
    for u in utilization:
        state = governor.sample(float(u))
        index = dual.conservative.nearest_index(state.frequency)
        rungs.append(index)
        savings.append(dual.power_saving_at(index))
    savings = np.array(savings)

    result.lines.append(
        f"governor visited {len(set(rungs))} of "
        f"{dual.conservative.n_states} rungs; efficient-curve dynamic "
        f"saving {savings.min() * 100:.1f}%..{savings.max() * 100:.1f}% "
        f"(mean {savings.mean() * 100:.1f}%)")

    deadline_s = 30e-6
    ratio = governor.sampling_period_s / deadline_s
    result.lines.append(
        f"timescale separation: governor period / SUIT deadline = {ratio:.0f}x")

    result.add_metric("saving_positive_on_every_rung",
                      1.0 if savings.min() > 0 else 0.0, paper=1.0, unit="")
    result.add_metric("saving_grows_when_downclocked",
                      1.0 if dual.power_saving_at(0) > dual.power_saving_at(
                          dual.conservative.n_states - 1) else 0.0,
                      paper=1.0, unit="")
    result.add_metric("mean_dynamic_saving", float(savings.mean()))
    result.add_metric("timescale_separation", ratio, unit="x")
    result.data["savings"] = savings
    result.data["rungs"] = rungs
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
