"""Extension: SUIT vs the related-work baselines (paper section 7).

The paper positions SUIT against prior undervolting schemes
qualitatively; this experiment runs them all against the same chip
instance and workload, measuring efficiency *and* security:

* naive/xDVS-style static undervolting at the schemes' reported depths;
* Razor timing speculation (with circuit + replay overheads);
* ECC-feedback calibration, in its native Itanium setting and on x86;
* SUIT (fV at -97 mV), the only entry that is both efficient and has
  zero silent-corruption exposure while preserving the aging guardband.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ecc import EccFeedbackUndervolting
from repro.baselines.naive import NaiveUndervolting
from repro.baselines.razor import RazorCore
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult, cached_trace
from repro.faults.model import FaultModel
from repro.workloads.spec import spec_profile


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Compare SUIT against the section 7 baselines."""
    result = ExperimentResult(
        experiment_id="ext-baselines",
        title="SUIT vs naive undervolting, Razor and ECC feedback",
    )
    suit_system = SuitSystem.for_cpu("A", strategy_name="fV",
                                     voltage_offset=-0.097, seed=seed)
    cpu = suit_system.cpu
    chip = FaultModel().sample_chip(
        cpu.conservative_curve, n_cores=4,
        rng=np.random.default_rng(seed + 17), exhibits=True)
    profile = spec_profile("502.gcc" if not fast else "557.xz")
    trace = cached_trace(profile, seed)

    rows = []

    # --- SUIT -------------------------------------------------------------
    suit_system.prime_trace(profile, trace)
    suit = suit_system.run_profile(profile)
    rows.append(("SUIT fV -97mV", suit.efficiency_change, 0, True,
                 "guardbands preserved"))

    # --- naive undervolting at the xDVS-reported depth ----------------------
    naive = NaiveUndervolting(cpu, chip)
    deep = naive.run(trace, -0.200, np.random.default_rng(seed))
    rows.append(("naive -200mV (xDVS)", deep.efficiency_change,
                 deep.silent_faults, deep.secure, "aging guardband consumed"))
    shallow = naive.run(trace, max(naive.first_silent_fault_offset() + 0.005,
                                   -0.250),
                        np.random.default_rng(seed))
    rows.append(("naive, fault-free depth", shallow.efficiency_change,
                 shallow.silent_faults, shallow.secure,
                 f"only {shallow.offset_v * 1e3:.0f} mV usable"))

    # --- Razor --------------------------------------------------------------
    razor = RazorCore(cpu, chip).settle(imul_density=profile.imul_density)
    rows.append((f"Razor ({razor.offset_v * 1e3:.0f}mV)",
                 razor.efficiency_change, 0, True,
                 f"+{100 * 0.035:.1f}% circuitry, replays"))

    # --- ECC feedback --------------------------------------------------------
    itanium = EccFeedbackUndervolting.itanium_like(cpu, chip).calibrate()
    x86 = EccFeedbackUndervolting.x86_like(cpu, chip).calibrate()
    rows.append((f"ECC (Itanium, {itanium.offset_v * 1e3:.0f}mV)",
                 -itanium.power_change / (1 - itanium.power_change),
                 itanium.silent_datapath_faults, itanium.secure,
                 "works: SRAM faults first"))
    rows.append((f"ECC (x86, {x86.offset_v * 1e3:.0f}mV)",
                 -x86.power_change / (1 - x86.power_change),
                 x86.silent_datapath_faults, x86.secure,
                 "blind to datapath faults"))

    result.lines.append(f"{'scheme':<26} {'eff':>8} {'silent':>7} "
                        f"{'secure':>7}  notes")
    for name, eff, faults, secure, note in rows:
        result.lines.append(
            f"{name:<26} {eff * 100:+7.1f}% {faults:>7d} {str(secure):>7}  {note}")

    result.add_metric("suit_secure_and_positive",
                      1.0 if suit.efficiency_change > 0 else 0.0,
                      paper=1.0, unit="")
    result.add_metric("naive_deep_insecure",
                      0.0 if deep.secure else 1.0, paper=1.0, unit="")
    result.add_metric("naive_deep_silent_faults", float(deep.silent_faults),
                      unit="count")
    result.add_metric("ecc_x86_insecure",
                      0.0 if x86.secure else 1.0, paper=1.0, unit="")
    result.add_metric("ecc_itanium_secure",
                      1.0 if itanium.secure else 0.0, paper=1.0, unit="")
    result.add_metric("razor_efficiency", razor.efficiency_change)
    result.data["rows"] = rows
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
