"""Fig 13 (and Fig 4): frequency-voltage pairs and the modified IMUL.

Reports the i9-9900K conservative curve, the safe-voltage curve of the
4-cycle (SUIT-hardened) IMUL, and the headroom between them: ~220 mV at
5 GHz, shrinking to almost nothing at low frequency — the section 6.9
argument that hardening IMUL is strictly within today's vendor margins.
Also emits the Fig 4 switch targets Cf and CV from a 4.3 GHz efficient
p-state.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.power.dvfs import (
    CurveKind,
    DVFSCurve,
    I9_9900K_CURVE_POINTS,
    modified_imul_curve,
    switch_targets,
)
from repro.security.analysis import imul_hardening_headroom


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 13 curves."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="fig13",
        title="Stable frequency-voltage pairs and the modified-IMUL curve",
    )
    curve = DVFSCurve(I9_9900K_CURVE_POINTS, name="i9-9900K")
    imul4 = modified_imul_curve(curve, old_latency=3, new_latency=4)

    result.lines.append("freq(GHz)  conservative(V)  imul-4cyc(V)  headroom(mV)")
    headrooms = {}
    for f_ghz in (1.0, 2.0, 3.0, 4.0, 5.0):
        f = f_ghz * 1e9
        head = imul_hardening_headroom(curve, f)
        headrooms[f_ghz] = head
        result.lines.append(
            f"{f_ghz:8.1f}  {curve.voltage_at(f):15.3f}  "
            f"{imul4.voltage_at(f):12.3f}  {head * 1e3:11.0f}")

    result.add_metric("headroom@5GHz", headrooms[5.0], 0.220, unit="V")
    result.add_metric("headroom@1GHz_small",
                      1.0 if headrooms[1.0] < 0.040 else 0.0, 1.0, unit="")
    result.add_metric("voltage@4GHz", curve.voltage_at(4.0e9), 0.991, unit="V")
    result.add_metric("voltage@5GHz", curve.voltage_at(5.0e9), 1.174, unit="V")

    # Fig 4: the two switch paths from an efficient p-state.
    efficient = curve.with_offset(-0.097, CurveKind.EFFICIENT)
    cf, cv = switch_targets(efficient, curve, 4.3e9)
    result.lines.append(
        f"Fig 4 from E@4.3GHz: Cf = {cf.frequency / 1e9:.2f} GHz @ "
        f"{cf.voltage:.3f} V; CV = {cv.frequency / 1e9:.2f} GHz @ "
        f"{cv.voltage:.3f} V")
    result.add_metric("cf_below_nominal_freq",
                      1.0 if cf.frequency < 4.3e9 else 0.0, 1.0, unit="")
    result.add_metric("cv_at_nominal_freq",
                      1.0 if abs(cv.frequency - 4.3e9) < 1 else 0.0, 1.0, unit="")
    result.data["conservative_points"] = curve.points
    result.data["imul4_points"] = imul4.points
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
