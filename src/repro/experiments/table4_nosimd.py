"""Table 4: performance impact of compiling SPEC without SSE/AVX.

Aggregates the per-benchmark no-SIMD score impacts of the workload
profiles into the suite means Table 4 reports, and echoes the
individually-listed benchmarks (everything exceeding the paper's 5 %
reporting threshold).
"""

from __future__ import annotations

from repro.core.metrics import geomean_change
from repro.experiments.common import ExperimentResult
from repro.workloads.spec import SPEC_FP_NAMES, SPEC_INT_NAMES, SPEC_PROFILES

#: Table 4 reference values (fractions; negative = slower without SIMD).
PAPER_TABLE4 = {
    "i9-9900K": {"fprate": -0.041, "intrate": 0.005, "508.namd": -0.22,
                 "521.wrf": -0.014, "538.imagick": -0.12, "554.roms": -0.033,
                 "525.x264": 0.070, "548.exchange2": 0.077},
    "7700X": {"fprate": -0.059, "intrate": 0.026, "508.namd": -0.35,
              "521.wrf": -0.053, "538.imagick": -0.09, "554.roms": -0.19,
              "525.x264": 0.22, "548.exchange2": 0.068},
}

_VENDOR = {"i9-9900K": "intel", "7700X": "amd"}


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 4."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="table4",
        title="SPEC CPU2017 score impact of disabling SSE and AVX",
    )
    for cpu_name, vendor in _VENDOR.items():
        fp = geomean_change(
            SPEC_PROFILES[n].nosimd_for(vendor) for n in SPEC_FP_NAMES)
        intr = geomean_change(
            SPEC_PROFILES[n].nosimd_for(vendor) for n in SPEC_INT_NAMES)
        paper = PAPER_TABLE4[cpu_name]
        result.lines.append(
            f"{cpu_name}: fprate {fp * 100:+.1f}% ({paper['fprate'] * 100:+.1f}%)  "
            f"intrate {intr * 100:+.1f}% ({paper['intrate'] * 100:+.1f}%)")
        result.add_metric(f"{cpu_name}.fprate", fp, paper["fprate"])
        result.add_metric(f"{cpu_name}.intrate", intr, paper["intrate"])
        for bench in ("508.namd", "521.wrf", "538.imagick", "554.roms",
                      "525.x264", "548.exchange2"):
            measured = SPEC_PROFILES[bench].nosimd_for(vendor)
            result.add_metric(f"{cpu_name}.{bench}", measured, paper[bench])
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
