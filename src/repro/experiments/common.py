"""Shared experiment plumbing: result containers and trace caching."""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import get_registry
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


@dataclass(frozen=True)
class Metric:
    """One paper-vs-measured comparison.

    Attributes:
        name: metric identifier (e.g. "C.fV.-97mV.SPECgmean.eff").
        measured: reproduced value.
        paper: the paper's value, or None where the paper gives none.
        unit: display unit; fractional values with unit "%" print x100.
    """

    name: str
    measured: float
    paper: Optional[float] = None
    unit: str = "%"

    def format(self) -> str:
        """Render as "name: measured X (paper Y)"."""
        def fmt(value: float) -> str:
            if self.unit == "%":
                return f"{value * 100:+.2f}%"
            if self.unit == "s":
                return f"{value * 1e6:+.1f}us"
            if self.unit == "V":
                return f"{value * 1e3:+.1f}mV"
            return f"{value:+.3g}{self.unit}"

        text = f"{self.name}: measured {fmt(self.measured)}"
        if self.paper is not None:
            text += f" (paper {fmt(self.paper)})"
        return text

    @property
    def abs_error(self) -> Optional[float]:
        if self.paper is None:
            return None
        return abs(self.measured - self.paper)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: "table6", "fig14", ...
        title: human-readable description.
        metrics: headline paper-vs-measured comparisons.
        lines: preformatted report lines (the regenerated table rows).
        data: raw series for plotting / further analysis.
    """

    experiment_id: str
    title: str
    metrics: List[Metric] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def add_metric(self, name: str, measured: float,
                   paper: Optional[float] = None, unit: str = "%") -> None:
        """Append one paper-vs-measured comparison."""
        self.metrics.append(Metric(name, measured, paper, unit))

    def metric(self, name: str) -> Metric:
        """Look up a metric by name (KeyError if absent)."""
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"no metric named {name!r} in {self.experiment_id}")

    def report(self) -> str:
        """Full textual report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.lines)
        if self.metrics:
            parts.append("-- paper vs measured --")
            parts.extend(m.format() for m in self.metrics)
        return "\n".join(parts)


#: Upper bound on retained traces; oldest-used entries are evicted first.
#: Sized to hold the full SPEC suite plus the network workloads at two
#: seeds (23 SPEC + nginx + vlc = 25 per seed) without thrashing.
TRACE_CACHE_MAX_ENTRIES = 56

_TRACE_CACHE: "OrderedDict[Tuple[str, int], FaultableTrace]" = OrderedDict()
_TRACE_CACHE_LOCK = threading.Lock()


def _trace_cache_key(profile: WorkloadProfile, seed: int) -> Tuple[str, int]:
    """Value-based cache key for ``(profile, seed)``.

    Keyed on the profile's full field repr rather than its name: two
    distinct profiles that happen to share a name (common in tests and
    ad-hoc sweeps) must not alias each other's traces.
    """
    return (repr(profile), int(seed))


def cached_trace(profile: WorkloadProfile, seed: int = 0) -> FaultableTrace:
    """Per-process LRU trace cache: experiments share synthesised traces.

    The cache is bounded (:data:`TRACE_CACHE_MAX_ENTRIES`, LRU
    eviction) and thread-safe.  It is deliberately **per process**: pool
    workers of the experiment engine each hold their own copy and never
    share entries.  That cannot diverge results — ``generate_trace`` is
    a pure function of ``(profile, seed)`` and the key covers every
    profile field — it only means a trace may be synthesised once per
    worker instead of once per machine.
    """
    hits = get_registry().counter("trace_cache_hits_total",
                                  "synthesised traces served from cache")
    misses = get_registry().counter("trace_cache_misses_total",
                                    "traces synthesised on a cache miss")
    key = _trace_cache_key(profile, seed)
    with _TRACE_CACHE_LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is not None:
            _TRACE_CACHE.move_to_end(key)
            hits.inc()
            return trace
    misses.inc()
    trace = generate_trace(profile, seed=seed)
    with _TRACE_CACHE_LOCK:
        existing = _TRACE_CACHE.get(key)
        if existing is not None:
            _TRACE_CACHE.move_to_end(key)
            return existing
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > TRACE_CACHE_MAX_ENTRIES:
            _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (tests and memory-sensitive callers)."""
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()


def trace_cache_info() -> Dict[str, int]:
    """Current size and capacity of this process's trace cache."""
    with _TRACE_CACHE_LOCK:
        return {"entries": len(_TRACE_CACHE),
                "max_entries": TRACE_CACHE_MAX_ENTRIES}


def pct(value: float) -> str:
    """Format a fraction as a signed percentage."""
    return f"{value * 100:+.2f}%"
