"""Shared experiment plumbing: result containers and trace caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Re-exported for compatibility: the cache now lives with the workloads
# (layered over the shared trace store), see repro.workloads.tracecache.
from repro.workloads.tracecache import (  # noqa: F401
    TRACE_CACHE_MAX_ENTRIES,
    cached_trace,
    clear_trace_cache,
    trace_cache_info,
)


@dataclass(frozen=True)
class Metric:
    """One paper-vs-measured comparison.

    Attributes:
        name: metric identifier (e.g. "C.fV.-97mV.SPECgmean.eff").
        measured: reproduced value.
        paper: the paper's value, or None where the paper gives none.
        unit: display unit; fractional values with unit "%" print x100.
    """

    name: str
    measured: float
    paper: Optional[float] = None
    unit: str = "%"

    def format(self) -> str:
        """Render as "name: measured X (paper Y)"."""
        def fmt(value: float) -> str:
            if self.unit == "%":
                return f"{value * 100:+.2f}%"
            if self.unit == "s":
                return f"{value * 1e6:+.1f}us"
            if self.unit == "V":
                return f"{value * 1e3:+.1f}mV"
            return f"{value:+.3g}{self.unit}"

        text = f"{self.name}: measured {fmt(self.measured)}"
        if self.paper is not None:
            text += f" (paper {fmt(self.paper)})"
        return text

    @property
    def abs_error(self) -> Optional[float]:
        if self.paper is None:
            return None
        return abs(self.measured - self.paper)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: "table6", "fig14", ...
        title: human-readable description.
        metrics: headline paper-vs-measured comparisons.
        lines: preformatted report lines (the regenerated table rows).
        data: raw series for plotting / further analysis.
    """

    experiment_id: str
    title: str
    metrics: List[Metric] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def add_metric(self, name: str, measured: float,
                   paper: Optional[float] = None, unit: str = "%") -> None:
        """Append one paper-vs-measured comparison."""
        self.metrics.append(Metric(name, measured, paper, unit))

    def metric(self, name: str) -> Metric:
        """Look up a metric by name (KeyError if absent)."""
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"no metric named {name!r} in {self.experiment_id}")

    def report(self) -> str:
        """Full textual report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.lines)
        if self.metrics:
            parts.append("-- paper vs measured --")
            parts.extend(m.format() for m in self.metrics)
        return "\n".join(parts)


def pct(value: float) -> str:
    """Format a fraction as a signed percentage."""
    return f"{value * 100:+.2f}%"
