"""Table 8: compile-time no-SIMD versus runtime SUIT.

For each configuration, counts on how many SPEC benchmarks compiling
without SIMD yields higher performance than running the SIMD build under
SUIT (at -97 mV) — the paper's Table 8.  Emulation never wins but needs
no recompilation (section 6.7).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult, cached_trace
from repro.workloads.spec import all_spec_profiles

#: Paper Table 8: config -> (benchmarks where no-SIMD wins, where SUIT wins).
PAPER_TABLE8: Dict[str, Tuple[int, int]] = {
    "A1.fV": (15, 8),
    "A4.fV": (21, 2),
    "Ae.e": (23, 0),
    "Bf.f": (21, 2),
    "Be.e": (23, 0),
    "C.fV": (16, 7),
}

_CONFIGS = (
    ("A1.fV", "A", 1, "fV"),
    ("A4.fV", "A", 4, "fV"),
    ("Ae.e", "A", 1, "e"),
    ("Bf.f", "B", 1, "f"),
    ("Be.e", "B", 1, "e"),
    ("C.fV", "C", 1, "fV"),
)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 8."""
    result = ExperimentResult(
        experiment_id="table8",
        title="Benchmarks where compiling without SIMD beats SUIT (-97 mV)",
    )
    profiles = all_spec_profiles()
    if fast:
        profiles = profiles[::3]
    configs = _CONFIGS if not fast else _CONFIGS[:1] + _CONFIGS[-1:]
    result.lines.append("config    no-SIMD wins (paper)   SUIT wins (paper)")
    for label, cpu, cores, strategy in configs:
        suit = SuitSystem.for_cpu(cpu, strategy_name=strategy, n_cores=cores,
                                  voltage_offset=-0.097, seed=seed)
        for p in profiles:
            suit.prime_trace(p, cached_trace(p, seed))
        nosimd_wins = 0
        for p in profiles:
            with_suit = suit.run_profile(p).perf_change
            without_simd = suit.run_profile_nosimd(p).perf_change
            if without_simd > with_suit:
                nosimd_wins += 1
        suit_wins = len(profiles) - nosimd_wins
        paper_n, paper_s = PAPER_TABLE8[label]
        result.lines.append(
            f"{label:<9s} {nosimd_wins:>3d} ({paper_n})              "
            f"{suit_wins:>3d} ({paper_s})")
        if not fast:
            result.add_metric(f"{label}.nosimd_wins", nosimd_wins, paper_n,
                              unit="count")
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
