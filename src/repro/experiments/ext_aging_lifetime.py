"""Extension: how long can SUIT spend 20 % of the aging guardband?

Section 3.1 argues data-center CPUs are replaced after a few years, so
SUIT may spend a *fraction* of the aging guardband (-97 mV = -70 mV
variation + 20 % of the 137 mV band) "in the first few years ... without
impact on reliability".  This experiment quantifies that: it ages a
chip year by year (BTI/HCI margin erosion at a controlled 60 degC) and
audits both offsets with the reductionist security check.

Expected shape: the -70 mV point (no aging budget spent) stays safe for
the full 10-year design life; the -97 mV point is safe through the
procurement cycles the paper cites (~4-5 years at data-center
temperatures) and must be retired to -70 mV afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.faults.model import FaultModel
from repro.hardware.models import cpu_a_i9_9900k
from repro.security.analysis import check_efficient_curve

_FREQS = (2.0e9, 3.0e9, 4.0e9)
_CONTROLLED_C = 60.0  # well-controlled data-center core temperature
_WORST_C = 100.0  # the worst-case reference the guardband is sized for


def _safe_years(chip, offset: float, years, temp_c: float) -> float:
    """Last year (of the sampled grid) at which *offset* audits safe."""
    last_safe = -1.0
    for year in years:
        aged = chip.aged(year, temp_c=temp_c)
        if check_efficient_curve(aged, offset, _FREQS).safe:
            last_safe = year
        else:
            break
    return last_safe


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Audit both offsets over a 10-year life."""
    result = ExperimentResult(
        experiment_id="ext-aging",
        title="Lifetime safety of the -70/-97 mV offsets under aging",
    )
    cpu = cpu_a_i9_9900k()
    chip = FaultModel().sample_chip(
        cpu.conservative_curve, n_cores=2 if fast else 4,
        rng=np.random.default_rng(seed + 5), exhibits=True)
    years = (0.0, 2.0, 5.0, 10.0) if fast else tuple(float(y) for y in range(11))

    rows = []
    for year in years:
        cool = chip.aged(year, temp_c=_CONTROLLED_C)
        hot = chip.aged(year, temp_c=_WORST_C)
        row = (year,
               check_efficient_curve(cool, -0.097, _FREQS).safe,
               check_efficient_curve(hot, -0.070, _FREQS).safe,
               check_efficient_curve(hot, -0.097, _FREQS).safe)
        rows.append(row)
        result.lines.append(
            f"year {year:4.1f}: -97mV@60C safe={row[1]}  "
            f"-70mV@100C safe={row[2]}  -97mV@100C safe={row[3]}")

    last70_hot = _safe_years(chip, -0.070, years, _WORST_C)
    last97_hot = _safe_years(chip, -0.097, years, _WORST_C)
    last97_cool = _safe_years(chip, -0.097, years, _CONTROLLED_C)
    result.lines.append(
        f"-70mV safe through year {last70_hot:.0f} even at {_WORST_C:.0f}C; "
        f"-97mV: year {last97_cool:.0f} at {_CONTROLLED_C:.0f}C but only "
        f"year {last97_hot:.0f} at {_WORST_C:.0f}C — the paper's 'first few "
        "years / controlled temperatures' condition, quantified")

    result.add_metric("minus70_safe_full_life_worst_case",
                      1.0 if last70_hot >= years[-1] else 0.0,
                      paper=1.0, unit="")
    result.add_metric("minus97_safe_controlled_full_life",
                      1.0 if last97_cool >= years[-1] else 0.0,
                      paper=1.0, unit="")
    result.add_metric("minus97_worst_case_safe_years", last97_hot, unit="y")
    result.add_metric("minus97_outlives_procurement_worst_case",
                      1.0 if 3.0 <= last97_hot < years[-1] else 0.0,
                      paper=1.0, unit="")
    result.data["rows"] = rows
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
