"""Table 2: performance / power / efficiency of plain undervolting.

Evaluates each CPU's calibrated undervolting response at the paper's two
offsets and compares score, power, frequency and efficiency changes with
the Table 2 measurements.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k, cpu_b_ryzen_7700x, cpu_i5_1035g1

#: Table 2 reference values: cpu -> offset -> (score, power, freq, eff).
PAPER_TABLE2: Dict[str, Dict[float, Tuple[float, float, float, float]]] = {
    "i5-1035G1": {
        -0.070: (0.060, -0.001, 0.085, 0.061),
        -0.097: (0.079, -0.005, 0.120, 0.084),
    },
    "i9-9900K": {
        -0.070: (0.022, -0.072, 0.026, 0.100),
        -0.097: (0.038, -0.160, 0.033, 0.230),
    },
    "7700X": {
        -0.070: (0.014, -0.098, 0.018, 0.120),
        -0.097: (0.019, -0.150, 0.018, 0.200),
    },
}

_CPUS = {
    "i5-1035G1": cpu_i5_1035g1,
    "i9-9900K": cpu_a_i9_9900k,
    "7700X": cpu_b_ryzen_7700x,
}


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 2."""
    del seed, fast  # deterministic closed-form evaluation
    result = ExperimentResult(
        experiment_id="table2",
        title="SPEC CPU2017 score/power/frequency/efficiency under undervolting",
    )
    result.lines.append(
        "CPU          offset   score        power        freq         efficiency")
    for name, factory in _CPUS.items():
        cpu = factory()
        r = cpu.response
        for offset, paper in PAPER_TABLE2[name].items():
            vals = (
                r.score_ratio(offset) - 1.0,
                r.power_ratio(offset) - 1.0,
                r.frequency_ratio(offset) - 1.0,
                r.efficiency_ratio(offset) - 1.0,
            )
            cells = "  ".join(
                f"{v * 100:+5.1f}({p * 100:+5.1f})" for v, p in zip(vals, paper))
            result.lines.append(f"{name:<12s} {offset * 1e3:+.0f}mV  {cells}")
            for metric, v, p in zip(("score", "power", "freq", "eff"), vals, paper):
                result.add_metric(f"{name}.{offset * 1e3:+.0f}mV.{metric}", v, p)
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
