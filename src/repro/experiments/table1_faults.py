"""Table 1: undervolting-induced instruction fault counts.

Reruns the Kogler-style characterization sweep against sampled chips of
our fault model and compares the per-instruction fault counts (and their
sensitivity ordering) with Table 1.  Also reproduces the section 4.2
statistic that IMUL faults first in ~91 % of cases.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.faults.characterize import CharacterizationSweep, SweepConfig
from repro.faults.model import FaultModel
from repro.isa.faultable import TABLE1_FAULT_COUNTS, faultable_sorted_by_sensitivity
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS


def _rank_correlation(order_a, order_b) -> float:
    """Spearman rank correlation of two orderings of the same items."""
    rank_a = {op: i for i, op in enumerate(order_a)}
    rank_b = {op: i for i, op in enumerate(order_b)}
    n = len(order_a)
    d2 = sum((rank_a[op] - rank_b[op]) ** 2 for op in order_a)
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 1."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Undervolting-induced instruction faults (Kogler-style sweep)",
    )
    config = SweepConfig(
        cores_per_chip=2 if fast else 4,
        n_chips=1 if fast else 2,
    )
    sweep = CharacterizationSweep(
        model=FaultModel(),
        curve=DVFSCurve(I9_9900K_CURVE_POINTS),
        config=config,
    )
    rng = np.random.default_rng(seed)
    counts = sweep.run(rng)
    measured_order = sorted(counts, key=lambda op: -counts[op])
    paper_order = faultable_sorted_by_sensitivity()

    header = "Instruction      paper-faults  measured-faults"
    result.lines.append(header)
    for op in paper_order:
        result.lines.append(
            f"{op.name:<16s} {TABLE1_FAULT_COUNTS[op]:>12d}  {counts[op]:>15d}")

    rho = _rank_correlation(paper_order, measured_order)
    result.add_metric("rank_correlation", rho, paper=1.0, unit="")
    result.add_metric(
        "imul_is_most_faulting",
        1.0 if measured_order[0] is Opcode.IMUL else 0.0,
        paper=1.0, unit="")

    firsts = sweep.first_fault_share(np.random.default_rng(seed + 1))
    result.add_metric("imul_faults_first_share", firsts[Opcode.IMUL], paper=0.912)
    result.data["counts"] = {op.name: counts[op] for op in counts}
    result.data["first_fault_share"] = {op.name: v for op, v in firsts.items()}
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
