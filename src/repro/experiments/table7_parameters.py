"""Table 7: optimal operating-strategy parameters.

Reruns the paper's parameter search (a grid over p_dl / p_ts / p_ec /
p_df maximising the average efficiency gain) on a representative
workload subset for each switching platform, and reproduces the plateau
observation: +-10 us of deadline movement changes the average efficiency
by well under a percent.
"""

from __future__ import annotations

from repro.core.params import DEFAULT_PARAMS_AMD, DEFAULT_PARAMS_INTEL
from repro.core.tuning import deadline_sensitivity, grid_search
from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_b_ryzen_7700x, cpu_c_xeon_4208
from repro.workloads.spec import SPEC_PROFILES

#: Search workloads: one trap-sparse, one mixed, one trap-dense.
_SEARCH_SET = ("557.xz", "502.gcc", "527.cam4", "525.x264")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 7."""
    result = ExperimentResult(
        experiment_id="table7",
        title="Optimal fV / thrashing-prevention parameters",
    )
    profiles = [SPEC_PROFILES[n] for n in (_SEARCH_SET[:2] if fast else _SEARCH_SET)]

    # Intel platforms (A & C): paper optimum 30us / 450us / 3 / 14.
    cpu_c = cpu_c_xeon_4208()
    deadlines = (20e-6, 30e-6, 60e-6) if fast else (10e-6, 20e-6, 30e-6, 60e-6, 120e-6)
    tuned = grid_search(
        cpu_c, profiles,
        deadlines_s=deadlines,
        timespans_s=(450e-6,),
        exception_counts=(3,),
        deadline_factors=(7.0, 14.0) if fast else (4.0, 9.0, 14.0, 20.0),
        seed=seed,
    )
    result.lines.append(
        f"A&C optimum: p_dl={tuned.best.deadline_s * 1e6:.0f}us "
        f"p_df={tuned.best.thrash_deadline_factor:.0f} "
        f"(paper: 30us / 450us / 3 / 14), eff {tuned.best_efficiency * 100:+.2f}%")
    result.add_metric("intel.p_dl", tuned.best.deadline_s, 30e-6, unit="s")
    result.add_metric("intel.grid_spread", tuned.sensitivity(), unit="")

    sens = deadline_sensitivity(cpu_c, profiles, DEFAULT_PARAMS_INTEL, seed=seed)
    result.add_metric("intel.deadline_pm10us_effect", sens, 0.0061, unit="")
    result.lines.append(
        f"deadline +-10us changes average efficiency by {sens * 100:.2f}% "
        "(paper: 0.61%)")

    if not fast:
        cpu_b = cpu_b_ryzen_7700x()
        tuned_b = grid_search(
            cpu_b, profiles,
            deadlines_s=(350e-6, 700e-6, 1400e-6),
            timespans_s=(14e-3,),
            exception_counts=(4,),
            deadline_factors=(5.0, 9.0, 14.0),
            strategy_name="f",
            seed=seed,
        )
        result.lines.append(
            f"B optimum: p_dl={tuned_b.best.deadline_s * 1e6:.0f}us "
            f"p_df={tuned_b.best.thrash_deadline_factor:.0f} "
            f"(paper: 700us / 14ms / 4 / 9)")
        result.add_metric("amd.p_dl", tuned_b.best.deadline_s, 700e-6, unit="s")
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
