"""Extension: statistical robustness of the headline result.

All transition delays are sampled from the section 5.2 distributions and
the traces are synthesised from seeded generators, so every reported
number is one draw.  This experiment reruns the headline configuration
(CPU C, fV, -97 mV) across independent seeds — for both the trace
synthesis and the delay sampling — and reports the spread: the +11 %
efficiency claim must not hinge on a lucky seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import geomean_change
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult
from repro.workloads.spec import spec_profile

_WORKLOADS = ("557.xz", "502.gcc", "525.x264", "527.cam4", "549.fotonik3d")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Seed sweep of the headline configuration."""
    result = ExperimentResult(
        experiment_id="ext-seeds",
        title="Seed sensitivity of the headline efficiency result",
    )
    names = _WORKLOADS[:3] if fast else _WORKLOADS
    seeds = range(seed, seed + (3 if fast else 8))

    effs, perfs = [], []
    for s in seeds:
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097, seed=s)
        results = [suit.run_profile(spec_profile(n)) for n in names]
        effs.append(geomean_change([r.efficiency_change for r in results]))
        perfs.append(geomean_change([r.perf_change for r in results]))
    effs = np.array(effs)
    perfs = np.array(perfs)

    result.lines.append(
        f"efficiency over {len(effs)} seeds: mean {effs.mean() * 100:+.2f}% "
        f"(sigma {effs.std() * 100:.2f} pp, "
        f"range {effs.min() * 100:+.2f}..{effs.max() * 100:+.2f})")
    result.lines.append(
        f"performance: mean {perfs.mean() * 100:+.2f}% "
        f"(sigma {perfs.std() * 100:.2f} pp)")

    result.add_metric("eff_mean", float(effs.mean()))
    result.add_metric("eff_sigma_pp", float(effs.std()), unit="")
    result.add_metric("eff_always_positive",
                      1.0 if effs.min() > 0 else 0.0, paper=1.0, unit="")
    result.add_metric("spread_below_1pp",
                      1.0 if effs.std() < 0.01 else 0.0, paper=1.0, unit="")
    result.data["efficiencies"] = effs
    result.data["performances"] = perfs
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
