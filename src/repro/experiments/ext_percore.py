"""Extension: per-core offsets on per-core voltage domains.

CPU C's PCPS gives every core its own regulator; combined with the
per-core margin variation Kogler et al. measured, SUIT can bin offsets
per core instead of provisioning the package for its weakest core.
This experiment samples a population of chips, derives per-core plans,
and quantifies the recovered power (with the −97 mV budget cap, strong
cores saturate at the cap and the gain comes from packages whose
weakest core binds below it).
"""

from __future__ import annotations

import numpy as np

from repro.core.percore import per_core_gain, plan_per_core_offsets
from repro.experiments.common import ExperimentResult
from repro.faults.model import FaultModel
from repro.hardware.models import cpu_c_xeon_4208

FREQS = (2.0e9, 3.0e9)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Per-core vs uniform offsets across a chip population."""
    result = ExperimentResult(
        experiment_id="ext-percore",
        title="Per-core efficient offsets vs the package-wide worst case",
    )
    cpu = cpu_c_xeon_4208()
    rng = np.random.default_rng(seed + 7)
    n_chips = 3 if fast else 10
    model = FaultModel(core_sigma_v=0.012)  # pronounced core binning

    gains, spreads = [], []
    for _ in range(n_chips):
        chip = model.sample_chip(cpu.conservative_curve, cpu.topology.n_cores,
                                 rng, exhibits=True)
        plan = plan_per_core_offsets(chip, FREQS)
        gains.append(per_core_gain(cpu, plan))
        spreads.append(plan.spread_v)
    gains = np.array(gains)
    spreads = np.array(spreads)

    result.lines.append(
        f"{n_chips} chips x {cpu.topology.n_cores} cores "
        f"(guardbands preserved): per-core spread "
        f"{spreads.mean() * 1e3:.1f} mV mean "
        f"(max {spreads.max() * 1e3:.1f}); extra package power saving "
        f"{gains.mean() * 100:.2f}% mean, {gains.max() * 100:.2f}% best")

    result.add_metric("mean_extra_saving", float(gains.mean()))
    result.add_metric("gain_non_negative",
                      1.0 if gains.min() >= -1e-12 else 0.0, paper=1.0,
                      unit="")
    result.add_metric("some_package_benefits",
                      1.0 if gains.max() > 0.001 else 0.0, paper=1.0, unit="")
    result.add_metric("mean_core_spread_mv", float(spreads.mean() * 1e3),
                      unit="mV")
    result.data["gains"] = gains
    result.data["spreads"] = spreads
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
