"""Extension: Vmin-drift fault-injection campaign (canned).

Runs the ``vmin_drift_nginx`` campaign (:mod:`repro.campaigns`): the
per-instruction minimum-voltage margins drift toward the DVFS curve
(silicon aging/heating) while the invariant monitor still believes the
calibration-time values — the gap between belief and physical truth
where silent data corruption lives.  The headline curve: the SDC rate
climbs with undervolt depth as the statically hardened IMUL's eroded
margin crosses the efficient voltage, while at the paper's safe
offset (-97 mV) the margin still absorbs the drift.
"""

from __future__ import annotations

from repro.campaigns import CampaignRunner, canned_campaign
from repro.experiments.common import ExperimentResult


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run the canned Vmin-drift campaign; report the SDC-depth curve."""
    spec = canned_campaign("vmin_drift_nginx").with_overrides(seed=seed)
    if fast:
        spec = spec.with_overrides(samples=4, n_ops=400)

    report = CampaignRunner(spec).run()
    result = ExperimentResult(
        experiment_id="ext-campaign-vmin",
        title="Fault-injection campaign: Vmin drift vs undervolt depth",
    )
    outcomes = report["outcomes"]
    result.lines.append(
        f"{report['n_completed']} runs over {len(spec.offsets_v)} "
        f"undervolt depths: " + ", ".join(
            f"{name}={outcomes[name]}" for name in
            ("masked", "degraded", "sdc", "detected", "crashed")))
    for row in report["by_offset"]:
        result.lines.append(
            f"  {row['offset_mv']:>7.1f} mV: sdc={row['sdc_rate']:.3f} "
            f"(n={row['n']})")

    n = max(1, report["n_completed"])
    shallow = report["by_offset"][0]
    deepest = report["by_offset"][-1]
    result.add_metric("sdc_share", outcomes["sdc"] / n, unit="%")
    # At the paper's safe offset the drifted margins must still hold...
    result.add_metric("sdc_rate_safe_offset", shallow["sdc_rate"],
                      paper=0.0, unit="%")
    # ...while deep undervolting without recalibration corrupts silently.
    result.add_metric("sdc_rate_deepest", deepest["sdc_rate"],
                      unit="%")
    result.add_metric("sdc_depth_slope",
                      (deepest["sdc_rate"] - shallow["sdc_rate"]) * 100.0,
                      unit="pp")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
