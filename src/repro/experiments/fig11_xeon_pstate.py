"""Fig 11: per-core p-state change on the Intel Xeon Silver 4208.

Xeon CPUs since Haswell-EP have per-core voltage and frequency domains
(PCPS), but the two always move in tandem: on any p-state change the
core first moves the voltage (335 us, sigma 135) and then the frequency
(31 us, of which the core stalls ~27 us).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_c_xeon_4208


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 11 measurement."""
    result = ExperimentResult(
        experiment_id="fig11",
        title="Per-core p-state change, Intel Xeon Silver 4208",
    )
    cpu = cpu_c_xeon_4208()
    trans = cpu.transitions
    assert trans.voltage is not None
    rng = np.random.default_rng(seed)
    reps = 5 if fast else 98  # the paper aggregates n=98 changes

    v_delays = np.array([trans.voltage.sample_delay(rng) for _ in range(reps)])
    f_samples = [trans.frequency_change(rng) for _ in range(reps)]
    f_delays = np.array([d for d, _ in f_samples])
    f_stalls = np.array([s for _, s in f_samples])
    total, stall = trans.pstate_change(rng, needs_voltage=True)

    result.lines.append(
        f"voltage {v_delays.mean() * 1e6:.0f} us (sigma {v_delays.std() * 1e6:.0f}) "
        f"then frequency {f_delays.mean() * 1e6:.0f} us "
        f"(stall {f_stalls.mean() * 1e6:.0f} us); combined sample "
        f"{total * 1e6:.0f} us with {stall * 1e6:.0f} us stall")
    result.add_metric("voltage_delay", v_delays.mean(), 335e-6, unit="s")
    result.add_metric("frequency_delay", f_delays.mean(), 31e-6, unit="s")
    result.add_metric("frequency_stall", f_stalls.mean(), 27e-6, unit="s")
    result.add_metric("voltage_first",
                      1.0 if trans.voltage_first else 0.0, 1.0, unit="")
    result.add_metric("combined_exceeds_voltage",
                      1.0 if total > v_delays.mean() * 0.5 else 0.0, 1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
