"""Extension: MSR bit-flip fault-injection campaign (canned).

Runs the ``msr_bitflip_nginx`` campaign (:mod:`repro.campaigns`): single
bit faults in the SUIT configuration MSRs — the disable mask, the curve
select, the deadline register — while nginx runs on the efficient
curve.  The headline claims: no silent data corruption (a flipped
configuration bit either degrades performance, masks, or is *detected*
by the invariant monitor), and detections concentrate at deep
undervolt, where a cleared disable-mask bit actually crosses the
untrapped opcode's Vmin.
"""

from __future__ import annotations

from repro.campaigns import CampaignRunner, canned_campaign
from repro.experiments.common import ExperimentResult


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run the canned MSR bit-flip campaign; report the outcome tally."""
    spec = canned_campaign("msr_bitflip_nginx").with_overrides(seed=seed)
    if fast:
        spec = spec.with_overrides(samples=4, n_ops=400)

    report = CampaignRunner(spec).run()
    result = ExperimentResult(
        experiment_id="ext-campaign-msr",
        title="Fault-injection campaign: SUIT MSR bit flips under nginx",
    )
    outcomes = report["outcomes"]
    result.lines.append(
        f"{report['n_completed']} runs over {len(spec.offsets_v)} "
        f"undervolt depths: " + ", ".join(
            f"{name}={outcomes[name]}" for name in
            ("masked", "degraded", "sdc", "detected", "crashed")))
    for row in report["by_offset"]:
        result.lines.append(
            f"  {row['offset_mv']:>7.1f} mV: sdc={row['sdc_rate']:.3f} "
            f"detected={row['detected_rate']:.3f} "
            f"crashed={row['crashed_rate']:.3f}")

    n = max(1, report["n_completed"])
    # The security claim: configuration-bit faults never corrupt results
    # silently — every corrupting fault is caught by the monitor.
    result.add_metric("sdc_runs", float(outcomes["sdc"]), paper=0.0,
                      unit="count")
    result.add_metric("detected_share",
                      outcomes["detected"] / n, unit="%")
    result.add_metric("degraded_share",
                      outcomes["degraded"] / n, unit="%")
    result.add_metric("masked_share",
                      outcomes["masked"] / n, unit="%")
    result.add_metric("detected_rate_deepest",
                      report["by_offset"][-1]["detected_rate"],
                      unit="%")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
