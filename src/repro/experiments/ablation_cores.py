"""Ablation: shared-domain core-count scaling (paper section 6.4).

On a single-DVFS-domain CPU (A), every core's traps switch the whole
package: with more active cores the merged trap stream gets denser, the
domain spends less time on the efficient curve and the gain shrinks —
the paper reports +12 % average efficiency on A1 dropping to +5.8 % on
A4.  Per-core-domain CPUs (C) are immune.
"""

from __future__ import annotations

from repro.core.metrics import geomean_change
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult, cached_trace
from repro.workloads.spec import spec_profile

_WORKLOADS = ("557.xz", "502.gcc", "525.x264", "549.fotonik3d")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Sweep the active core count on CPU A."""
    result = ExperimentResult(
        experiment_id="ablation-cores",
        title="Efficiency vs active cores on a single DVFS domain (CPU A)",
    )
    profiles = [spec_profile(n) for n in (_WORKLOADS[:2] if fast else _WORKLOADS)]
    counts = (1, 2, 4) if fast else (1, 2, 4, 8)
    effs = {}
    occs = {}
    for cores in counts:
        suit = SuitSystem.for_cpu("A", strategy_name="fV",
                                  voltage_offset=-0.097, n_cores=cores,
                                  seed=seed)
        for p in profiles:
            suit.prime_trace(p, cached_trace(p, seed))
        results = [suit.run_profile(p) for p in profiles]
        effs[cores] = geomean_change([r.efficiency_change for r in results])
        occs[cores] = sum(r.efficient_occupancy for r in results) / len(results)
        result.lines.append(
            f"A{cores}: efficiency {effs[cores] * 100:+.2f}%, "
            f"occupancy {occs[cores]:.2f}")

    result.add_metric("eff_monotone_decreasing",
                      1.0 if all(effs[a] >= effs[b] - 1e-4 for a, b in
                                 zip(counts, counts[1:])) else 0.0,
                      paper=1.0, unit="")
    result.add_metric("occupancy_shrinks_with_cores",
                      1.0 if occs[counts[0]] > occs[counts[-1]] else 0.0,
                      paper=1.0, unit="")
    result.add_metric("eff_still_positive_at_max_cores",
                      1.0 if effs[counts[-1]] > 0 else 0.0, paper=1.0, unit="")
    result.data["efficiency_by_cores"] = effs
    result.data["occupancy_by_cores"] = occs
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
