"""Extension: a ladder of efficient curves instead of one.

SUIT's disable-mask MSR can express any subset of the trapped classes,
so a vendor can ship several efficient curves: each deeper tier disables
a longer prefix of the sensitivity ranking.  Per workload, the OS picks
the deepest tier whose trapped classes the workload barely uses.  This
experiment derives the ladder from a sampled chip, selects tiers for
contrasting workloads, and quantifies the win over the one-size curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiers import choose_tier, derive_tiers, tier_power_gain
from repro.experiments.common import ExperimentResult, cached_trace
from repro.faults.model import FaultModel
from repro.hardware.models import cpu_a_i9_9900k
from repro.workloads.network import NGINX_PROFILE
from repro.workloads.spec import spec_profile

FREQS = (2.0e9, 3.0e9, 4.0e9)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Derive the ladder and choose per-workload tiers."""
    result = ExperimentResult(
        experiment_id="ext-tiers",
        title="Multi-tier efficient curves with per-workload selection",
    )
    cpu = cpu_a_i9_9900k()
    chip = FaultModel().sample_chip(
        cpu.conservative_curve, n_cores=2 if fast else 4,
        rng=np.random.default_rng(seed + 3), exhibits=True)
    # Respect the -97 mV aging/temperature budget as the floor.
    tiers = derive_tiers(chip, FREQS, max_offset_v=-0.097)
    for tier in tiers:
        result.lines.append(
            f"tier @{tier.offset_v * 1e3:+6.1f} mV disables "
            f"{len(tier.disabled)} classes")

    workloads = [spec_profile("557.xz"), spec_profile("508.namd"),
                 NGINX_PROFILE]
    choices = {}
    for profile in workloads:
        trace = cached_trace(profile, seed)
        choice = choose_tier(tiers, trace, max_trap_rate=2e-6)
        choices[profile.name] = choice
        result.lines.append(
            f"{profile.name:<10} -> tier {choice.tier.offset_v * 1e3:+6.1f} mV "
            f"(trap rate at that tier: {choice.trap_rate:.2e}/instr)")

    ladder_is_real = len(tiers) >= 2
    xz_depth = choices["557.xz"].tier.offset_v
    nginx_depth = choices["nginx"].tier.offset_v
    gain = tier_power_gain(tiers[0], tiers[-1], cpu.nominal_voltage)

    result.add_metric("ladder_has_multiple_tiers",
                      1.0 if ladder_is_real else 0.0, paper=1.0, unit="")
    result.add_metric("quiet_workload_goes_deepest",
                      1.0 if xz_depth == tiers[-1].offset_v else 0.0,
                      paper=1.0, unit="")
    result.add_metric("crypto_workload_keeps_aes_trapped",
                      1.0 if any(op.name == "AESENC"
                                 for op in choices["nginx"].tier.disabled)
                      else 0.0, paper=1.0, unit="")
    result.add_metric("deep_over_shallow_power_gain", gain)
    result.data["tiers"] = tiers
    result.data["choices"] = choices
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
