"""Table 6: the main evaluation.

Power, performance and efficiency of SUIT for every (CPU, operating
strategy) configuration of the paper, at both undervolt offsets, across
the Table 6 columns: SPEC geometric mean and median, 525.x264 (the
benchmark most hurt by the IMUL hardening), SPEC compiled without SIMD,
Nginx and VLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.metrics import SimResult, geomean_change, median_change
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult, cached_trace
from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE
from repro.workloads.spec import all_spec_profiles

#: The Table 6 configurations: (label, cpu, cores, strategy).
CONFIGS: Tuple[Tuple[str, str, int, str], ...] = (
    ("A1.fV", "A", 1, "fV"),
    ("A4.fV", "A", 4, "fV"),
    ("Ae.e", "A", 1, "e"),
    ("Bf.f", "B", 1, "f"),
    ("Be.e", "B", 1, "e"),
    ("C.fV", "C", 1, "fV"),
)

OFFSETS = (-0.070, -0.097)

_COLUMNS = ("SPECgmean", "SPECmedian", "525.x264", "SPECnoSIMD", "nginx", "vlc")
_ROWS = ("pwr", "perf", "eff")

#: Paper Table 6, config -> offset -> row -> column values (fractions).
PAPER_TABLE6: Dict[str, Dict[float, Dict[str, Tuple[float, ...]]]] = {
    "A1.fV": {
        -0.070: {"pwr": (-0.056, -0.071, -0.071, -0.071, -0.035, -0.039),
                 "perf": (-0.002, -0.013, -0.013, 0.030, 0.005, -0.004),
                 "eff": (0.057, 0.062, 0.062, 0.11, 0.042, 0.036)},
        -0.097: {"pwr": (-0.097, -0.11, -0.12, -0.15, -0.058, -0.063),
                 "perf": (0.008, 0.013, 0.001, 0.034, 0.012, 0.002),
                 "eff": (0.12, 0.14, 0.14, 0.21, 0.074, 0.069)},
    },
    "A4.fV": {
        -0.070: {"pwr": (-0.046, -0.001, -0.069, -0.074, -0.010, -0.010),
                 "perf": (-0.039, -0.000, -0.079, 0.018, -0.003, -0.006),
                 "eff": (0.007, 0.001, -0.010, 0.100, 0.007, 0.004)},
        -0.097: {"pwr": (-0.089, -0.087, -0.13, -0.16, -0.016, -0.016),
                 "perf": (-0.036, -0.035, -0.072, 0.018, -0.001, -0.005),
                 "eff": (0.058, 0.057, 0.067, 0.22, 0.015, 0.011)},
    },
    "Ae.e": {
        -0.070: {"pwr": (-0.075, -0.076, -0.054, -0.075, -0.072, -0.072),
                 "perf": (-0.42, -0.12, 0.062, 0.014, -0.98, -0.92),
                 "eff": (-0.37, -0.045, 0.12, 0.096, -0.98, -0.91)},
        -0.097: {"pwr": (-0.12, -0.12, -0.10, -0.17, -0.12, -0.12),
                 "perf": (-0.42, -0.12, 0.061, 0.014, -0.98, -0.92),
                 "eff": (-0.34, 0.006, 0.18, 0.22, -0.98, -0.91)},
    },
    "Bf.f": {
        -0.070: {"pwr": (-0.081, -0.078, -0.078, -0.091, -0.044, -0.044),
                 "perf": (-0.078, -0.078, -0.092, 0.004, -0.025, -0.025),
                 "eff": (0.003, -0.000, -0.016, 0.11, 0.020, 0.020)},
        -0.097: {"pwr": (-0.12, -0.11, -0.11, -0.14, -0.067, -0.067),
                 "perf": (-0.10, -0.11, -0.12, 0.006, -0.023, -0.023),
                 "eff": (0.014, 0.001, -0.016, 0.17, 0.047, 0.047)},
    },
    "Be.e": {
        -0.070: {"pwr": (-0.092, -0.080, -0.11, -0.092, -0.098, -0.098),
                 "perf": (-0.26, -0.051, 0.15, -0.005, -0.96, -0.80),
                 "eff": (-0.19, 0.031, 0.28, 0.095, -0.95, -0.78)},
        -0.097: {"pwr": (-0.14, -0.13, -0.16, -0.14, -0.15, -0.15),
                 "perf": (-0.26, -0.052, 0.19, 0.000, -0.96, -0.80),
                 "eff": (-0.14, 0.093, 0.41, 0.17, -0.95, -0.76)},
    },
    "C.fV": {
        -0.070: {"pwr": (-0.056, -0.071, -0.071, -0.061, -0.036, -0.040),
                 "perf": (-0.008, -0.019, -0.019, 0.035, 0.003, -0.011),
                 "eff": (0.051, 0.055, 0.055, 0.10, 0.040, 0.030)},
        -0.097: {"pwr": (-0.098, -0.11, -0.12, -0.14, -0.058, -0.066),
                 "perf": (0.002, 0.002, -0.006, 0.038, 0.010, -0.006),
                 "eff": (0.11, 0.13, 0.13, 0.21, 0.073, 0.064)},
    },
}

#: SPEC subset used in fast mode (spans the occupancy spectrum).
FAST_SPEC = ("557.xz", "502.gcc", "520.omnetpp", "525.x264",
             "508.namd", "527.cam4", "549.fotonik3d", "521.wrf")


@dataclass
class ConfigCells:
    """Measured Table 6 cells for one configuration and offset."""

    label: str
    offset: float
    cells: Dict[str, Dict[str, float]]  # row -> column -> value
    spec_results: List[SimResult]
    occupancy: float


def _columns_from_results(spec: List[SimResult], nosimd: List[SimResult],
                          nginx: SimResult, vlc: SimResult) -> Dict[str, Dict[str, float]]:
    x264 = next(r for r in spec if r.workload.startswith("525"))
    getters = {"pwr": lambda r: r.power_change,
               "perf": lambda r: r.perf_change,
               "eff": lambda r: r.efficiency_change}
    out: Dict[str, Dict[str, float]] = {}
    for row, get in getters.items():
        out[row] = {
            "SPECgmean": geomean_change(get(r) for r in spec),
            "SPECmedian": median_change(get(r) for r in spec),
            "525.x264": get(x264),
            "SPECnoSIMD": geomean_change(get(r) for r in nosimd),
            "nginx": get(nginx),
            "vlc": get(vlc),
        }
    return out


def evaluate_config(label: str, cpu: str, cores: int, strategy: str,
                    offset: float, seed: int = 0,
                    fast: bool = False) -> ConfigCells:
    """Measure one Table 6 configuration row group."""
    suit = SuitSystem.for_cpu(cpu, strategy_name=strategy, n_cores=cores,
                              voltage_offset=offset, seed=seed)
    profiles = all_spec_profiles()
    if fast:
        profiles = [p for p in profiles if p.name in FAST_SPEC]
    for p in profiles + [NGINX_PROFILE, VLC_PROFILE]:
        suit.prime_trace(p, cached_trace(p, seed))
    spec = [suit.run_profile(p) for p in profiles]
    nosimd = [suit.run_profile_nosimd(p) for p in profiles]
    nginx = suit.run_profile(NGINX_PROFILE)
    vlc = suit.run_profile(VLC_PROFILE)
    occ = sum(r.efficient_occupancy for r in spec) / len(spec)
    return ConfigCells(
        label=label, offset=offset,
        cells=_columns_from_results(spec, nosimd, nginx, vlc),
        spec_results=spec, occupancy=occ,
    )


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 6 (full SPEC unless *fast*)."""
    result = ExperimentResult(
        experiment_id="table6",
        title="Power saving and performance impact of SUIT "
              "(CPUs x strategies x offsets)",
    )
    header = "config     offset row  " + "".join(f"{c:>22s}" for c in _COLUMNS)
    result.lines.append(header)
    for label, cpu, cores, strategy in CONFIGS:
        for offset in OFFSETS:
            cfg = evaluate_config(label, cpu, cores, strategy, offset,
                                  seed=seed, fast=fast)
            paper = PAPER_TABLE6[label][offset]
            for row in _ROWS:
                cells = []
                for ci, col in enumerate(_COLUMNS):
                    measured = cfg.cells[row][col]
                    ref = paper[row][ci]
                    cells.append(f"{measured * 100:+7.1f}({ref * 100:+6.1f})")
                    if not fast or col not in ("SPECgmean", "SPECmedian"):
                        result.add_metric(
                            f"{label}.{offset * 1e3:+.0f}mV.{col}.{row}",
                            measured, ref)
                result.lines.append(
                    f"{label:<10s} {offset * 1e3:+.0f}mV {row:<4s} " + "".join(cells))
            if label == "C.fV" and offset == -0.097:
                result.add_metric("C.occupancy", cfg.occupancy, 0.727, unit="")
                result.data["C_spec_results"] = cfg.spec_results
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
