"""Fig 15: operating strategies compared on the trace simulator.

Runs the event-based Fig 15 simulator with each operating strategy of
Listing 1 — ``fV`` (frequency + voltage switch), ``f`` (frequency
only), ``V`` (voltage only) and ``e`` (user-space emulation) — on
CPU C at the aggressive -97 mV offset, over a workload set spanning the
occupancy spectrum (trap-light 557.xz to trap-heavy network servers).

The strategy ranking is the experiment's claim: ``fV`` dominates on
SPEC-like workloads, while ``e`` collapses on trap-dense ones (the
paper's Nginx/VLC rows lose >90 % performance under emulation).  This
run also exercises every telemetry event class of ``repro.obs`` —
``#DO`` traps, emulate-vs-switch decisions, p-state changes, voltage
settles and timer fires — which is why ``python -m repro trace
fig15_strategies`` uses it as the tracing showcase.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.batchsim import SweepConfig
from repro.core.metrics import SimResult, geomean_change
from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult
from repro.workloads.network import NGINX_PROFILE
from repro.workloads.spec import SPEC_PROFILES

STRATEGIES = ("fV", "f", "V", "e")

#: SPEC subset spanning the efficient-curve occupancy spectrum.
SPEC_SET = ("557.xz", "502.gcc", "525.x264", "520.omnetpp",
            "508.namd", "527.cam4", "521.wrf")

FAST_SPEC_SET = ("557.xz", "502.gcc", "520.omnetpp")

OFFSET = -0.097


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 15 strategy comparison."""
    result = ExperimentResult(
        experiment_id="fig15",
        title="Operating strategies (fV, f, V, e) on the trace simulator, "
              "CPU C at -97 mV",
    )
    names = FAST_SPEC_SET if fast else SPEC_SET
    profiles = [SPEC_PROFILES[n] for n in names] + [NGINX_PROFILE]

    # One vectorized sweep per profile: the trace is compiled once and
    # every strategy replays the shared episode (bit-identical to the
    # per-strategy run_profile loop this replaces — the goldens hold).
    suit = SuitSystem.for_cpu("C", voltage_offset=OFFSET, seed=seed)
    configs = [SweepConfig(strategy=s, voltage_offset=OFFSET, seed=seed)
               for s in STRATEGIES]
    per_strategy: Dict[str, List[SimResult]] = {s: [] for s in STRATEGIES}
    for p in profiles:
        for strategy, sim in zip(STRATEGIES, suit.run_sweep(p, configs)):
            per_strategy[strategy].append(sim)

    result.lines.append(
        "strategy   SPECperf   SPECeff    nginx.perf nginx.eff  traps")
    for strategy in STRATEGIES:
        runs = per_strategy[strategy]
        spec, nginx = runs[:-1], runs[-1]
        spec_perf = geomean_change(r.perf_change for r in spec)
        spec_eff = geomean_change(r.efficiency_change for r in spec)
        traps = sum(r.n_exceptions for r in runs)
        result.lines.append(
            f"{strategy:<10s} {spec_perf * 100:+8.2f}%  "
            f"{spec_eff * 100:+8.2f}%  {nginx.perf_change * 100:+8.2f}%  "
            f"{nginx.efficiency_change * 100:+8.2f}%  {traps:6d}")
        result.add_metric(f"C.{strategy}.SPECperf", spec_perf)
        result.add_metric(f"C.{strategy}.SPECeff", spec_eff)
        result.add_metric(f"C.{strategy}.nginx.eff",
                          nginx.efficiency_change)

    # The paper's qualitative rankings, pinned as booleans (1 = holds):
    # emulation collapses on trap-dense workloads (Table 6 loses >90 %
    # of Nginx performance under ``e``) while every curve-switching
    # strategy stays within normal DVFS territory.
    eff = {s: geomean_change(r.efficiency_change for r in per_strategy[s])
           for s in STRATEGIES}
    nginx_perf = {s: per_strategy[s][-1].perf_change for s in STRATEGIES}
    result.add_metric("emulation_collapses_on_nginx",
                      float(nginx_perf["e"] < -0.5), 1.0, unit="")
    result.add_metric("switching_beats_emulation",
                      float(min(eff["fV"], eff["f"], eff["V"]) > eff["e"]),
                      1.0, unit="")
    result.data["results"] = per_strategy
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
