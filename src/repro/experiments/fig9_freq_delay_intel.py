"""Fig 9: frequency change delay on the i9-9900K.

Writes the p-state control register at time 0 and samples the effective
(APERF/MPERF) frequency around the change, 20 repetitions.  Verifies the
paper's three observations: ~22 us delay, a stall gap with no samples,
and a first post-stall sample still reporting the old frequency (late
APERF update).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 9 measurement."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Frequency change delay, Intel i9-9900K (20 repetitions)",
    )
    cpu = cpu_a_i9_9900k()
    spec = cpu.transitions.frequency
    rng = np.random.default_rng(seed)
    reps = 5 if fast else 20
    f_from, f_to = 3.0e9, 2.6e9  # the figure's 3.0 -> 2.6 GHz step

    delays, stalls, artifacts = [], [], []
    trajectories = []
    for _ in range(reps):
        delays.append(spec.sample_delay(rng))
        stalls.append(spec.sample_stall(rng))
        times, freqs = spec.trajectory(f_from, f_to, rng)
        trajectories.append((times, freqs))
        # The late-APERF artifact: first post-stall sample near f_from.
        post = freqs[times > 0]
        artifacts.append(bool(post.size and abs(post[0] - f_from) < 0.1e9))
    delays = np.array(delays)

    result.lines.append(
        f"frequency change: mean {delays.mean() * 1e6:.1f} us "
        f"(sigma {delays.std() * 1e6:.2f}), stall mean "
        f"{np.mean(stalls) * 1e6:.1f} us, APERF artifact in "
        f"{sum(artifacts)}/{reps} runs")
    result.add_metric("mean_delay", delays.mean(), 22e-6, unit="s")
    result.add_metric("max_delay", delays.max(), 24.8e-6, unit="s")
    result.add_metric("stalls", 1.0 if np.mean(stalls) > 0 else 0.0, 1.0, unit="")
    result.add_metric("aperf_artifact_share", float(np.mean(artifacts)), 1.0,
                      unit="")
    result.data["trajectories"] = trajectories
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
