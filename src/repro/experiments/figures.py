"""Render the regenerated figures as terminal plots.

``render(figure_id)`` runs the corresponding experiment and draws its
data series with :mod:`repro.experiments.ascii_plot` — the closest thing
to the paper's figures a text environment can produce.  Used by the
``figures`` CLI subcommand.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.experiments import ascii_plot


def _fig5(fast: bool) -> str:
    from repro.experiments import fig5_burst_detail

    result = fig5_burst_detail.run(fast=fast)
    indices, log_gaps = result.data["gap_timeline"]
    chart = ascii_plot.scatter(
        indices, log_gaps, height=10,
        title="Fig 5: gap size (log10 instructions) around one AES burst",
        x_label="instruction index", y_label="log10 gap")
    timeline = result.data["curve_timeline"] or []
    levels = {"E": 1.0, "Cf": 0.0, "CV": 0.5}
    steps = [(t, levels[label.split("/")[0]]) for t, label in timeline]
    curve = ascii_plot.step_series(
        steps, height=6,
        title="DVFS curve (1=efficient, 0=Cf, 0.5=CV) over the run")
    return chart + "\n\n" + curve


def _fig7(fast: bool) -> str:
    from repro.experiments import fig7_vlc_timeline

    result = fig7_vlc_timeline.run(fast=fast)
    indices, log_gaps = result.data["gap_timeline"]
    return ascii_plot.scatter(
        indices[:: max(1, len(indices) // 4000)],
        log_gaps[:: max(1, len(log_gaps) // 4000)],
        height=12,
        title="Fig 7: AES gap-size timeline, VLC streaming",
        x_label="instruction index", y_label="log10 gap")


def _fig12(fast: bool) -> str:
    from repro.experiments import fig12_undervolt_sweep

    result = fig12_undervolt_sweep.run(fast=fast)
    offsets = [o * 1e3 for o in result.data["offsets"]]
    lines = ["Fig 12: undervolting sweep (i9-9900K)"]
    lines.append(f"offsets (mV):  {offsets}")
    lines.append(f"score  {ascii_plot.sparkline(result.data['scores'])} "
                 f"({result.data['scores'][-1] * 100:+.1f}% at deepest)")
    lines.append(f"power  {ascii_plot.sparkline(result.data['powers_w'])} "
                 f"({result.data['powers_w'][-1]:.1f} W at deepest)")
    lines.append(f"freq   {ascii_plot.sparkline(result.data['freqs_ghz'])} "
                 f"({result.data['freqs_ghz'][-1]:.2f} GHz at deepest)")
    return "\n".join(lines)


def _fig13(fast: bool) -> str:
    from repro.experiments import fig13_dvfs_curves

    result = fig13_dvfs_curves.run(fast=fast)
    cons = result.data["conservative_points"]
    imul = result.data["imul4_points"]
    xs = [f / 1e9 for f, _ in cons] + [f / 1e9 for f, _ in imul]
    ys = [v for _, v in cons] + [v for _, v in imul]
    return ascii_plot.scatter(
        xs, ys, height=14,
        title="Fig 13: conservative curve (upper) vs 4-cycle IMUL (lower)",
        x_label="frequency (GHz)", y_label="volts")


def _fig14(fast: bool) -> str:
    from repro.experiments import fig14_imul_latency

    result = fig14_imul_latency.run(fast=fast)
    series = result.data["geomean_series"]
    x264 = result.data["slowdowns"]["525.x264"]
    labels = [f"latency {lat}" for lat in series]
    rows_geo = ascii_plot.bars(labels, list(series.values()))
    rows_x264 = ascii_plot.bars(labels, [x264[lat] for lat in series])
    return ("Fig 14: slowdown vs IMUL latency\n-- geometric mean --\n"
            + rows_geo + "\n-- 525.x264 --\n" + rows_x264)


def _fig16(fast: bool) -> str:
    from repro.experiments import fig16_per_benchmark

    result = fig16_per_benchmark.run(fast=fast)
    results = sorted(result.data["results"][-0.097],
                     key=lambda r: -r.efficiency_change)
    labels = [r.workload for r in results]
    effs = [r.efficiency_change for r in results]
    perfs = [r.perf_change for r in results]
    return ("Fig 16: per-benchmark efficiency (CPU C, fV, -97 mV)\n"
            + ascii_plot.bars(labels, effs)
            + "\n-- performance --\n" + ascii_plot.bars(labels, perfs))


RENDERERS: Dict[str, Callable[[bool], str]] = {
    "fig5": _fig5,
    "fig7": _fig7,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig16": _fig16,
}


def render(figure_id: str, fast: bool = False) -> str:
    """Render *figure_id* ("fig5", "fig7", "fig12", "fig13", "fig14",
    "fig16") as terminal text."""
    try:
        renderer = RENDERERS[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; know {sorted(RENDERERS)}")
    return renderer(fast)


def render_all(fast: bool = True) -> str:
    """Render every figure, separated by rules."""
    parts: List[str] = []
    for figure_id in RENDERERS:
        parts.append(render(figure_id, fast=fast))
        parts.append("=" * 78)
    return "\n".join(parts)
