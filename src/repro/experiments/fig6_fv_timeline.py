"""Fig 6: frequency and voltage over a long burst under the fV strategy.

A long faultable burst should produce the Fig 6 sequence: #DO ->
frequency drop to Cf (fast) -> asynchronous voltage rise -> frequency
back up (now at CV, full performance) -> deadline expiry -> back to E.
The experiment verifies the state sequence and reconstructs the
frequency/voltage waveforms from the recorded timeline.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.suit import SuitSystem
from repro.experiments.common import ExperimentResult
from repro.isa.opcodes import Opcode
from repro.workloads.generator import single_burst_trace
from repro.workloads.profile import WorkloadProfile


def _waveforms(timeline, cpu, offset) -> Tuple[List[Tuple[float, float]],
                                               List[Tuple[float, float]]]:
    """(time, frequency) and (time, voltage) step series from a state
    timeline."""
    f0 = cpu.nominal_frequency
    v0 = cpu.nominal_voltage
    f_cf = cpu.cf_frequency(offset)
    freq_of = {"E": f0, "Cf": f_cf, "CV": f0}
    volt_of = {"E": v0 + offset, "Cf": v0 + offset, "CV": v0}
    freqs, volts = [], []
    for t, label in timeline:
        state = label.split("/")[0]
        freqs.append((t, freq_of[state]))
        volts.append((t, volt_of[state]))
    return freqs, volts


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 6 sequence."""
    del fast
    result = ExperimentResult(
        experiment_id="fig6",
        title="fV operating strategy over a long faultable burst",
    )
    n = 60_000_000
    # Burst long enough (>> 335 us voltage settle) to reach CV.
    trace = single_burst_trace(
        name="long-burst", n_instructions=n, ipc=1.5,
        burst_start=n // 4, burst_length=12_000_000, dense_gap=300.0,
        opcode=Opcode.VOR, seed=seed,
    )
    profile = WorkloadProfile(
        name="long-burst", suite="SPECint", n_instructions=n, ipc=1.5,
        efficient_occupancy=0.8, n_episodes=1, dense_gap=300.0,
        opcode_mix={Opcode.VOR: 1.0},
    )
    suit = SuitSystem.for_cpu("C", strategy_name="fV", voltage_offset=-0.097,
                              seed=seed)
    suit.prime_trace(profile, trace)
    sim_result = suit.run_profile(profile, record_timeline=True)

    states = [label.split("/")[0] for _, label in sim_result.timeline or []]
    # Collapse consecutive repeats into the visited sequence.
    sequence = [states[0]]
    for s in states[1:]:
        if s != sequence[-1]:
            sequence.append(s)
    result.lines.append(" -> ".join(sequence))
    expected = ["E", "Cf", "CV", "E"]
    result.add_metric("fig6_sequence_observed",
                      1.0 if sequence == expected else 0.0, 1.0, unit="")
    result.add_metric("time_at_cv_s", sim_result.state_time.get("CV", 0.0),
                      unit="s")
    result.data["waveforms"] = _waveforms(sim_result.timeline, suit.cpu, -0.097)
    result.data["timeline"] = sim_result.timeline
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
