"""Table 3: fan speed, core temperature and maximum undervolt offset.

Drives the fan/thermal model at the paper's two fan speeds and reads the
resulting core temperature and the maximum safe undervolt offset from
the temperature-guardband model.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.power.guardband import TemperatureGuardband
from repro.power.thermal import FanCurve

#: Table 3 reference rows: (fan_rpm, paper_temp_c, paper_offset_v).
PAPER_TABLE3 = (
    (1800, 50.0, -0.090),
    (300, 88.0, -0.055),
)

#: i9-9900K package power at the Table 3 operating point (4 GHz, SPEC load).
_POWER_AT_4GHZ_W = 120.0


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 3."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="table3",
        title="Core temperature vs fan speed and the temperature guardband",
    )
    fan = FanCurve()
    guardband = TemperatureGuardband()
    result.lines.append("fan-rpm  temp(paper)      max-offset(paper)")
    for rpm, paper_temp, paper_offset in PAPER_TABLE3:
        temp = fan.core_temperature(_POWER_AT_4GHZ_W, rpm)
        offset = guardband.max_undervolt(temp)
        result.lines.append(
            f"{rpm:>7d}  {temp:5.1f}C ({paper_temp:.0f}C)   "
            f"{offset * 1e3:+.0f}mV ({paper_offset * 1e3:+.0f}mV)")
        result.add_metric(f"temp@{rpm}rpm", temp, paper_temp, unit="degC")
        result.add_metric(f"offset@{rpm}rpm", offset, paper_offset, unit="V")
    # The guardband itself: 35 mV, ~3.5 % of the 991 mV supply at 4 GHz.
    gb = guardband.guardband_voltage()
    result.add_metric("temperature_guardband", gb, 0.035, unit="V")
    result.add_metric("guardband_fraction", gb / 0.991, 0.035)
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
