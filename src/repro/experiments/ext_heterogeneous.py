"""Extension: SUIT vs a static P/E-core design across shifting mixes.

Section 7's heterogeneous-CPUs discussion, quantified: a 4P+4E package
sized for a balanced mix is wrong whenever the mix shifts (too few E
cores for light phases, too many for heavy ones), while SUIT's
homogeneous cores re-pick their curve per task.  Throughput-sensitive
mixes also expose the E cores' speed deficit, which SUIT does not pay.
"""

from __future__ import annotations

from repro.core.heterogeneous import (
    CoreTypeRates,
    PhaseTask,
    best_static_split,
    compare_over_mixes,
    suit_outcome,
)
from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k


def _mixes():
    light = [PhaseTask(f"light-{i}", 0.95) for i in range(8)]
    heavy = [PhaseTask(f"heavy-{i}", 0.05) for i in range(8)]
    balanced = ([PhaseTask(f"l-{i}", 0.95) for i in range(4)]
                + [PhaseTask(f"h-{i}", 0.05) for i in range(4)])
    return {"office/light": light, "balanced": balanced, "compute/heavy": heavy}


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """SUIT vs a 4P+4E design over three workload mixes."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="ext-hetero",
        title="Adaptive SUIT curves vs a static P/E-core split",
    )
    rates = CoreTypeRates.from_cpu(cpu_a_i9_9900k())
    comparisons = compare_over_mixes(_mixes(), rates, designed_e_cores=4)

    suit_never_loses = True
    for label, suit, static in comparisons:
        result.lines.append(
            f"{label:<14} SUIT edp {suit.edp_score:5.2f} "
            f"(thr {suit.throughput:5.2f}, eff {suit.efficiency:5.3f})  vs  "
            f"{static.label} edp {static.edp_score:5.2f} "
            f"(thr {static.throughput:5.2f}, eff {static.efficiency:5.3f})")
        if suit.throughput < static.throughput * 0.999:
            suit_never_loses = False

    # Against even the per-mix *oracle* static split, SUIT's throughput
    # deficit is bounded by the E-core speed penalty it never pays.
    light_tasks = _mixes()["office/light"]
    oracle = best_static_split(light_tasks, rates)
    suit_light = suit_outcome(light_tasks, rates)
    result.lines.append(
        f"light mix oracle split: {oracle.label} edp {oracle.edp_score:.2f} "
        f"vs SUIT {suit_light.edp_score:.2f} at "
        f"{suit_light.throughput / oracle.throughput:.2f}x the throughput")

    result.add_metric("suit_throughput_never_below_static",
                      1.0 if suit_never_loses else 0.0, paper=1.0, unit="")
    mix_edps = {label: (s.edp_score, st.edp_score)
                for label, s, st in comparisons}
    result.add_metric("suit_wins_every_mix_on_edp",
                      1.0 if all(a > b for a, b in mix_edps.values()) else 0.0,
                      paper=1.0, unit="")
    result.add_metric(
        "suit_throughput_vs_oracle_light",
        suit_light.throughput / oracle.throughput, unit="x")
    result.data["comparisons"] = comparisons
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
