"""Extension: temperature-adaptive undervolting (built on section 5.7).

Table 3 shows the safe offset is 35 mV deeper on a cool core.  A
duty-cycled server (bursty load, cool-downs between bursts) can harvest
that: the adaptive controller deepens the offset whenever the package is
cool, and retreats to the hot-calibrated base as it heats up.  This
experiment co-simulates temperature and offset over a bursty load and
compares energy against the fixed -70 mV configuration.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult
from repro.hardware.cpu import _effective_sim_offset
from repro.hardware.models import cpu_a_i9_9900k
from repro.power.thermal_runtime import (
    TemperatureAdaptiveOffset,
    ThermalIntegrator,
    simulate_adaptive,
)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fixed vs temperature-adaptive offset over a duty-cycled load."""
    del seed
    result = ExperimentResult(
        experiment_id="ext-thermal",
        title="Temperature-adaptive undervolting on a duty-cycled load",
    )
    cpu = cpu_a_i9_9900k()
    f0 = cpu.nominal_frequency
    v0 = cpu.nominal_voltage

    def power_at_offset(offset: float) -> float:
        return cpu.cmos.power(f0, v0 + _effective_sim_offset(offset))

    # Bursty server load: 20 s period, 35 % duty cycle.
    def duty(t: float) -> float:
        return 1.0 if math.fmod(t, 20.0) < 7.0 else 0.05

    duration = 60.0 if fast else 240.0
    controller = TemperatureAdaptiveOffset(base_offset_v=-0.070)

    fixed = simulate_adaptive(
        power_at_offset, duty, duration,
        thermal=ThermalIntegrator(), fixed_offset_v=-0.070)
    adaptive = simulate_adaptive(
        power_at_offset, duty, duration,
        thermal=ThermalIntegrator(), controller=controller)

    saving = 1.0 - adaptive.energy_j / fixed.energy_j
    result.lines.append(
        f"fixed -70mV : {fixed.energy_j:8.1f} J, peak "
        f"{fixed.max_temperature_c:.1f} C")
    result.lines.append(
        f"adaptive    : {adaptive.energy_j:8.1f} J, peak "
        f"{adaptive.max_temperature_c:.1f} C, mean offset "
        f"{adaptive.mean_offset_v * 1e3:+.1f} mV")
    result.lines.append(f"extra energy saving: {saving * 100:.2f}%")

    result.add_metric("adaptive_saving", saving, unit="")
    result.add_metric("adaptive_saves_energy",
                      1.0 if saving > 0.002 else 0.0, paper=1.0, unit="")
    result.add_metric("mean_offset_deeper_than_base",
                      1.0 if adaptive.mean_offset_v < -0.070 else 0.0,
                      paper=1.0, unit="")
    result.add_metric("offset_never_exceeds_cap",
                      1.0 if min(o for _, _, o in adaptive.trajectory)
                      >= -0.070 - controller.max_extra_v - 1e-9 else 0.0,
                      paper=1.0, unit="")
    result.data["fixed"] = fixed
    result.data["adaptive"] = adaptive
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
