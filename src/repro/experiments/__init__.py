"""Experiment harness: one module per paper table and figure.

Every module exposes ``run(seed=0, fast=False) -> ExperimentResult``
which regenerates the table rows / figure series and records
paper-vs-measured comparisons.  ``fast=True`` trims workload sets and
repetition counts for CI-speed runs; the full runs feed EXPERIMENTS.md
(see :mod:`repro.experiments.runall`).
"""

from repro.experiments.common import ExperimentResult, Metric

__all__ = ["ExperimentResult", "Metric"]
