"""Fig 14 (and Table 5): slowdown versus IMUL latency.

Runs the out-of-order pipeline simulator (the gem5 substitute; Table 5
documents the modelled system) over per-benchmark dependency streams at
IMUL latencies 3/4/5/6/15/30 and reports the geometric-mean and
525.x264 slowdown series.  Paper anchors: +1 cycle costs 0.03 % on
average and 1.60 % for 525.x264; large increases grow almost linearly.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.core.metrics import geomean_change
from repro.experiments.common import ExperimentResult
from repro.pipeline.config import GEM5_REFERENCE_CONFIG
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore
from repro.workloads.spec import SPEC_PROFILES

LATENCIES = (3, 4, 5, 6, 15, 30)

#: The gem5 study simulates 16 of the SPEC benchmarks; we use the same
#: per-benchmark IMUL statistics our profiles carry.
STUDY_BENCHMARKS = (
    "500.perlbench", "502.gcc", "505.mcf", "520.omnetpp", "523.xalancbmk",
    "525.x264", "531.deepsjeng", "541.leela", "548.exchange2", "557.xz",
    "503.bwaves", "508.namd", "519.lbm", "538.imagick", "544.nab", "554.roms",
)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig 14 series."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="Slowdown with increasing IMUL latency (out-of-order model)",
    )
    n_instr = 8_000 if fast else 40_000
    benchmarks = STUDY_BENCHMARKS[:4] + ("525.x264",) if fast else STUDY_BENCHMARKS
    core = OutOfOrderCore(GEM5_REFERENCE_CONFIG)

    slowdowns: Dict[str, Dict[int, float]] = {}
    for name in benchmarks:
        profile = SPEC_PROFILES[name]
        # crc32, not hash(): Python's str hash is salted per process
        # (PYTHONHASHSEED), which would make the sweep irreproducible
        # across runs and break result caching / golden pinning.
        stream = generate_stream(StreamSpec.from_profile(profile, n_instr),
                                 seed=seed + zlib.crc32(name.encode()) % 1000)
        sweep = core.imul_latency_sweep(stream, LATENCIES)
        base = sweep[3]
        slowdowns[name] = {lat: sweep[lat].slowdown_vs(base) for lat in LATENCIES}

    series: Dict[int, float] = {}
    result.lines.append("latency  geomean-slowdown   525.x264")
    for lat in LATENCIES[1:]:
        gm = geomean_change([slowdowns[b][lat] for b in benchmarks])
        series[lat] = gm
        result.lines.append(
            f"{lat:>7d}  {gm * 100:+16.2f}%  {slowdowns['525.x264'][lat] * 100:+8.2f}%")

    result.add_metric("geomean@4", series[4], 0.0003)
    result.add_metric("x264@4", slowdowns["525.x264"][4], 0.016)
    result.add_metric("x264@30", slowdowns["525.x264"][30], 0.4663)
    # Qualitative anchors: sublinear at small increments, near-linear later.
    small = series[5] / max(series[4], 1e-9)
    large = series[30] / max(series[15], 1e-9)
    result.add_metric("latency_hiding_at_small_increase",
                      1.0 if series[4] < 0.002 else 0.0, 1.0, unit="")
    result.add_metric("superlinear_then_linear",
                      1.0 if small > 1.5 and 1.2 < large < 6.0 else 0.0, 1.0,
                      unit="")
    result.data["slowdowns"] = slowdowns
    result.data["geomean_series"] = series
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(fast="--fast" in sys.argv).report())
