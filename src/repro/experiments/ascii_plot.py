"""Terminal rendering of the paper's figures.

No plotting library is assumed: these helpers draw the regenerated
figure data as Unicode line/scatter charts and bar rows, so
``python -m repro reproduce`` and the ``figures`` CLI can show every
figure in any terminal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line sparkline of *values* (resampled to *width* columns)."""
    vals = list(values)
    if not vals:
        return ""
    if width and len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    return "".join(_BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in vals)


def scatter(x: Sequence[float], y: Sequence[float], width: int = 72,
            height: int = 16, x_label: str = "", y_label: str = "",
            title: str = "") -> str:
    """A character-cell scatter/line plot with axes and value ranges."""
    xs, ys = list(x), list(y)
    if len(xs) != len(ys):
        raise ValueError("x and y must have equal length")
    if not xs:
        return "(empty plot)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(xs, ys):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yv - y_lo) / y_span * (height - 1))
        grid[row][col] = "•"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = f"{y_hi:10.3g} ┤" if i == 0 else (
            f"{y_lo:10.3g} ┤" if i == height - 1 else " " * 11 + "│")
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "└" + "─" * width)
    footer = f"{' ' * 12}{x_lo:<.3g}{x_label:^{max(width - 16, 0)}}{x_hi:>.3g}"
    lines.append(footer)
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def bars(labels: Sequence[str], values: Sequence[float], width: int = 46,
         unit: str = "%", scale: float = 100.0) -> str:
    """Horizontal bar rows (negative values extend left of the axis)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(no bars)"
    biggest = max(abs(v) for v in values) or 1.0
    half = width // 2
    lines = []
    for label, value in zip(labels, values):
        n = int(abs(value) / biggest * half)
        if value >= 0:
            bar = " " * half + "|" + "█" * n
        else:
            bar = " " * (half - n) + "█" * n + "|"
        lines.append(f"{label:<16} {bar:<{width + 1}} {value * scale:+7.2f}{unit}")
    return "\n".join(lines)


def step_series(points: Sequence[Tuple[float, float]], width: int = 72,
                height: int = 10, title: str = "") -> str:
    """Plot a step function given (time, level) change points."""
    if not points:
        return "(empty series)"
    xs: List[float] = []
    ys: List[float] = []
    for i, (t, level) in enumerate(points):
        t_next = points[i + 1][0] if i + 1 < len(points) else t
        samples = max(2, int(width / max(len(points), 1)))
        for k in range(samples):
            xs.append(t + (t_next - t) * k / samples)
            ys.append(level)
    return scatter(xs, ys, width=width, height=height, title=title)
