"""Extension: why no-SIMD builds can be *faster* (Table 4's positives).

The paper suspects "AVX throttling" behind 525.x264 (+7 %) and
548.exchange2 (+7.7 %) running faster without SIMD.  This experiment
reproduces the mechanism with the license state machine: a workload
whose sparse wide instructions keep re-arming the slow license inside
hot scalar loops loses more frequency than its vectorisation earns,
while a densely vectorised kernel keeps the license busy doing useful
wide work and wins despite the downclock.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.power.avx_license import (
    AvxLicenseModel,
    LicenseLevel,
    effective_frequency_ratio,
    nosimd_tradeoff,
)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """License model: dense vs sparse SIMD and the no-SIMD crossover."""
    del seed, fast
    result = ExperimentResult(
        experiment_id="ext-avx",
        title="AVX frequency licensing: when removing SIMD wins",
    )
    model = AvxLicenseModel()

    # x264-like: modest vector speedup, wide ops sprinkled through hot
    # scalar loops frequently enough to pin the L1 license.
    x264_simd, x264_scalar = nosimd_tradeoff(
        model, simd_speedup=1.02, wide_event_rate_hz=5_000,
        demanded=LicenseLevel.L1)
    # namd-like: dense, highly effective vectorisation.
    namd_simd, namd_scalar = nosimd_tradeoff(
        model, simd_speedup=1.30, wide_event_rate_hz=200_000,
        demanded=LicenseLevel.L1)

    result.lines.append(
        f"x264-like (speedup 1.02, sparse wide ops): SIMD score "
        f"{x264_simd:.3f} vs scalar {x264_scalar:.3f} -> no-SIMD "
        f"{(x264_scalar / x264_simd - 1) * 100:+.1f}% (paper: +7%)")
    result.lines.append(
        f"namd-like (speedup 1.30, dense wide ops):  SIMD score "
        f"{namd_simd:.3f} vs scalar {namd_scalar:.3f} -> no-SIMD "
        f"{(namd_scalar / namd_simd - 1) * 100:+.1f}% (paper: -22%)")

    # Hysteresis pinning: sparse events above 1/hysteresis pin the license.
    pin_rate = 1.0 / model.hysteresis_s
    pinned, _ = effective_frequency_ratio(
        model, [(k / (2 * pin_rate), LicenseLevel.L1)
                for k in range(int(2 * pin_rate))], 1.0)
    relaxed, _ = effective_frequency_ratio(
        model, [(k / (0.2 * pin_rate), LicenseLevel.L1)
                for k in range(int(0.2 * pin_rate))], 1.0)
    result.lines.append(
        f"license pinned at 2x hysteresis rate: freq x{pinned:.3f}; "
        f"relaxed at 0.2x: freq x{relaxed:.3f}")

    result.add_metric("sparse_simd_loses",
                      1.0 if x264_scalar > x264_simd else 0.0,
                      paper=1.0, unit="")
    result.add_metric("dense_simd_wins",
                      1.0 if namd_simd > namd_scalar else 0.0,
                      paper=1.0, unit="")
    result.add_metric("x264_nosimd_gain", x264_scalar / x264_simd - 1.0,
                      paper=0.07)
    result.add_metric("pinning_effect",
                      1.0 if pinned < relaxed else 0.0, paper=1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
