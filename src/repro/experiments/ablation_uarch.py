"""Ablation: is the "IMUL +1 cycle is free" result front-end dependent?

The Fig 14 study uses an idealised front end.  This ablation reruns the
4-cycle IMUL measurement with branch mispredictions and a real cache
hierarchy switched on, in all four combinations.  Extra bubbles add
slack, so the hardened IMUL must remain (at least) as cheap — the
conclusion of section 6.1 is microarchitecture-robust.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.pipeline.config import GEM5_REFERENCE_CONFIG
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore
from repro.pipeline.uarch import BranchModel, MemoryModel


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """IMUL 3->4 slowdown across front-end/memory configurations."""
    result = ExperimentResult(
        experiment_id="ablation-uarch",
        title="IMUL hardening cost vs front-end and memory realism",
    )
    n = 10_000 if fast else 30_000
    stream = generate_stream(
        StreamSpec(n_instructions=n, imul_density=0.0099,
                   imul_chain_fraction=0.9),
        seed=seed)

    configs = {
        "ideal": dict(memory=None, branch=None),
        "+branch": dict(memory=None, branch=BranchModel()),
        "+memory": dict(memory=MemoryModel(), branch=None),
        "+both": dict(memory=MemoryModel(), branch=BranchModel()),
    }
    slowdowns = {}
    ipcs = {}
    for label, kwargs in configs.items():
        core = OutOfOrderCore(GEM5_REFERENCE_CONFIG, seed=seed, **kwargs)
        sweep = core.imul_latency_sweep(stream, (3, 4))
        slowdowns[label] = sweep[4].slowdown_vs(sweep[3])
        ipcs[label] = sweep[3].ipc
        result.lines.append(
            f"{label:<8}: base IPC {ipcs[label]:.2f}, "
            f"IMUL 3->4 slowdown {slowdowns[label] * 100:+.2f}%")

    result.add_metric("ideal_slowdown", slowdowns["ideal"])
    result.add_metric("realistic_slowdown", slowdowns["+both"])
    result.add_metric(
        "realism_reduces_ipc",
        1.0 if ipcs["+both"] < ipcs["ideal"] else 0.0, paper=1.0, unit="")
    result.add_metric(
        "hardening_stays_cheap",
        1.0 if slowdowns["+both"] <= slowdowns["ideal"] + 0.005 else 0.0,
        paper=1.0, unit="")
    result.data["slowdowns"] = slowdowns
    result.data["ipcs"] = ipcs
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
