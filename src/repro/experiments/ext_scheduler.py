"""Extension: trap-aware scheduling on multi-domain packages (section 7).

A dual-domain system (two 4-core clock groups, i9-class) runs a mix of
trap-dense and trap-free tasks.  Round-robin placement poisons both
domains with trap-dense tasks; the trap-aware partition concentrates
them, leaving one domain permanently efficient — the scheduling synergy
the paper points at.
"""

from __future__ import annotations

from repro.core.scheduler import (
    Task,
    evaluate_plan,
    plan_partition,
    plan_round_robin,
)
from repro.experiments.common import ExperimentResult, cached_trace
from repro.hardware.models import cpu_a_i9_9900k
from repro.workloads.spec import spec_profile

#: The mix: two trap-dense, two trap-sparse tasks on two domains.
_MIX = ("520.omnetpp", "527.cam4", "557.xz", "523.xalancbmk")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Round-robin vs trap-aware placement on a 2-domain package."""
    result = ExperimentResult(
        experiment_id="ext-scheduler",
        title="Trap-aware task placement across DVFS domains",
    )
    cpu = cpu_a_i9_9900k()
    names = _MIX[:2] + _MIX[2:3] if fast else _MIX
    tasks = [Task(profile=spec_profile(n), trace=cached_trace(spec_profile(n), seed))
             for n in names]

    outcomes = {}
    for plan in (plan_round_robin(tasks, 2), plan_partition(tasks, 2)):
        outcome = evaluate_plan(cpu, plan, seed=seed)
        outcomes[plan.policy] = outcome
        result.lines.append(
            f"{plan.policy:<11}: eff {outcome.efficiency_gmean * 100:+.2f}%, "
            f"mean occupancy {outcome.mean_occupancy:.2f} | {plan.describe()}")

    gain = (outcomes["trap-aware"].efficiency_gmean
            - outcomes["round-robin"].efficiency_gmean)
    result.add_metric("trap_aware_gain", gain, unit="")
    result.add_metric("trap_aware_wins",
                      1.0 if gain > 0.005 else 0.0, paper=1.0, unit="")
    # The clean domain must be near-permanently efficient.
    clean = max(r.efficient_occupancy
                for r in outcomes["trap-aware"].domain_results if r)
    result.add_metric("clean_domain_occupancy", clean, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
