"""Ablation: thrashing prevention on and off (paper section 4.3).

Builds the adversarial pattern thrashing prevention exists for: faultable
instructions arriving at gaps slightly *longer* than the deadline, so a
naive deadline policy switches curves on every single one.  With the
exception-rate detector the deadline stretches by p_df and the CPU rides
out the phase on the conservative curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import StrategyParams
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


def _thrash_trace(n: int, ipc: float, gap_instructions: int) -> FaultableTrace:
    indices = np.arange(gap_instructions, n, gap_instructions, dtype=np.int64)
    return FaultableTrace(
        name="thrasher", n_instructions=n, ipc=ipc, indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VOR,))


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Measure the thrashing pattern with and without prevention."""
    result = ExperimentResult(
        experiment_id="ablation-thrashing",
        title="Thrashing prevention on/off under adversarial gap spacing",
    )
    cpu = cpu_c_xeon_4208()
    ipc = 1.5
    n = 50_000_000 if fast else 200_000_000
    # Deadline is 30 us = ~135k instructions at CV; use ~1.5x that.
    gap = 200_000
    trace = _thrash_trace(n, ipc, gap)
    profile = WorkloadProfile(
        name="thrasher", suite="SPECint", n_instructions=n, ipc=ipc,
        efficient_occupancy=0.5, n_episodes=1, dense_gap=1000,
        imul_density=0.0, opcode_mix={Opcode.VOR: 1.0})

    on = StrategyParams(30e-6, 450e-6, 3, 14.0)
    off = StrategyParams(30e-6, 450e-6, 10 ** 6, 14.0)  # detector never fires
    results = {}
    for label, params in (("on", on), ("off", off)):
        sim = TraceSimulator(cpu, profile, trace,
                             strategy_for("fV", params), -0.097, seed=seed)
        results[label] = sim.run()
        r = results[label]
        result.lines.append(
            f"prevention {label:>3s}: {r.n_exceptions:>6d} traps, "
            f"{r.n_switches:>6d} switches, perf {r.perf_change * 100:+.2f}%, "
            f"eff {r.efficiency_change * 100:+.2f}%")

    result.add_metric("traps_without_prevention",
                      results["off"].n_exceptions, unit="count")
    result.add_metric("traps_with_prevention",
                      results["on"].n_exceptions, unit="count")
    result.add_metric(
        "trap_reduction",
        1.0 - results["on"].n_exceptions / max(results["off"].n_exceptions, 1),
        unit="")
    result.add_metric(
        "prevention_improves_perf",
        1.0 if results["on"].perf_change > results["off"].perf_change else 0.0,
        paper=1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
