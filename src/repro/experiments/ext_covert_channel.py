"""Extension: quantifying the curve-switch covert channel (section 8).

The discussion notes an attacker "could learn when disabled instructions
are executed to build a covert channel".  On a shared-DVFS-domain CPU
(A) the channel is real; on per-core domains (C) it closes.  This
experiment measures the bit-error rate and capacity, and shows the
mitigation built into SUIT's own thrashing machinery: stretching the
deadline slows the channel proportionally.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.models import cpu_a_i9_9900k, cpu_c_xeon_4208
from repro.security.covert import CurveSwitchCovertChannel


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Measure the covert channel on CPUs A and C."""
    result = ExperimentResult(
        experiment_id="ext-covert",
        title="Curve-switch covert channel on shared vs per-core domains",
    )
    rng = np.random.default_rng(seed)
    n_bits = 128 if fast else 1024

    channel_a = CurveSwitchCovertChannel(cpu_a_i9_9900k(), noise=0.01)
    bits = rng.integers(0, 2, size=n_bits).tolist()
    tx = channel_a.transmit(bits, rng)
    capacity = channel_a.capacity_estimate(np.random.default_rng(seed + 1),
                                           n_bits=n_bits)
    result.lines.append(
        f"CPU A (shared domain): BER {tx.bit_error_rate:.3f}, raw "
        f"{tx.bandwidth_bps / 1e3:.1f} kbit/s, capacity "
        f"{capacity / 1e3:.1f} kbit/s")

    stretched = CurveSwitchCovertChannel(cpu_a_i9_9900k(), noise=0.01,
                                         deadline_s=30e-6 * 14)
    tx_slow = stretched.transmit(bits, np.random.default_rng(seed + 2))
    result.lines.append(
        f"CPU A, thrash-stretched deadline: raw "
        f"{tx_slow.bandwidth_bps / 1e3:.1f} kbit/s")

    channel_c = CurveSwitchCovertChannel(cpu_c_xeon_4208())
    result.lines.append(
        f"CPU C (per-core domains): channel exists = {channel_c.channel_exists}")

    result.add_metric("shared_domain_ber", tx.bit_error_rate, unit="")
    result.add_metric("shared_domain_capacity_bps", capacity, unit="bps")
    result.add_metric("stretch_slows_channel",
                      1.0 if tx_slow.bandwidth_bps < tx.bandwidth_bps / 5
                      else 0.0, paper=1.0, unit="")
    result.add_metric("per_core_domain_closes_channel",
                      0.0 if channel_c.channel_exists else 1.0,
                      paper=1.0, unit="")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
