"""Exception dispatch and kernel transition costs (section 5.3).

The measured end-to-end delays: entering the kernel on an exception and
returning takes 0.34 us on the Intel parts (0.11 us on the 7700X); the
user-space emulation path enters the kernel twice (exception in,
emulation code out, syscall back in, program out) for 0.77 us (0.27 us
on AMD) plus the emulation routine itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.hardware.counters import DelaySpec
from repro.kernel.exceptions import DisabledOpcodeError, ExceptionVector, TrapFrame

Handler = Callable[[TrapFrame], None]


@dataclass(frozen=True)
class KernelCosts:
    """Kernel-transition cost model of one CPU.

    Attributes:
        exception_delay: exception entry + return (one round trip).
        emulation_call_delay: the double round trip of user-space
            emulation, excluding the emulation routine itself.
    """

    exception_delay: DelaySpec
    emulation_call_delay: DelaySpec

    def sample_exception(self, rng: np.random.Generator) -> float:
        """One sampled exception round-trip delay."""
        return self.exception_delay.sample(rng)

    def sample_emulation_call(self, rng: np.random.Generator) -> float:
        """One sampled emulation double-round-trip delay."""
        return self.emulation_call_delay.sample(rng)


class ExceptionTable:
    """Kernel exception vector table.

    Register handlers per vector; :meth:`dispatch` invokes them and
    accounts the transition cost.
    """

    def __init__(self, costs: KernelCosts) -> None:
        self._costs = costs
        self._handlers: Dict[ExceptionVector, Handler] = {}
        self.dispatch_count: Dict[ExceptionVector, int] = {}

    def register(self, vector: ExceptionVector, handler: Handler) -> None:
        """Install *handler* for *vector* (replacing any previous one)."""
        self._handlers[vector] = handler

    def registered(self, vector: ExceptionVector) -> bool:
        """Whether a handler is installed for *vector*."""
        return vector in self._handlers

    def dispatch(self, vector: ExceptionVector, frame: TrapFrame,
                 rng: Optional[np.random.Generator] = None) -> float:
        """Deliver an exception.

        Returns:
            The kernel-transition cost in seconds (handler-internal work
            is modelled by the handler itself).

        Raises:
            DisabledOpcodeError: for an unhandled #DO.
            KeyError: for any other unhandled vector.
        """
        handler = self._handlers.get(vector)
        if handler is None:
            if vector is ExceptionVector.DISABLED_OPCODE:
                raise DisabledOpcodeError(frame)
            raise KeyError(f"no handler registered for {vector.name}")
        self.dispatch_count[vector] = self.dispatch_count.get(vector, 0) + 1
        handler(frame)
        if rng is None:
            return self._costs.exception_delay.mean_s
        return self._costs.sample_exception(rng)
