"""CPU exceptions, including SUIT's Disabled Opcode exception (section 3.3).

SUIT reuses a reserved interrupt vector for the new ``#DO`` exception.
Like other CPU exceptions it preserves the full register set so the
program can continue after handling — either re-executing the instruction
(once the conservative curve is active) or skipping it (after emulation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import Opcode


class ExceptionVector(enum.IntEnum):
    """x86 exception vectors relevant to SUIT."""

    DIVIDE_ERROR = 0
    INVALID_OPCODE = 6  # #UD, the closest existing relative of #DO
    GENERAL_PROTECTION = 13
    DISABLED_OPCODE = 21  # #DO, on a reserved vector (paper section 3.3)


@dataclass
class TrapFrame:
    """Saved architectural state at exception entry.

    Attributes:
        rip: instruction pointer of the faulting instruction (so the CPU
            re-executes it on return, unless the handler advances it).
        opcode: decoded class of the faulting instruction.
        registers: saved general-purpose register values.
        core: core the exception occurred on.
        timestamp_s: simulation time of the exception.
    """

    rip: int
    opcode: Optional[Opcode] = None
    registers: Dict[str, int] = field(default_factory=dict)
    core: int = 0
    timestamp_s: float = 0.0

    def advance(self, instruction_bytes: int = 4) -> None:
        """Skip the faulting instruction (emulation completed it)."""
        self.rip += instruction_bytes


class DisabledOpcodeError(RuntimeError):
    """Raised when a disabled instruction executes with no handler
    registered — the software model of an unhandled #DO (kernel panic)."""

    def __init__(self, frame: TrapFrame) -> None:
        super().__init__(
            f"unhandled #DO at rip={frame.rip:#x} opcode={frame.opcode}")
        self.frame = frame
