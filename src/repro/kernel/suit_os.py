"""The SUIT kernel subsystem: MSR-level OS choreography (sections 3, 4).

:class:`SuitOs` is the operating-system half of SUIT assembled from its
parts: on boot it programs the SUIT MSRs (disable mask, deadline, curve
select), registers the #DO handler on the reserved vector, and then
walks the exact register-level sequence of Listing 1 on every trap and
timer interrupt.  The trace simulator abstracts this choreography away
for speed; this class makes it inspectable — every step is visible as
an MSR read/write — and is validated against the simulator's semantics
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.params import StrategyParams
from repro.hardware.interface import SuitMsrInterface
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.kernel.exceptions import ExceptionVector, TrapFrame
from repro.kernel.handler import ExceptionTable, KernelCosts
from repro.kernel.timer import DeadlineTimer
from repro.obs.tracer import TRACK_SIM, get_tracer
from repro.power.dvfs import CurveKind


@dataclass
class SuitOsLog:
    """Audit log of the kernel's SUIT actions."""

    entries: List[Tuple[float, str]] = field(default_factory=list)

    def record(self, time_s: float, action: str) -> None:
        """Append one timestamped action."""
        self.entries.append((time_s, action))

    def actions(self) -> List[str]:
        """The actions without timestamps."""
        return [a for _, a in self.entries]


class SuitOs:
    """The OS-side SUIT state machine over the MSR interface.

    Args:
        msrs: the SUIT MSR interface of the core.
        costs: kernel transition costs (section 5.3).
        params: operating-strategy parameters (Table 7).
        emulate: handle traps by user-space emulation instead of curve
            switching (the ``e`` strategy).
    """

    def __init__(self, msrs: SuitMsrInterface, costs: KernelCosts,
                 params: StrategyParams, emulate: bool = False) -> None:
        self.msrs = msrs
        self.params = params
        self.emulate = emulate
        self.timer = DeadlineTimer()
        self.exceptions = ExceptionTable(costs)
        self.log = SuitOsLog()
        self._tracer = get_tracer()
        self._exception_times: List[float] = []
        self._booted = False

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> None:
        """Bring the core into SUIT steady state (efficient curve)."""
        self.exceptions.register(ExceptionVector.DISABLED_OPCODE,
                                 self._do_handler)
        self.msrs.enter_efficient_mode(self.params.deadline_s)
        self.log.record(0.0, "boot: efficient curve, trapped set disabled")
        self._booted = True

    def shutdown(self) -> None:
        """Return the core to stock behaviour."""
        self._check_booted()
        self.msrs.select_curve(CurveKind.CONSERVATIVE)
        self.msrs.enable_all()
        self.timer.cancel()
        self.log.record(self._last_time, "shutdown: conservative, all enabled")
        self._booted = False

    # -- events ------------------------------------------------------------

    def on_disabled_opcode(self, opcode: Opcode, time_s: float,
                           rip: int = 0) -> float:
        """Deliver a #DO exception; returns the kernel cost charged."""
        self._check_booted()
        self._last_time = time_s
        frame = TrapFrame(rip=rip, opcode=opcode, timestamp_s=time_s)
        return self.exceptions.dispatch(ExceptionVector.DISABLED_OPCODE, frame)

    def on_faultable_executed(self, time_s: float) -> None:
        """Hardware notification: an (enabled) faultable instruction
        retired — the deadline countdown restarts."""
        self._check_booted()
        self.timer.reset(time_s)

    def on_timer_interrupt(self, time_s: float) -> None:
        """Deadline expiry: back to the efficient curve (Listing 1)."""
        self._check_booted()
        self._last_time = time_s
        if not self.timer.expired(time_s):
            return
        self.timer.cancel()
        self.msrs.disable(TRAPPED_OPCODES)
        self.msrs.select_curve(CurveKind.EFFICIENT)
        self.log.record(time_s, "timer: disabled set, efficient curve")
        if self._tracer.enabled:
            self._tracer.instant("timer fire", "kernel", ts_s=time_s,
                                 track=TRACK_SIM,
                                 args={"curve": "efficient"})

    # -- introspection -------------------------------------------------------

    @property
    def on_efficient_curve(self) -> bool:
        return self.msrs.current_curve() is CurveKind.EFFICIENT

    def exception_count_in(self, window_s: float, now_s: float) -> int:
        """#DO exceptions within the trailing window."""
        cutoff = now_s - window_s
        return sum(1 for t in self._exception_times if t >= cutoff)

    # -- internals -----------------------------------------------------------

    _last_time: float = 0.0

    def _do_handler(self, frame: TrapFrame) -> None:
        time_s = frame.timestamp_s
        self._exception_times.append(time_s)
        if self._tracer.enabled:
            self._tracer.instant("#DO trap", "kernel", ts_s=time_s,
                                 track=TRACK_SIM,
                                 args={"opcode": frame.opcode.name,
                                       "rip": frame.rip})
        if self.emulate:
            self.log.record(time_s, f"#DO {frame.opcode.name}: emulated")
            frame.advance()  # skip the instruction: emulation produced it
            return
        # Listing 1: conservative curve, enable, arm (stretched) deadline.
        self.msrs.select_curve(CurveKind.CONSERVATIVE)
        self.msrs.enable_all()
        thrashing = (self.exception_count_in(self.params.thrash_timespan_s,
                                             time_s)
                     >= self.params.thrash_exception_count)
        deadline = self.params.scaled_deadline(thrashing)
        self.timer.arm(time_s, deadline)
        self.msrs.set_deadline(deadline)
        if self._tracer.enabled:
            self._tracer.instant("p-state change", "kernel", ts_s=time_s,
                                 track=TRACK_SIM,
                                 args={"curve": "conservative",
                                       "deadline_us": deadline * 1e6,
                                       "thrashing": thrashing})
        self.log.record(
            time_s,
            f"#DO {frame.opcode.name}: conservative, enabled, deadline "
            f"{deadline * 1e6:.0f}us" + (" (thrash)" if thrashing else ""))

    def _check_booted(self) -> None:
        if not self._booted:
            raise RuntimeError("SuitOs not booted")
