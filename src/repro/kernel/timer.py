"""The deadline timer (paper section 4.1).

Initialised with the deadline, the timer counts down at constant speed;
at zero it fires an interrupt that switches back to the efficient DVFS
curve.  Whenever a would-be-disabled instruction executes, the countdown
restarts from the armed deadline — so SUIT stays conservative exactly as
long as faultable instructions keep arriving within one deadline of each
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class DeadlineTimer:
    """Countdown deadline timer.

    All times are absolute simulation seconds; the timer stores the armed
    deadline so resets restart the same countdown.
    """

    _deadline_s: Optional[float] = None
    _fires_at: Optional[float] = None

    def arm(self, now_s: float, deadline_s: float) -> None:
        """Start (or re-start) the countdown of *deadline_s* seconds."""
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self._deadline_s = deadline_s
        self._fires_at = now_s + deadline_s

    def reset(self, now_s: float) -> None:
        """Restart the countdown (a faultable instruction executed).

        No-op when the timer is not armed.
        """
        if self._deadline_s is not None:
            self._fires_at = now_s + self._deadline_s

    def defer(self, duration_s: float) -> None:
        """Push the expiry out by *duration_s*.

        The hardware countdown is core-clock driven: while the core is
        stalled (e.g. during a frequency switch) no cycles elapse, so
        the deadline does not shrink.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if self._fires_at is not None:
            self._fires_at += duration_s

    def cancel(self) -> None:
        """Disarm without firing."""
        self._deadline_s = None
        self._fires_at = None

    @property
    def armed(self) -> bool:
        return self._fires_at is not None

    @property
    def fires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when disarmed."""
        return self._fires_at

    @property
    def armed_deadline(self) -> Optional[float]:
        """The deadline value the countdown restarts from."""
        return self._deadline_s

    def expired(self, now_s: float) -> bool:
        """Whether the countdown has reached zero by *now_s*."""
        return self._fires_at is not None and now_s >= self._fires_at
