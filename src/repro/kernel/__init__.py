"""Operating-system model (paper sections 3.3, 3.4, 5.3).

SUIT's software half lives in the kernel: the new Disabled Opcode
(``#DO``) exception and its handler, the deadline timer that switches
back to the efficient curve, and the user-space emulation path with its
double kernel transition.  The costs are the microbenchmarked delays of
section 5.3.
"""

from repro.kernel.exceptions import ExceptionVector, TrapFrame, DisabledOpcodeError
from repro.kernel.handler import ExceptionTable, KernelCosts
from repro.kernel.timer import DeadlineTimer
from repro.kernel.suit_os import SuitOs, SuitOsLog

__all__ = [
    "ExceptionVector",
    "TrapFrame",
    "DisabledOpcodeError",
    "ExceptionTable",
    "KernelCosts",
    "DeadlineTimer",
    "SuitOs",
    "SuitOsLog",
]
