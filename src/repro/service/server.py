"""The asyncio simulation job server.

Request lifecycle (see ``docs/service.md`` for the full walk-through):

1. **Validate + canonicalize** — malformed requests fail immediately;
   well-formed ones get a canonical identity key.
2. **Cache fast path** — a completed identical request in the attached
   :class:`~repro.runtime.cache.ResultCache` answers instantly.
3. **Dedup** — an identical request already in flight shares its
   future; one simulation answers every waiter.
4. **Admission control** — the bounded
   :class:`~repro.service.scheduler.DeadlineScheduler` either admits
   the entry or rejects it with a ``retry_after_s`` hint.
5. **Micro-batch + dispatch** — the dispatcher loop drains the queue
   through the :class:`~repro.service.batcher.MicroBatcher` onto the
   :class:`~repro.service.workers.ShardedWorkerTier`; worker crashes
   are retried with backoff.
6. **Respond** — per-request timeouts bound the wait; graceful
   shutdown drains in-flight work before tearing pools down.

`start_tcp_server` exposes the service over a JSON-lines TCP protocol
(one request object per line, ``id``-correlated concurrent responses)
— the transport behind ``python -m repro serve`` and
:class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Set

from repro import __version__ as REPRO_VERSION
from repro.obs.context import TraceContext
from repro.obs.slo import FlightRecorder
from repro.obs.tracer import get_tracer
from repro.runtime.cache import ResultCache, default_cache_dir, package_digest
from repro.service.batcher import Batch, MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    InvalidRequestError,
    SimRequest,
    SimResponse,
)
from repro.service.scheduler import (
    AdmissionError,
    DeadlineScheduler,
    ScheduledEntry,
    absolute_deadline,
)
from repro.service.workers import BatchExecutionError, ShardedWorkerTier
from repro.testkit.chaos import inject
from repro.testkit.clock import SYSTEM_CLOCK


def service_cache_dir() -> Path:
    """Default on-disk cache root for service results.

    A sibling of the experiment cache (``.../repro-suit/service``), so
    ``python -m repro.runtime.cache --prune`` can manage either.
    """
    return default_cache_dir().parent / "service"


def service_cache_key(request: SimRequest) -> str:
    """Content address of one request's result in the shared cache.

    Covers the canonical request identity, the package digest (any
    simulator change invalidates results) and the distribution version.
    """
    material = {
        "kind": "repro.service.result",
        "request": request.canonical_dict(),
        "package_digest": package_digest(),
        "version": REPRO_VERSION,
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ServiceConfig:
    """Tunables of one :class:`SimulationService`.

    Attributes:
        n_shards: worker-pool shards (keyed by cpu/strategy).
        workers_per_shard: processes (or threads) per shard.
        use_processes: process pools (real isolation) vs thread pools
            (cheap; for tests and latency-insensitive embedding).
        max_queue_depth: admission bound of the scheduler.
        max_batch_size: micro-batch occupancy cap.
        batch_window_s: how long an under-full batch waits for
            companions (interactive requests skip it).
        interactive_cutoff: priority at or below which a request is
            treated as interactive.
        max_retries: worker-crash retries per batch.
        retry_backoff_s: initial crash-retry backoff (doubles each try).
        default_timeout_s: per-request wait bound when the request
            carries no deadline.
        batch_timeout_s: hard bound on one batch execution (None: rely
            on per-request timeouts).
        retry_after_base_s: base of the backpressure retry hint.
        max_inflight_batches: dispatch concurrency bound; ``None``
            defaults to ``n_shards * workers_per_shard``, i.e. one
            batch per worker.  Keeping excess work in the scheduler
            (rather than in executor queues) is what makes priorities,
            deadlines and admission control real.
        share_traces: publish synthesized traces to the zero-copy
            shared trace store (:mod:`repro.workloads.tracestore`);
            worker processes attach read-only views instead of each
            re-synthesizing the trace.  The store is created on
            :meth:`SimulationService.start` and torn down after the
            drain in :meth:`SimulationService.stop`.
    """

    n_shards: int = 2
    workers_per_shard: int = 1
    use_processes: bool = True
    max_queue_depth: int = 128
    max_batch_size: int = 8
    batch_window_s: float = 0.005
    interactive_cutoff: int = 0
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    default_timeout_s: float = 60.0
    batch_timeout_s: Optional[float] = None
    retry_after_base_s: float = 0.05
    max_inflight_batches: Optional[int] = None
    share_traces: bool = False


class SimulationService:
    """The asyncio job server over the SUIT simulator.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly:

    .. code-block:: python

        async with SimulationService(ServiceConfig()) as service:
            response = await service.submit(SimRequest("C", "557.xz"))

    Args:
        config: tunables (defaults are sensible for tests).
        cache: optional result cache consulted before scheduling and
            filled after successful simulations.
        clock: time source threaded through the scheduler, batcher and
            tier; tests inject a :class:`~repro.testkit.clock.FakeClock`
            so windows/backoffs elapse in virtual time.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 cache: Optional[ResultCache] = None,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        self.config = config or ServiceConfig()
        self.cache = cache
        self.clock = clock
        self.metrics = ServiceMetrics()
        self.scheduler = DeadlineScheduler(
            max_depth=self.config.max_queue_depth,
            retry_after_base_s=self.config.retry_after_base_s,
            clock=clock)
        self.batcher = MicroBatcher(
            self.scheduler, max_batch_size=self.config.max_batch_size,
            window_s=self.config.batch_window_s,
            interactive_cutoff=self.config.interactive_cutoff,
            clock=clock)
        self.tier = ShardedWorkerTier(
            n_shards=self.config.n_shards,
            workers_per_shard=self.config.workers_per_shard,
            use_processes=self.config.use_processes,
            max_retries=self.config.max_retries,
            retry_backoff_s=self.config.retry_backoff_s,
            metrics=self.metrics,
            clock=clock)
        #: Chrome-trace lane label of this service's spans; the fleet
        #: supervisor overwrites it with the node name so an in-process
        #: fleet's shared tracer still yields one lane per node.
        self.proc_name = f"service-{os.getpid()}"
        #: Exemplar keeper: the slowest and failed requests' trace ids,
        #: served by the ``trace`` verb for alert/dashboard links.
        self.flight = FlightRecorder()
        self._inflight: dict = {}
        self._batch_tasks: Set["asyncio.Task"] = set()
        self._dispatcher: Optional["asyncio.Task"] = None
        self._batch_slots: Optional["asyncio.Semaphore"] = None
        self._trace_store = None
        self._closed = False

    async def start(self) -> "SimulationService":
        """Start the dispatcher loop; idempotent."""
        if self._dispatcher is None:
            self._closed = False
            if self.config.share_traces and self._trace_store is None:
                # Activate before the first dispatch so lazily spawned
                # pool workers inherit the store's environment variable.
                from repro.workloads.tracestore import SharedTraceStore

                store = SharedTraceStore.create("service")
                store.activate()
                self._trace_store = store
            slots = (self.config.max_inflight_batches
                     if self.config.max_inflight_batches is not None
                     else self.config.n_shards
                     * self.config.workers_per_shard)
            self._batch_slots = asyncio.Semaphore(max(1, slots))
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())
        return self

    async def __aenter__(self) -> "SimulationService":
        """Async context entry: :meth:`start`."""
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Async context exit: graceful :meth:`stop`."""
        await self.stop()

    @property
    def closed(self) -> bool:
        """True once shutdown began; submissions are rejected."""
        return self._closed

    @property
    def inflight(self) -> int:
        """Requests admitted but not yet answered (dedup groups count
        once — one simulation answers every waiter)."""
        return len(self._inflight)

    async def submit(self, request: SimRequest) -> SimResponse:
        """Answer one request (however long that takes, bounded by its
        deadline); never raises for per-request problems — bad input,
        backpressure, timeouts and failures all come back as statuses.

        When tracing is on, the whole submission becomes one
        ``service.submit`` span: continuing the request's ``trace_id``
        if a gateway already minted one (the incoming ``parent_span``
        becomes this span's parent), minting a fresh trace otherwise.
        The span id rides to the worker tier via the scheduler entry,
        and the finished request lands in the flight recorder.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return await self._submit_inner(request, ctx=None)
        ctx = TraceContext.from_request(request.trace_id,
                                        request.parent_span)
        request = replace(request, trace_id=ctx.trace_id)
        start_s = tracer.now_s()
        response = await self._submit_inner(request, ctx=ctx)
        tracer.complete(
            "service.submit", "service", ts_s=start_s,
            dur_s=tracer.now_s() - start_s,
            args=ctx.args(proc=self.proc_name, status=response.status,
                          source=response.source))
        self.flight.record(ctx.trace_id, response.latency_s,
                           response.status, source=response.source)
        return response

    async def _submit_inner(self, request: SimRequest,
                            ctx: Optional[TraceContext]) -> SimResponse:
        """The untraced submission path (see :meth:`submit`)."""
        arrival = self.clock.monotonic()
        self.metrics.inc("requests_submitted")
        if self._closed:
            self.metrics.inc("requests_rejected")
            return SimResponse(request=request, status=STATUS_REJECTED,
                               error="service is shutting down",
                               retry_after_s=1.0)
        try:
            request.validate()
        except InvalidRequestError as exc:
            self.metrics.inc("requests_invalid")
            return SimResponse(request=request, status=STATUS_FAILED,
                               error=str(exc))
        key = request.canonical_key()

        cache_key: Optional[str] = None
        if self.cache is not None:
            cache_key = service_cache_key(request)
            payload = self.cache.get(cache_key)
            if payload is not None:
                self.metrics.inc("cache_hits")
                self.metrics.inc("requests_completed")
                latency = self.clock.monotonic() - arrival
                self.metrics.observe_latency(latency)
                return SimResponse(request=request, status=STATUS_OK,
                                   payload=payload, source="cache",
                                   latency_s=latency)

        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.inc("dedup_hits")
            return await self._await_outcome(existing, request, arrival,
                                             source="dedup")

        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        entry = ScheduledEntry(request=request, future=future, key=key,
                               cache_key=cache_key,
                               due=absolute_deadline(request, now=arrival),
                               span_id=ctx.span_id if ctx else None)
        try:
            inject("server.admission", depth=self.scheduler.depth)
            self.scheduler.push(entry)
        except AdmissionError as exc:
            self.metrics.inc("requests_rejected")
            return SimResponse(request=request, status=STATUS_REJECTED,
                               error=str(exc),
                               retry_after_s=exc.retry_after_s)
        self._inflight[key] = future
        self.metrics.set_gauge("queue_depth", self.scheduler.depth)
        return await self._await_outcome(future, request, arrival,
                                         source="computed")

    async def _await_outcome(self, future: "asyncio.Future[dict]",
                             request: SimRequest, arrival: float,
                             source: str) -> SimResponse:
        """Wait (bounded) for *future* and shape it into a response."""
        timeout = (request.deadline_s if request.deadline_s is not None
                   else self.config.default_timeout_s)
        try:
            outcome = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.metrics.inc("requests_timed_out")
            latency = self.clock.monotonic() - arrival
            return SimResponse(
                request=request, status=STATUS_TIMEOUT, source=source,
                error=f"no result within {timeout:.3f}s", latency_s=latency)
        latency = self.clock.monotonic() - arrival
        self.metrics.observe_latency(latency)
        status = STATUS_OK if outcome.get("status") == "ok" else STATUS_FAILED
        self.metrics.inc("requests_completed" if status == STATUS_OK
                         else "requests_failed")
        return SimResponse(
            request=request, status=status,
            payload=outcome.get("payload"), error=outcome.get("error"),
            source=source, latency_s=latency,
            retries=int(outcome.get("retries", 0)))

    async def _dispatch_loop(self) -> None:
        """Forever: build the next batch and launch its execution task.

        Bounded by the batch-slot semaphore: when every worker already
        has a batch, the loop blocks and requests accumulate in the
        scheduler — where priority ordering and admission control
        apply — instead of in executor queues where they would not.
        """
        assert self._batch_slots is not None
        while True:
            await self._batch_slots.acquire()
            try:
                batch = await self.batcher.next_batch()
            except BaseException:
                self._batch_slots.release()
                raise
            self.metrics.set_gauge("queue_depth", self.scheduler.depth)
            self.metrics.inc("batches_dispatched")
            self.metrics.observe_batch(batch.occupancy)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant("batch formed", "service",
                               args={"occupancy": batch.occupancy,
                                     "shard": batch.shard_key,
                                     "queue_depth": self.scheduler.depth})
            task = asyncio.get_running_loop().create_task(
                self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: Batch) -> None:
        """Execute one batch on the tier and resolve its futures.

        Traced entries dispatch with ``parent_span`` rewritten to the
        submission span's id, so the worker-side ``worker.execute``
        span parents on it.  Thread-tier workers record that span
        themselves (shared tracer); for process-pool workers — whose
        tracer lives in another process — it is synthesized here from
        the outcome's ``wall_time_s``, anchored at batch dispatch.
        """
        tracer = get_tracer()
        batch_start = tracer.now_s() if tracer.enabled else 0.0
        requests = []
        for entry in batch.entries:
            req = entry.request.to_dict()
            if entry.span_id is not None:
                req["parent_span"] = entry.span_id
            requests.append(req)
        try:
            outcomes, retries = await self.tier.run_batch(
                batch.shard_key, requests,
                timeout_s=self.config.batch_timeout_s)
        except (BatchExecutionError, asyncio.TimeoutError) as exc:
            self.metrics.inc("batch_failures")
            outcomes = [{"status": "failed", "error": str(exc),
                         "payload": None} for _ in batch.entries]
            retries = self.config.max_retries
        finally:
            if self._batch_slots is not None:
                self._batch_slots.release()
        if retries:
            self.metrics.inc("batch_retries", retries)
            if tracer.enabled:
                tracer.instant("worker retry", "service",
                               args={"shard": batch.shard_key,
                                     "retries": retries})
        for entry, outcome in zip(batch.entries, outcomes):
            self.metrics.inc("simulations_executed")
            if (tracer.enabled and entry.request.trace_id
                    and not outcome.get("span_recorded")):
                ctx = TraceContext.from_request(entry.request.trace_id,
                                                entry.span_id)
                tracer.complete(
                    "worker.execute", "service", ts_s=batch_start,
                    dur_s=float(outcome.get("wall_time_s") or 0.0),
                    args=ctx.args(
                        proc=f"worker:{outcome.get('worker', '?')}",
                        status=outcome.get("status"), synthesized=True))
            if (self.cache is not None and entry.cache_key is not None
                    and outcome.get("status") == "ok"
                    and outcome.get("payload") is not None):
                try:
                    self.cache.put(entry.cache_key, outcome["payload"])
                except OSError:
                    # A cache that cannot be written must not fail the
                    # request — the computed payload is still correct.
                    self.metrics.inc("cache_put_failures")
            if self._inflight.get(entry.key) is entry.future:
                del self._inflight[entry.key]
            if not entry.future.done():
                entry.future.set_result({**outcome, "retries": retries})

    async def stop(self, drain: bool = True,
                   timeout_s: float = 30.0) -> None:
        """Stop the service; with *drain*, finish admitted work first.

        New submissions are rejected immediately; queued and in-flight
        requests are completed (bounded by *timeout_s*), then the
        dispatcher is cancelled and the worker pools shut down.  Without
        *drain*, queued entries are failed with a shutdown error.
        """
        self._closed = True
        if not drain:
            for entry in self.scheduler.drain():
                self._inflight.pop(entry.key, None)
                if not entry.future.done():
                    entry.future.set_result({
                        "status": "failed", "payload": None,
                        "error": "service stopped before execution"})
        deadline = self.clock.monotonic() + timeout_s
        while (drain and (self.scheduler.depth or self._batch_tasks
                          or self._inflight)
               and self.clock.monotonic() < deadline):
            await self.clock.sleep(0.005)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks),
                                 return_exceptions=True)
        for key, future in list(self._inflight.items()):
            if not future.done():
                future.set_result({"status": "failed", "payload": None,
                                   "error": "service stopped"})
            self._inflight.pop(key, None)
        self.tier.shutdown(wait=False)
        if self._trace_store is not None:
            store, self._trace_store = self._trace_store, None
            store.deactivate()
            store.cleanup()


async def _handle_message(service: SimulationService, message: dict,
                          writer: "asyncio.StreamWriter",
                          lock: "asyncio.Lock") -> None:
    """Answer one decoded protocol message on *writer*."""
    msg_id = message.get("id")
    op = message.get("op", "submit")
    if op == "submit":
        try:
            request = SimRequest.from_dict(message.get("request") or {})
            # Validate at the protocol boundary: a type-corrupt field
            # (say voltage_offset: null) passes from_dict but would
            # make the response echo un-serializable, leaving the
            # client without any reply at all.
            request.validate()
        except InvalidRequestError as exc:
            out = {"op": "error", "error": str(exc)}
        else:
            response = await service.submit(request)
            out = response.to_dict()
            out["op"] = "response"
    elif op == "metrics":
        if message.get("format") == "prometheus":
            out = {"op": "metrics", "format": "prometheus",
                   "text": service.metrics.prometheus_text()}
        else:
            out = {"op": "metrics", "metrics": service.metrics.snapshot()}
    elif op == "trace":
        tracer = get_tracer()
        out = {"op": "trace", "enabled": tracer.enabled,
               "proc": service.proc_name,
               "origin_unix_s": tracer.origin_unix_s,
               "tracer_id": tracer.tracer_id,
               "events": [event.to_chrome() for event in tracer.events()],
               "flight": service.flight.to_json_dict()}
    elif op == "health":
        # The cheap control-plane signals: what a fleet supervisor or
        # autoscaler polls without paying for a full metrics snapshot.
        out = {"op": "health",
               "status": "draining" if service.closed else "ok",
               "queue_depth": service.scheduler.depth,
               "inflight": service.inflight,
               "version": REPRO_VERSION}
    elif op == "drain":
        # Stop admitting, finish accepted work, tear the tier down;
        # the reply is the drain-complete acknowledgement a supervisor
        # waits for before terminating the process.
        await service.stop(drain=True)
        out = {"op": "drain", "status": "stopped"}
    elif op == "ping":
        out = {"op": "pong", "version": REPRO_VERSION}
    else:
        out = {"op": "error", "error": f"unknown op {op!r}"}
    if msg_id is not None:
        out["id"] = msg_id
    try:
        async with lock:
            writer.write(json.dumps(out).encode("utf-8") + b"\n")
            await writer.drain()
    except (ConnectionError, RuntimeError):
        pass  # peer went away mid-response; nothing to answer anymore


async def _handle_connection(service: SimulationService,
                             reader: "asyncio.StreamReader",
                             writer: "asyncio.StreamWriter") -> None:
    """Serve one JSON-lines connection; messages run concurrently."""
    lock = asyncio.Lock()
    tasks: Set["asyncio.Task"] = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                for kind in inject("server.frame", size=len(line)):
                    if kind == "garble":
                        # Invalid UTF-8 in byte 0: the frame parser
                        # must answer "bad json", not die.
                        line = b"\xff" + line[1:]
            except ConnectionError:
                break  # injected connection drop
            try:
                message = json.loads(line)
            except ValueError:
                async with lock:
                    writer.write(b'{"op": "error", "error": "bad json"}\n')
                    await writer.drain()
                continue
            if not isinstance(message, dict):
                # json.loads happily returns scalars and arrays; only
                # objects are protocol frames.
                async with lock:
                    writer.write(b'{"op": "error", '
                                 b'"error": "frame must be a JSON object"}\n')
                    await writer.drain()
                continue
            task = asyncio.get_running_loop().create_task(
                _handle_message(service, message, writer, lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    finally:
        try:
            writer.close()
        except RuntimeError:
            pass


async def start_tcp_server(service: SimulationService,
                           host: str = "127.0.0.1",
                           port: int = 0,
                           connections: Optional[Set] = None
                           ) -> "asyncio.AbstractServer":
    """Expose *service* over JSON-lines TCP; returns the asyncio server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()[1]``.  When *connections* is
    given, every live connection's writer is tracked in it — the fleet
    supervisor aborts those transports to make an in-process node kill
    reset its peers exactly like a process death would.
    """
    async def handler(reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        if connections is not None:
            connections.add(writer)
        try:
            await _handle_connection(service, reader, writer)
        except asyncio.CancelledError:
            # Event-loop teardown cancels live connection handlers;
            # dying quietly beats a traceback per connection.
            pass
        finally:
            if connections is not None:
                connections.discard(writer)

    return await asyncio.start_server(handler, host=host, port=port)
