"""The service's observability surface: counters, gauges, histograms.

Everything the load generator and the operator dashboards need —
request/dedup/cache/rejection counters, queue-depth gauge, latency and
batch-occupancy histograms with approximate percentiles — collected
behind one :class:`ServiceMetrics` object and exported as a plain JSON
dict by :meth:`ServiceMetrics.snapshot` or as Prometheus text by
:meth:`ServiceMetrics.prometheus_text`.

Since the unified telemetry layer landed, this module is a thin facade
over :class:`repro.obs.MetricsRegistry`: every counter, gauge and
histogram lives in a (per-instance, injectable) registry, so the
service shares one metrics model with the engine and the simulator.

.. deprecated::
    ``Histogram`` and ``latency_bounds`` moved to
    :mod:`repro.obs.registry`; they are re-exported here so existing
    imports (``from repro.service.metrics import Histogram``) keep
    working.  New code should import them from :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.prometheus import render_prometheus
from repro.obs.registry import Histogram, MetricsRegistry, latency_bounds

__all__ = ["Histogram", "ServiceMetrics", "latency_bounds"]

#: Counter names the service increments, with their help strings.
#: Pre-registered at zero so a scrape of an idle service still shows
#: every counter the dashboards alert on.
SERVICE_COUNTERS = {
    "requests_submitted": "requests received by submit()",
    "requests_completed": "requests answered with status ok",
    "requests_failed": "requests answered with status failed",
    "requests_invalid": "requests rejected at validation",
    "requests_rejected": "requests rejected by admission control",
    "requests_timed_out": "requests that missed their deadline",
    "cache_hits": "requests answered from the result cache",
    "dedup_hits": "requests coalesced onto an in-flight twin",
    "simulations_executed": "simulations run on the worker tier",
    "batches_dispatched": "micro-batches handed to the worker tier",
    "batch_retries": "batch executions retried after worker crashes",
    "batch_failures": "batches that exhausted their retries",
    "worker_restarts": "worker pools rebuilt after a crash",
    "cache_put_failures": "result-cache writes that failed (non-fatal)",
}


class ServiceMetrics:
    """All counters, gauges and histograms of one service instance.

    The documented counter names are listed in :data:`SERVICE_COUNTERS`
    (all monotonic).  Thread-safe: the worker tier's executor callbacks
    and the asyncio loop may touch it from different threads.

    Args:
        registry: the backing :class:`~repro.obs.MetricsRegistry`; a
            private one is created when omitted, so two service
            instances never share series.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        """See class docstring."""
        self.registry = registry if registry is not None else MetricsRegistry()
        for name, help_text in SERVICE_COUNTERS.items():
            self.registry.counter(name, help_text)
        self.registry.gauge("queue_depth", "scheduler queue depth").set(0)
        self.latency: Histogram = self.registry.histogram(
            "latency_s", "request latency in seconds",
            bounds=latency_bounds()).child()
        self.batch_occupancy: Histogram = self.registry.histogram(
            "batch_occupancy", "requests per dispatched micro-batch",
            bounds=list(range(1, 33))).child()

    def inc(self, name: str, delta: int = 1) -> None:
        """Increment counter *name* by *delta*."""
        self.registry.counter(name, SERVICE_COUNTERS.get(name, "")).inc(delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.registry.gauge(name).set(value)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        return self.registry.counter(name).value()

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge *name*, or None when never set."""
        return self.registry.gauge(name).value()

    def observe_latency(self, seconds: float) -> None:
        """Record one request latency."""
        self.latency.observe(seconds)

    def observe_batch(self, occupancy: int) -> None:
        """Record one dispatched batch's occupancy."""
        self.batch_occupancy.observe(occupancy)

    def snapshot(self) -> dict:
        """The whole registry as a JSON-ready dict (stable key order)."""
        return self.registry.snapshot()

    def prometheus_text(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        return render_prometheus(self.registry)
