"""The service's observability surface: counters, gauges, histograms.

Everything the load generator and the operator dashboards need —
request/dedup/cache/rejection counters, queue-depth gauge, latency and
batch-occupancy histograms with approximate percentiles — collected
behind one :class:`ServiceMetrics` object and exported as a plain JSON
dict by :meth:`ServiceMetrics.snapshot`.

The histograms are fixed-bucket: geometric bounds for latencies (they
span five orders of magnitude), linear bounds for batch occupancy.
Percentiles are read as the upper bound of the bucket holding the
requested rank — cheap, allocation-free on the hot path, and accurate
to one bucket width, which is what serving dashboards use.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence


def latency_bounds(lo: float = 1e-4, hi: float = 120.0) -> List[float]:
    """Geometric bucket bounds from *lo* to at least *hi* seconds."""
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * 2.0)
    return bounds


class Histogram:
    """Fixed-bucket histogram with approximate percentiles.

    Args:
        bounds: ascending bucket upper bounds; one implicit overflow
            bucket catches everything above the last bound.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        """See class docstring."""
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds: List[float] = [float(b) for b in bounds]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.n += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound of the bucket holding rank ``p`` (0..1); None when empty.

        The overflow bucket reports the largest value seen, so a
        pathological tail is never under-reported.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.n == 0:
            return None
        rank = max(1, int(p * self.n + 0.5))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max_seen
        return self.max_seen

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations; None when empty."""
        return self.total / self.n if self.n else None

    def to_json_dict(self) -> dict:
        """JSON form: counts per bucket plus the headline percentiles."""
        return {
            "n": self.n,
            "mean": self.mean,
            "max": self.max_seen if self.n else None,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds + [None], self.counts)
            ],
        }


class ServiceMetrics:
    """All counters, gauges and histograms of one service instance.

    Counter names the service increments (all monotonic):

    ``requests_submitted``, ``requests_completed``, ``requests_failed``,
    ``requests_invalid``, ``requests_rejected``, ``requests_timed_out``,
    ``cache_hits``, ``dedup_hits``, ``simulations_executed``,
    ``batches_dispatched``, ``batch_retries``, ``batch_failures``,
    ``worker_restarts``.

    Thread-safe: the worker tier's executor callbacks and the asyncio
    loop may touch it from different threads.
    """

    def __init__(self) -> None:
        """Create an empty metrics registry."""
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self.latency = Histogram(latency_bounds())
        self.batch_occupancy = Histogram(list(range(1, 33)))

    def inc(self, name: str, delta: int = 1) -> None:
        """Increment counter *name* by *delta*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        with self._lock:
            self._gauges[name] = float(value)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge *name*, or None when never set."""
        with self._lock:
            return self._gauges.get(name)

    def observe_latency(self, seconds: float) -> None:
        """Record one request latency."""
        with self._lock:
            self.latency.observe(seconds)

    def observe_batch(self, occupancy: int) -> None:
        """Record one dispatched batch's occupancy."""
        with self._lock:
            self.batch_occupancy.observe(occupancy)

    def snapshot(self) -> dict:
        """The whole registry as a JSON-ready dict (stable key order)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    "latency_s": self.latency.to_json_dict(),
                    "batch_occupancy": self.batch_occupancy.to_json_dict(),
                },
            }
