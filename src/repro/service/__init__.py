"""Simulation-as-a-service: the serving layer over the SUIT simulator.

Fleet-scale undervolting needs large numbers of what-if queries — which
chip, which workload, which strategy, how deep an offset — answered
cheaply and concurrently.  This package turns the one-shot simulator
into a service:

* :class:`~repro.service.request.SimRequest` /
  :class:`~repro.service.request.SimResponse` — the canonicalized
  request/response model (identity excludes scheduling hints, so equal
  questions share one answer).
* :class:`~repro.service.server.SimulationService` — the asyncio job
  server: result-cache fast path, in-flight dedup, deadline-aware
  priority scheduling with bounded-queue admission control, micro-
  batching onto a sharded process-pool worker tier, bounded retries on
  worker crashes, per-request timeouts and graceful drain.
* :class:`~repro.service.client.ServiceClient` — pipelined JSON-lines
  TCP client for ``python -m repro serve``.
* :class:`~repro.service.metrics.ServiceMetrics` — counters, gauges and
  latency/occupancy histograms, exported as JSON.

See ``docs/service.md`` for the architecture and request lifecycle.
"""

from repro.service.batcher import Batch, MicroBatcher
from repro.service.client import ServiceClient, request_simulations
from repro.service.metrics import Histogram, ServiceMetrics
from repro.service.request import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    PRIORITY_NORMAL,
    InvalidRequestError,
    SimRequest,
    SimResponse,
)
from repro.service.scheduler import (
    AdmissionError,
    DeadlineScheduler,
    ScheduledEntry,
)
from repro.service.server import ServiceConfig, SimulationService, start_tcp_server
from repro.service.workers import BatchExecutionError, ShardedWorkerTier

__all__ = [
    "AdmissionError",
    "Batch",
    "BatchExecutionError",
    "DeadlineScheduler",
    "Histogram",
    "InvalidRequestError",
    "MicroBatcher",
    "PRIORITY_BULK",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_NORMAL",
    "ScheduledEntry",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardedWorkerTier",
    "SimRequest",
    "SimResponse",
    "SimulationService",
    "request_simulations",
    "start_tcp_server",
]
