"""The sharded worker tier: where simulations actually execute.

Shards are keyed by the request's ``shard_key`` (CPU model + strategy)
so one worker pool repeatedly simulates the same CPU — its synthesized
trace cache (:attr:`SuitSystem._trace_cache` via the module-level
system cache below) stays hot, which is most of a warm request's cost.

Robustness: a worker process dying (OOM-kill, segfault, the fault-
injection hook below) surfaces as ``BrokenProcessPool`` on the batch
future.  The tier recycles the broken pool and retries the batch with
exponential backoff, up to ``max_retries`` times, then raises
:class:`BatchExecutionError` so the server can fail the affected
requests explicitly instead of hanging their futures.

Fault-injection hooks (test/benchmark surface, mirroring the paper's
own fault-injection methodology):

* ``__crash__:<path>`` — if ``<path>`` does not exist, create it and
  kill the worker process with ``os._exit``; on retry the sentinel
  exists and the request completes.  Verifies transparent retry.
* ``__sleep__:<seconds>`` — hold a worker for that long; used to build
  saturation and timeout scenarios deterministically.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import threading
import time
import traceback
from concurrent.futures import BrokenExecutor, Executor, Future
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.context import TraceContext
from repro.obs.tracer import get_tracer
from repro.service.metrics import ServiceMetrics
from repro.testkit.chaos import CRASH_EXIT_CODE, inject
from repro.testkit.clock import SYSTEM_CLOCK

#: Workload-name prefixes of the fault-injection hooks.
CRASH_PREFIX = "__crash__:"
SLEEP_PREFIX = "__sleep__:"

#: Per-process cache of configured systems, keyed by the request fields
#: that define one (everything but the workload).  Keeps per-CPU trace
#: synthesis warm across the batches a shard receives.
_SYSTEM_CACHE: Dict[Tuple[str, str, float, int, int, Optional[float]],
                    object] = {}
_SYSTEM_CACHE_MAX = 16


class BatchExecutionError(RuntimeError):
    """A batch failed after exhausting its worker-crash retries."""


def _system_for(req: dict):
    """A (cached) configured :class:`~repro.core.suit.SuitSystem`.

    A request carrying ``deadline_us`` gets the vendor's default
    parameters with ``p_dl`` replaced — a distinct cache slot, since
    the deadline changes every curve-switching simulation.
    """
    from dataclasses import replace

    from repro.core.suit import SuitSystem

    deadline_us = req.get("deadline_us")
    key = (req["cpu"], req["strategy"], float(req["voltage_offset"]),
           int(req["seed"]), int(req["n_cores"]),
           None if deadline_us is None else float(deadline_us))
    system = _SYSTEM_CACHE.get(key)
    if system is None:
        if len(_SYSTEM_CACHE) >= _SYSTEM_CACHE_MAX:
            _SYSTEM_CACHE.clear()
        system = SuitSystem.for_cpu(
            req["cpu"], strategy_name=req["strategy"],
            voltage_offset=float(req["voltage_offset"]),
            n_cores=int(req["n_cores"]), seed=int(req["seed"]))
        if deadline_us is not None:
            system.params = replace(system.params,
                                    deadline_s=float(deadline_us) * 1e-6)
        _SYSTEM_CACHE[key] = system
    return system


def _simulate(req: dict) -> dict:
    """Run one request's simulation; returns the jsonified SimResult."""
    workload = req["workload"]
    if workload.startswith(CRASH_PREFIX):
        sentinel = Path(workload[len(CRASH_PREFIX):])
        if not sentinel.exists():
            sentinel.write_text("crashed once\n", encoding="utf-8")
            os._exit(3)  # simulate a hard worker death (no cleanup)
        return {"workload": workload, "crash_recovered": True}
    if workload.startswith(SLEEP_PREFIX):
        seconds = float(workload[len(SLEEP_PREFIX):])
        time.sleep(seconds)
        return {"workload": workload, "slept_s": seconds}
    from repro.core.metrics import apply_imul_tax
    from repro.runtime.serialization import jsonify
    from repro.workloads import resolve_profile

    profile = resolve_profile(workload)
    extra = req.get("imul_extra_cycles")
    if extra is None or req["strategy"] == "e":
        result = _system_for(req).run_profile(profile)
    else:
        result = _system_for(req).run_profile(profile, harden_imul=False)
        result = apply_imul_tax(result, profile, int(extra))
    payload = jsonify(result)
    assert isinstance(payload, dict)
    return payload


def _worker_name() -> str:
    """The executing worker's identity: the pool process's name, or the
    pool thread's name when running in the thread tier (where every
    "process" is MainProcess and the thread is the useful label)."""
    name = multiprocessing.current_process().name
    if name == "MainProcess":
        return threading.current_thread().name
    return name


def execute_request(req: dict) -> dict:
    """Execute one request dict; never raises (failures become outcomes).

    Returns an outcome dict: ``{"status", "payload", "error",
    "wall_time_s", "worker"}`` — the same shape the engine's pool
    workers return, so the server can treat both uniformly.

    When the process-wide tracer is recording and the request carries a
    ``trace_id``, the execution is recorded as a ``worker.execute``
    span parented on the dispatcher's span, and the outcome is marked
    ``span_recorded`` so the server does not synthesize a duplicate.
    (Process-pool workers have their own disabled tracer, so there the
    mark stays absent and the server synthesizes the span instead.)
    """
    start = time.perf_counter()
    worker = _worker_name()
    try:
        inject("workers.request", workload=req.get("workload"))
        payload: Optional[dict] = _simulate(req)
        status, error = "ok", None
    except BaseException:  # noqa: BLE001 - the traceback is the answer
        payload, status = None, "failed"
        error = traceback.format_exc()
    wall = time.perf_counter() - start
    outcome = {"status": status, "payload": payload, "error": error,
               "wall_time_s": wall, "worker": worker}
    tracer = get_tracer()
    if tracer.enabled and req.get("trace_id"):
        ctx = TraceContext.from_request(req.get("trace_id"),
                                        req.get("parent_span"))
        tracer.complete(
            "worker.execute", "service",
            ts_s=tracer.now_s() - wall, dur_s=wall,
            args=ctx.args(proc=f"worker:{worker}", status=status,
                          workload=req.get("workload")))
        outcome["span_recorded"] = True
    return outcome


def _simulate_group(requests: List[dict]) -> List[dict]:
    """Vectorized evaluation of one same-trace request group.

    Every request shares ``(cpu, workload, seed, n_cores)``, so the
    trace is fetched once (from the layered cache — zero-copy shared
    store when active) and compiled once; each request becomes one
    :class:`~repro.core.batchsim.SweepConfig` of a single
    :meth:`~repro.core.suit.SuitSystem.run_sweep` call.  Returns the
    jsonified payloads in request order; raises on any failure (the
    caller falls back to per-request execution).
    """
    from repro.core.batchsim import SweepConfig
    from repro.core.metrics import apply_imul_tax
    from repro.runtime.serialization import jsonify
    from repro.workloads import resolve_profile

    first = requests[0]
    system = _system_for(first)
    profile = resolve_profile(first["workload"])
    configs = [SweepConfig(strategy=req["strategy"],
                           voltage_offset=float(req["voltage_offset"]),
                           seed=int(req["seed"]),
                           harden_imul=req.get("imul_extra_cycles") is None)
               for req in requests]
    payloads = []
    for req, result in zip(requests, system.run_sweep(profile, configs)):
        extra = req.get("imul_extra_cycles")
        if extra is not None and req["strategy"] != "e":
            result = apply_imul_tax(result, profile, int(extra))
        payload = jsonify(result)
        assert isinstance(payload, dict)
        payloads.append(payload)
    return payloads


def _group_key(req: dict) -> Optional[tuple]:
    """Trace-sharing identity of *req*, or None when it must run alone.

    Requests agreeing on this key replay the same synthesized trace
    (strategy and voltage offset only steer the simulation, not the
    trace), so they can share one compiled episode.  A custom
    ``deadline_us`` splits the group — a sweep call carries one
    parameter set — while ``imul_extra_cycles`` does not: the hardening
    tax is applied per config after the shared replay.  Fault-injection
    hooks and malformed requests are excluded — they take the
    per-request path, whose error isolation is the answer for them.
    """
    workload = req.get("workload")
    if (not isinstance(workload, str)
            or workload.startswith((CRASH_PREFIX, SLEEP_PREFIX))):
        return None
    try:
        deadline_us = req.get("deadline_us")
        if req["strategy"] not in ("fV", "f", "V", "e"):
            return None
        return (req["cpu"], workload, int(req["seed"]), int(req["n_cores"]),
                None if deadline_us is None else float(deadline_us))
    except (KeyError, TypeError, ValueError):
        return None


def execute_batch(requests: List[dict]) -> List[dict]:
    """Execute a batch of request dicts in submission order.

    Runs inside a pool worker.  Requests sharing a trace — same
    ``(cpu, workload, seed, n_cores, deadline_us)`` — are dispatched as **one**
    vectorized sweep over the shared compiled episode
    (:mod:`repro.core.batchsim`) instead of simulating each from
    scratch; the trace arrays are never serialized per request.  If a
    group fails, its members are retried individually through
    :func:`execute_request`, whose per-request failure isolation means
    one bad request cannot poison its batch siblings (a hard process
    death, of course, still can — that is what the tier-level retry
    handles).
    """
    inject("workers.batch", size=len(requests))
    outcomes: List[Optional[dict]] = [None] * len(requests)
    groups: Dict[tuple, List[int]] = {}
    for i, req in enumerate(requests):
        key = _group_key(req)
        if key is None:
            outcomes[i] = execute_request(req)
        else:
            groups.setdefault(key, []).append(i)
    for members in groups.values():
        start = time.perf_counter()
        worker = _worker_name()
        try:
            payloads = _simulate_group([requests[i] for i in members])
        except BaseException:  # noqa: BLE001 - fall back to isolation
            for i in members:
                outcomes[i] = execute_request(requests[i])
            continue
        wall = time.perf_counter() - start
        for i, payload in zip(members, payloads):
            outcomes[i] = {"status": "ok", "payload": payload,
                           "error": None, "wall_time_s": wall,
                           "worker": worker, "vectorized": True,
                           "group_width": len(members)}
    return outcomes


def shard_index(shard_key: str, n_shards: int) -> int:
    """Stable shard assignment: sha256(shard_key) mod n_shards."""
    digest = hashlib.sha256(shard_key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % max(1, n_shards)


class ShardedWorkerTier:
    """A fixed set of worker pools, one per shard, with crash retries.

    Args:
        n_shards: number of independent pools; requests map to shards
            by :func:`shard_index` of their shard key.
        workers_per_shard: pool width per shard.
        use_processes: ``True`` for :class:`ProcessPoolExecutor` (real
            isolation, crash-retry works), ``False`` for threads (fast
            unit tests, no process spawn cost).
        max_retries: batch re-executions allowed after pool breakage.
        retry_backoff_s: initial backoff; doubles per retry.
        metrics: optional registry for ``worker_restarts`` counts.
        clock: time source for retry backoff (tests inject a
            :class:`~repro.testkit.clock.FakeClock`).
    """

    def __init__(self, n_shards: int = 2, workers_per_shard: int = 1,
                 use_processes: bool = True, max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 metrics: Optional[ServiceMetrics] = None,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.n_shards = n_shards
        self.workers_per_shard = workers_per_shard
        self.use_processes = use_processes
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.metrics = metrics
        self.clock = clock
        self._pools: Dict[int, Executor] = {}

    def _make_pool(self) -> Executor:
        """Create one shard's executor."""
        if self.use_processes:
            return ProcessPoolExecutor(max_workers=self.workers_per_shard)
        return ThreadPoolExecutor(max_workers=self.workers_per_shard,
                                  thread_name_prefix="repro-service")

    def _pool(self, index: int) -> Executor:
        """The (lazily created) executor of shard *index*."""
        pool = self._pools.get(index)
        if pool is None:
            pool = self._make_pool()
            self._pools[index] = pool
        return pool

    def _recycle(self, index: int) -> None:
        """Tear down and forget shard *index*'s broken pool."""
        pool = self._pools.pop(index, None)
        if pool is not None:
            pool.shutdown(wait=False)
            if self.metrics is not None:
                self.metrics.inc("worker_restarts")

    async def run_batch(self, shard_key: str, requests: List[dict],
                        timeout_s: Optional[float] = None
                        ) -> Tuple[List[dict], int]:
        """Execute *requests* on the shard owning *shard_key*.

        Returns ``(outcomes, retries_used)``.  Raises
        :class:`BatchExecutionError` when every attempt broke the pool,
        and :class:`asyncio.TimeoutError` when *timeout_s* elapses.
        """
        index = shard_index(shard_key, self.n_shards)
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            pool = self._pool(index)
            for kind in inject("workers.dispatch", shard=index,
                               size=len(requests)):
                if kind == "kill_worker" and self.use_processes:
                    # Hard-kill one pool worker right before the batch
                    # lands on it: the canonical mid-batch crash.  The
                    # thread tier has no process to kill, so the fault
                    # is a no-op there by design.
                    pool.submit(os._exit, CRASH_EXIT_CODE)
            future: Future = pool.submit(execute_batch, requests)
            try:
                outcomes = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout_s)
                return outcomes, attempt
            except asyncio.TimeoutError:
                future.cancel()
                raise
            except BrokenExecutor as exc:
                last_error = exc
                self._recycle(index)
                if attempt < self.max_retries:
                    await self.clock.sleep(
                        self.retry_backoff_s * (2 ** attempt))
        raise BatchExecutionError(
            f"batch on shard {index} ({shard_key}) failed after "
            f"{self.max_retries + 1} attempts: {last_error!r}")

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every shard's pool."""
        for pool in self._pools.values():
            pool.shutdown(wait=wait)
        self._pools.clear()
