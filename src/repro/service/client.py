"""Client for the JSON-lines TCP simulation service.

:class:`ServiceClient` keeps one connection and pipelines: every
message carries a client-side ``id``, a background reader task routes
the (possibly out-of-order) responses back to their waiters, so many
requests can be in flight on a single connection.

.. code-block:: python

    client = await ServiceClient.connect("127.0.0.1", 8642)
    response = await client.submit(SimRequest("C", "557.xz"))
    snapshot = await client.metrics()
    await client.close()

For scripts that don't want an event loop,
:func:`request_simulations` wraps connect/submit-all/close in one
synchronous call.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional, Sequence, Union

from repro.service.request import SimRequest, SimResponse


class ServiceClient:
    """One pipelined connection to a running simulation service.

    Build instances with :meth:`connect`; the constructor only wires
    already-opened streams.
    """

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter") -> None:
        """Wrap an open (reader, writer) stream pair."""
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 8642) -> "ServiceClient":
        """Open a connection to the service at *host*:*port*."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        """Route incoming lines to their waiting request futures."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("service connection closed"))
            self._pending.clear()

    async def _roundtrip(self, message: dict) -> dict:
        """Send one message and await its id-matched reply."""
        msg_id = next(self._ids)
        message["id"] = msg_id
        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
        await self._writer.drain()
        return await future

    async def submit(self, request: Union[SimRequest, dict]) -> SimResponse:
        """Submit one request and await its response."""
        if isinstance(request, dict):
            request = SimRequest.from_dict(request)
        reply = await self._roundtrip(
            {"op": "submit", "request": request.to_dict()})
        if reply.get("op") == "error":
            raise ValueError(reply.get("error", "protocol error"))
        return SimResponse.from_dict(reply)

    async def submit_many(self, requests: Sequence[Union[SimRequest, dict]]
                          ) -> List[SimResponse]:
        """Pipeline *requests* concurrently; responses in request order."""
        return list(await asyncio.gather(
            *(self.submit(request) for request in requests)))

    async def metrics(self) -> dict:
        """Fetch the service's metrics snapshot."""
        reply = await self._roundtrip({"op": "metrics"})
        return reply.get("metrics", {})

    async def metrics_text(self) -> str:
        """Fetch the service's metrics in Prometheus text format."""
        reply = await self._roundtrip({"op": "metrics",
                                       "format": "prometheus"})
        return reply.get("text", "")

    async def trace(self) -> dict:
        """Fetch the service-side tracer's recorded events.

        Returns ``{"enabled": bool, "events": [chrome-trace-event, ...]}``
        (empty when the service runs with tracing off).
        """
        reply = await self._roundtrip({"op": "trace"})
        return {"enabled": reply.get("enabled", False),
                "events": reply.get("events", [])}

    async def ping(self) -> dict:
        """Liveness probe; returns the pong message (with version)."""
        return await self._roundtrip({"op": "ping"})

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        try:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        finally:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass


def request_simulations(requests: Sequence[Union[SimRequest, dict]],
                        host: str = "127.0.0.1", port: int = 8642,
                        timeout_s: Optional[float] = None
                        ) -> List[SimResponse]:
    """Synchronous convenience: connect, pipeline *requests*, close.

    Args:
        requests: the requests (SimRequest objects or wire dicts).
        host: service host.
        port: service port.
        timeout_s: overall bound on the whole exchange.

    Returns:
        Responses in request order.
    """
    async def _run() -> List[SimResponse]:
        client = await ServiceClient.connect(host, port)
        try:
            work = client.submit_many(requests)
            if timeout_s is not None:
                return await asyncio.wait_for(work, timeout_s)
            return await work
        finally:
            await client.close()

    return asyncio.run(_run())
