"""Client for the JSON-lines TCP simulation service.

:class:`ServiceClient` keeps one connection and pipelines: every
message carries a client-side ``id``, a background reader task routes
the (possibly out-of-order) responses back to their waiters, so many
requests can be in flight on a single connection.

.. code-block:: python

    client = await ServiceClient.connect("127.0.0.1", 8642)
    response = await client.submit(SimRequest("C", "557.xz"))
    snapshot = await client.metrics()
    await client.close()

**Reconnect hardening**: a connection that dies mid-exchange (peer
reset, EOF, a fleet node crashing under load) is transparently
re-opened **once** and the affected message resent — for idempotent
verbs only.  Every current verb qualifies: simulations are pure
functions of the canonical request (resending one can at worst hit
the node's cache or in-flight dedup), and metrics/trace/ping/health
are reads.  A resend that fails again, or a verb marked
non-idempotent, surfaces the original ``ConnectionError`` to the
caller — the fleet gateway turns that into a reroute.

For scripts that don't want an event loop,
:func:`request_simulations` wraps connect/submit-all/close in one
synchronous call.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional, Sequence, Union

from repro.service.request import SimRequest, SimResponse


class ServiceClient:
    """One pipelined connection to a running simulation service.

    Build instances with :meth:`connect`; the constructor only wires
    already-opened streams (and without the *host*/*port* used to open
    them, the reconnect path stays disabled).
    """

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter",
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        """Wrap an open (reader, writer) stream pair."""
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._generation = 0
        self._reconnect_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 8642) -> "ServiceClient":
        """Open a connection to the service at *host*:*port*."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port)

    async def _read_loop(self) -> None:
        """Route incoming lines to their waiting request futures."""
        try:
            while True:
                try:
                    line = await self._reader.readline()
                except (ConnectionError, OSError):
                    break  # reset mid-read: same as EOF for the waiters
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("service connection closed"))
            self._pending.clear()

    async def _roundtrip_once(self, message: dict) -> dict:
        """Send one message and await its id-matched reply."""
        if self._reader_task.done():
            # The peer closed on us with a clean EOF: the transport
            # raises nothing on write, so without this check the
            # message would go into the void and wait forever.
            raise ConnectionError("service connection closed")
        msg_id = next(self._ids)
        message["id"] = msg_id
        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        try:
            self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
            await self._writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(msg_id, None)
            raise
        return await future

    async def _roundtrip(self, message: dict,
                         idempotent: bool = True) -> dict:
        """One exchange, with a single transparent reconnect+resend.

        The resend happens only for *idempotent* messages on clients
        that know their endpoint (built via :meth:`connect`); anything
        else propagates the original connection error.
        """
        generation = self._generation
        try:
            return await self._roundtrip_once(dict(message))
        except (ConnectionError, OSError):
            if not idempotent or self._host is None or self._closed:
                raise
            await self._reconnect(generation)
            return await self._roundtrip_once(dict(message))

    async def _reconnect(self, seen_generation: int) -> None:
        """Replace the dead connection; serialized and deduplicated.

        Concurrent in-flight messages all fail together when a
        connection dies — the first one through the lock reconnects,
        the rest observe the bumped generation and just resend on the
        new streams.  The generation bumps only on success, so a
        failed reconnect (node really gone) lets the next waiter try
        again — and fail fast with the real connection error.
        """
        assert self._host is not None and self._port is not None
        async with self._reconnect_lock:
            if self._generation != seen_generation or self._closed:
                return  # already reconnected (or shut down) behind us
            # Tear the old connection fully down first: the old read
            # loop must fail its pending futures and stop before the
            # new loop starts, or the two would race on _pending.
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            try:
                self._writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
            reader, writer = await asyncio.open_connection(
                self._host, self._port)
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop())
            self._generation += 1

    async def submit(self, request: Union[SimRequest, dict]) -> SimResponse:
        """Submit one request and await its response.

        Idempotent by construction — a simulation is a pure function
        of its canonical request — so it rides the reconnect path.
        """
        if isinstance(request, dict):
            request = SimRequest.from_dict(request)
        reply = await self._roundtrip(
            {"op": "submit", "request": request.to_dict()})
        if reply.get("op") == "error":
            raise ValueError(reply.get("error", "protocol error"))
        return SimResponse.from_dict(reply)

    async def submit_many(self, requests: Sequence[Union[SimRequest, dict]]
                          ) -> List[SimResponse]:
        """Pipeline *requests* concurrently; responses in request order."""
        return list(await asyncio.gather(
            *(self.submit(request) for request in requests)))

    async def metrics(self) -> dict:
        """Fetch the service's metrics snapshot."""
        reply = await self._roundtrip({"op": "metrics"})
        return reply.get("metrics", {})

    async def metrics_text(self) -> str:
        """Fetch the service's metrics in Prometheus text format."""
        reply = await self._roundtrip({"op": "metrics",
                                       "format": "prometheus"})
        return reply.get("text", "")

    async def trace(self) -> dict:
        """Fetch the service-side tracer's recorded events.

        Returns ``{"enabled", "events", "proc", "origin_unix_s",
        "tracer_id", "flight"}`` — the origin/tracer identity is what
        :func:`~repro.obs.context.merge_process_traces` needs to rebase
        this process's events onto a shared clock, and ``flight`` is
        the node's flight-recorder exemplars.  Events are empty when
        the service runs with tracing off.
        """
        reply = await self._roundtrip({"op": "trace"})
        return {"enabled": reply.get("enabled", False),
                "events": reply.get("events", []),
                "proc": reply.get("proc"),
                "origin_unix_s": reply.get("origin_unix_s"),
                "tracer_id": reply.get("tracer_id"),
                "flight": reply.get("flight")}

    async def ping(self) -> dict:
        """Liveness probe; returns the pong message (with version)."""
        return await self._roundtrip({"op": "ping"})

    async def health(self) -> dict:
        """The service's health verb: admission state, queue depth,
        in-flight count — the cheap signals supervisors and
        autoscalers poll."""
        return await self._roundtrip({"op": "health"})

    async def drain(self) -> dict:
        """Ask the service to drain: stop admitting, finish accepted
        work, shut the worker tier down.  Returns when the drain
        completed.  **Not idempotent-retried**: a resent drain against
        a restarted node would stop the replacement too.
        """
        return await self._roundtrip({"op": "drain"}, idempotent=False)

    async def fleet_status(self) -> dict:
        """The fleet control-plane view (gateway connections only)."""
        reply = await self._roundtrip({"op": "status"})
        if reply.get("op") == "error":
            raise ValueError(reply.get("error", "not a fleet gateway"))
        return reply.get("fleet", {})

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._closed = True
        try:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        finally:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass


def request_simulations(requests: Sequence[Union[SimRequest, dict]],
                        host: str = "127.0.0.1", port: int = 8642,
                        timeout_s: Optional[float] = None
                        ) -> List[SimResponse]:
    """Synchronous convenience: connect, pipeline *requests*, close.

    Args:
        requests: the requests (SimRequest objects or wire dicts).
        host: service host.
        port: service port.
        timeout_s: overall bound on the whole exchange.

    Returns:
        Responses in request order.
    """
    async def _run() -> List[SimResponse]:
        client = await ServiceClient.connect(host, port)
        try:
            work = client.submit_many(requests)
            if timeout_s is not None:
                return await asyncio.wait_for(work, timeout_s)
            return await work
        finally:
            await client.close()

    return asyncio.run(_run())
