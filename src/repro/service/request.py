"""The service request/response model.

A :class:`SimRequest` names one what-if simulation — chip, workload,
operating strategy, undervolt offset, seed — plus scheduling hints
(priority, deadline).  Its *canonical identity* deliberately excludes
the scheduling hints: two clients asking the same question at different
priorities still share one simulation (in-flight dedup) and one cache
entry.

A :class:`SimResponse` carries the outcome: the serialized
:class:`~repro.core.metrics.SimResult` payload on success, or a
status/error pair (``failed`` / ``rejected`` / ``timeout``) with enough
context (``retry_after_s``, ``retries``) for the client to react.

Both sides serialize to plain JSON dicts (:meth:`SimRequest.to_dict`,
:meth:`SimResponse.to_dict`) — the wire format of the JSON-lines TCP
protocol and the payload format of the result cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

#: Scheduling priorities (lower sorts first).  Interactive requests
#: bypass the micro-batcher's accumulation window entirely.
PRIORITY_INTERACTIVE = 0
PRIORITY_NORMAL = 5
PRIORITY_BULK = 10

#: Operating strategies the service accepts (matches the CLI).
KNOWN_STRATEGIES = ("fV", "f", "V", "e")

#: Cache-key domain tag; bump when the canonical request layout changes.
REQUEST_SCHEMA_VERSION = 1

#: Response statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"


class InvalidRequestError(ValueError):
    """Raised when a :class:`SimRequest` fails static validation."""


@dataclass(frozen=True)
class SimRequest:
    """One simulation query: what to run, and how urgently.

    Attributes:
        cpu: CPU short name ("A", "B", "C", "i5").
        workload: workload name or unambiguous fragment ("557.xz",
            "nginx"); resolved by :func:`repro.workloads.resolve_profile`
            in the worker.
        strategy: operating strategy ("fV", "f", "V", "e").
        voltage_offset: efficient-curve offset in volts (<= 0).
        seed: RNG seed for trace synthesis and sampled delays.
        n_cores: active cores sharing the workload.
        deadline_us: SUIT deadline parameter ``p_dl`` in microseconds;
            ``None`` uses the vendor's Table 7 default.  Part of the
            canonical identity when set (a different deadline is a
            different simulation) but omitted when ``None`` so legacy
            requests keep their exact cache keys and wire frames.
        imul_extra_cycles: extra IMUL pipeline cycles over the
            unhardened 3-cycle baseline; ``None`` uses the simulator's
            built-in +1-cycle hardening, ``0`` disables hardening.
            Identity-bearing when set, omitted when ``None`` (same
            compatibility rule as ``deadline_us``).  Ignored by the
            ``e`` strategy, whose closed-form estimate always carries
            the paper's +1-cycle hardening.
        priority: scheduling priority; lower runs first
            (:data:`PRIORITY_INTERACTIVE` preempts :data:`PRIORITY_BULK`).
        deadline_s: soft deadline in seconds; orders requests within a
            priority band and bounds how long the submitter waits
            (``None`` falls back to the service default timeout).
        trace_id: distributed-trace identity (see
            :mod:`repro.obs.context`); minted by the first traced tier
            when absent, forwarded verbatim through every hop.
        parent_span: the span id of the tier that dispatched this
            request — what the receiving tier's span parents on.
    """

    cpu: str
    workload: str
    strategy: str = "fV"
    voltage_offset: float = -0.097
    seed: int = 0
    n_cores: int = 1
    priority: int = PRIORITY_NORMAL
    deadline_s: Optional[float] = None
    trace_id: Optional[str] = None
    parent_span: Optional[str] = None
    deadline_us: Optional[float] = None
    imul_extra_cycles: Optional[int] = None

    def validate(self) -> None:
        """Check the statically checkable fields; raises :class:`InvalidRequestError`."""
        if not self.cpu or not isinstance(self.cpu, str):
            raise InvalidRequestError("cpu must be a non-empty string")
        if not self.workload or not isinstance(self.workload, str):
            raise InvalidRequestError("workload must be a non-empty string")
        if self.strategy not in KNOWN_STRATEGIES:
            raise InvalidRequestError(
                f"unknown strategy {self.strategy!r}; "
                f"know {', '.join(KNOWN_STRATEGIES)}")
        if not isinstance(self.voltage_offset, (int, float)) \
                or self.voltage_offset > 0:
            raise InvalidRequestError(
                "voltage_offset is the efficient-curve offset in volts "
                "and must be <= 0")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise InvalidRequestError("seed must be a non-negative integer")
        if not isinstance(self.n_cores, int) or self.n_cores < 1:
            raise InvalidRequestError("n_cores must be a positive integer")
        if not isinstance(self.priority, int):
            raise InvalidRequestError("priority must be an integer")
        if self.deadline_s is not None and (
                not isinstance(self.deadline_s, (int, float))
                or self.deadline_s <= 0):
            raise InvalidRequestError("deadline_s must be positive when set")
        for name in ("trace_id", "parent_span"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, str)
                                      or not value):
                raise InvalidRequestError(
                    f"{name} must be a non-empty string when set")
        if self.deadline_us is not None and (
                not isinstance(self.deadline_us, (int, float))
                or isinstance(self.deadline_us, bool)
                or self.deadline_us <= 0):
            raise InvalidRequestError("deadline_us must be positive when set")
        if self.imul_extra_cycles is not None and (
                not isinstance(self.imul_extra_cycles, int)
                or isinstance(self.imul_extra_cycles, bool)
                or self.imul_extra_cycles < 0):
            raise InvalidRequestError(
                "imul_extra_cycles must be a non-negative integer when set")

    @property
    def shard_key(self) -> str:
        """Batching-compatibility key: requests sharing it may share a batch.

        Same CPU and strategy batch together (different workloads,
        offsets and seeds are fine); keying worker shards on the CPU
        model keeps per-CPU trace caches hot in the worker processes.
        """
        return f"{self.cpu}/{self.strategy}"

    def canonical_dict(self) -> dict:
        """The identity-defining fields, as a plain dict.

        Excludes ``priority`` / ``deadline_s`` (scheduling hints) and
        ``trace_id`` / ``parent_span`` (observability identity): none
        of them change the answer, so they must not split the
        dedup/cache identity.  ``deadline_us`` and ``imul_extra_cycles``
        *do* change the answer, so they join the identity — but only
        when set, keeping every pre-existing request's key (and wire
        frame) byte-identical.
        """
        entry = {
            "cpu": self.cpu,
            "workload": self.workload,
            "strategy": self.strategy,
            "voltage_offset": float(self.voltage_offset),
            "seed": int(self.seed),
            "n_cores": int(self.n_cores),
        }
        if self.deadline_us is not None:
            entry["deadline_us"] = float(self.deadline_us)
        if self.imul_extra_cycles is not None:
            entry["imul_extra_cycles"] = int(self.imul_extra_cycles)
        return entry

    def canonical_key(self) -> str:
        """SHA-256 content address of the canonical identity (64 hex chars)."""
        material = {"schema": REQUEST_SCHEMA_VERSION,
                    "request": self.canonical_dict()}
        canonical = json.dumps(material, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """Full wire form: scheduling hints included, trace context
        included only when set (an untraced request's frame is
        byte-identical to the pre-tracing protocol)."""
        entry = self.canonical_dict()
        entry["priority"] = int(self.priority)
        entry["deadline_s"] = (None if self.deadline_s is None
                               else float(self.deadline_s))
        if self.trace_id is not None:
            entry["trace_id"] = self.trace_id
        if self.parent_span is not None:
            entry["parent_span"] = self.parent_span
        return entry

    @classmethod
    def from_dict(cls, payload: dict) -> "SimRequest":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise InvalidRequestError("request payload must be an object")
        known = {"cpu", "workload", "strategy", "voltage_offset", "seed",
                 "n_cores", "priority", "deadline_s", "trace_id",
                 "parent_span", "deadline_us", "imul_extra_cycles"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidRequestError(
                f"unknown request field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise InvalidRequestError(str(exc)) from exc


@dataclass
class SimResponse:
    """The service's answer to one :class:`SimRequest`.

    Attributes:
        request: the request this answers (echoed back verbatim).
        status: "ok", "failed", "rejected" or "timeout".
        payload: the jsonified :class:`~repro.core.metrics.SimResult`
            (None unless ok).
        error: human-readable failure reason (None when ok).
        source: where the answer came from: "computed", "cache" or
            "dedup" (folded onto another in-flight request).
        latency_s: submit-to-response wall time observed by the service.
        retries: worker-crash retries spent computing this answer.
        retry_after_s: when rejected for backpressure, the suggested
            client back-off before resubmitting.
    """

    request: SimRequest
    status: str
    payload: Optional[dict] = None
    error: Optional[str] = None
    source: str = "computed"
    latency_s: float = 0.0
    retries: int = 0
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True when the simulation completed and ``payload`` is usable."""
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        """Wire form (JSON-lines TCP protocol)."""
        return {
            "request": self.request.to_dict(),
            "status": self.status,
            "payload": self.payload,
            "error": self.error,
            "source": self.source,
            "latency_s": self.latency_s,
            "retries": self.retries,
            "retry_after_s": self.retry_after_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimResponse":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            request=SimRequest.from_dict(payload["request"]),
            status=payload["status"],
            payload=payload.get("payload"),
            error=payload.get("error"),
            source=payload.get("source", "computed"),
            latency_s=float(payload.get("latency_s", 0.0)),
            retries=int(payload.get("retries", 0)),
            retry_after_s=payload.get("retry_after_s"),
        )
