"""Deadline-aware priority scheduling with bounded-queue admission.

The scheduler is the service's single waiting room.  Entries are
ordered by ``(priority, absolute deadline, arrival sequence)`` — an
intentional echo of SUIT's own deadline timer: just as the OS returns
the core to the efficient curve when the trap deadline expires, the
service promotes a request as its deadline approaches, and interactive
requests (lower priority value) preempt bulk sweeps outright.

Admission is bounded: when ``max_depth`` requests are already queued,
:meth:`DeadlineScheduler.push` raises :class:`AdmissionError` carrying
a suggested ``retry_after_s`` — backpressure instead of unbounded
queueing, so a saturated service degrades into explicit rejections
rather than silently growing latency.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.service.request import SimRequest
from repro.testkit.clock import SYSTEM_CLOCK


class AdmissionError(RuntimeError):
    """Raised when the bounded queue is full (backpressure).

    Attributes:
        depth: queue depth at rejection time.
        retry_after_s: suggested client back-off before resubmitting.
    """

    def __init__(self, depth: int, retry_after_s: float) -> None:
        """Build the error with the rejection context."""
        super().__init__(
            f"admission queue full ({depth} queued); "
            f"retry after {retry_after_s:.3f}s")
        self.depth = depth
        self.retry_after_s = retry_after_s


@dataclass
class ScheduledEntry:
    """One admitted request waiting for (or undergoing) execution.

    Attributes:
        request: the canonicalized request.
        future: resolved by the dispatcher with the worker outcome dict.
        key: the request's canonical identity (dedup map key).
        cache_key: result-cache address, or None when caching is off.
        enqueued_at: ``time.monotonic()`` at admission.
        due: absolute deadline (monotonic seconds; ``inf`` when none).
        span_id: the submitting tier's span id when tracing — what the
            worker-side execution span parents on.
    """

    request: SimRequest
    future: "asyncio.Future[dict]"
    key: str
    cache_key: Optional[str] = None
    enqueued_at: float = field(default_factory=time.monotonic)
    due: float = math.inf
    span_id: Optional[str] = None

    def sort_key(self, seq: int) -> Tuple[int, float, int]:
        """Heap ordering: priority band, then deadline, then FIFO."""
        return (self.request.priority, self.due, seq)


class DeadlineScheduler:
    """Bounded priority queue feeding the micro-batcher.

    Args:
        max_depth: admission bound; pushes beyond it raise
            :class:`AdmissionError`.
        retry_after_base_s: base of the suggested back-off; the hint
            scales linearly with queue depth so clients spread out.
        clock: time source (tests inject a
            :class:`~repro.testkit.clock.FakeClock`).
    """

    def __init__(self, max_depth: int = 128,
                 retry_after_base_s: float = 0.05,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.retry_after_base_s = retry_after_base_s
        self.clock = clock
        self._heap: List[Tuple[Tuple[int, float, int], ScheduledEntry]] = []
        self._seq = itertools.count()
        self._available: Optional[asyncio.Event] = None

    def _event(self) -> asyncio.Event:
        """The (lazily created) not-empty event, bound to the running loop."""
        if self._available is None:
            self._available = asyncio.Event()
        return self._available

    @property
    def depth(self) -> int:
        """Number of queued entries."""
        return len(self._heap)

    def suggest_retry_after(self) -> float:
        """Back-off hint for a rejected client, scaled by queue depth."""
        return self.retry_after_base_s * (1.0 + self.depth / self.max_depth)

    def push(self, entry: ScheduledEntry) -> None:
        """Admit *entry*, or raise :class:`AdmissionError` when full."""
        if len(self._heap) >= self.max_depth:
            raise AdmissionError(len(self._heap), self.suggest_retry_after())
        heapq.heappush(self._heap, (entry.sort_key(next(self._seq)), entry))
        self._event().set()

    async def pop(self) -> ScheduledEntry:
        """Remove and return the most urgent entry, waiting if empty."""
        while not self._heap:
            self._event().clear()
            await self._event().wait()
        _, entry = heapq.heappop(self._heap)
        if not self._heap:
            self._event().clear()
        return entry

    def take_compatible(self, shard_key: str,
                        limit: int) -> List[ScheduledEntry]:
        """Remove up to *limit* queued entries sharing *shard_key*.

        Used by the micro-batcher to fill a batch opened by a popped
        entry; returns the taken entries in scheduling order.
        """
        if limit <= 0 or not self._heap:
            return []
        taken: List[Tuple[Tuple[int, float, int], ScheduledEntry]] = []
        kept: List[Tuple[Tuple[int, float, int], ScheduledEntry]] = []
        for item in sorted(self._heap, key=lambda pair: pair[0]):
            if len(taken) < limit and item[1].request.shard_key == shard_key:
                taken.append(item)
            else:
                kept.append(item)
        if taken:
            self._heap = kept
            heapq.heapify(self._heap)
            if not self._heap:
                self._event().clear()
        return [entry for _, entry in taken]

    def drain(self) -> List[ScheduledEntry]:
        """Remove and return every queued entry (shutdown path)."""
        entries = [entry for _, entry in sorted(
            self._heap, key=lambda pair: pair[0])]
        self._heap.clear()
        self._event().clear()
        return entries


def absolute_deadline(request: SimRequest,
                      now: Optional[float] = None) -> float:
    """Monotonic absolute deadline of *request* (``inf`` when unset)."""
    if request.deadline_s is None:
        return math.inf
    base = time.monotonic() if now is None else now
    return base + float(request.deadline_s)
