"""Micro-batching: group compatible requests before dispatch.

One ProcessPool round-trip carries fixed costs (pickling, IPC, task
wake-up) that dwarf a single ~20 ms simulation; amortizing them over a
batch is where the service's throughput comes from.  The batcher pops
the most urgent entry from the :class:`~repro.service.scheduler.
DeadlineScheduler`, then fills the batch with *compatible* entries —
same CPU model and strategy (:attr:`SimRequest.shard_key`), any mix of
workloads, offsets and seeds — up to ``max_batch_size``.

If the queue cannot fill the batch immediately, the batcher waits up to
``window_s`` for companions to arrive — except when the opening entry
is interactive (priority <= ``interactive_cutoff``), which dispatches
immediately: latency beats occupancy for interactive traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.service.scheduler import DeadlineScheduler, ScheduledEntry
from repro.testkit.clock import SYSTEM_CLOCK


@dataclass
class Batch:
    """One dispatchable group of compatible requests.

    Attributes:
        shard_key: the shared compatibility key (cpu/strategy).
        entries: the scheduled entries, in scheduling order.
    """

    shard_key: str
    entries: List[ScheduledEntry]

    @property
    def occupancy(self) -> int:
        """Number of requests in the batch."""
        return len(self.entries)


class MicroBatcher:
    """Builds :class:`Batch`\\ es from a :class:`DeadlineScheduler`.

    Args:
        scheduler: the admission queue to consume.
        max_batch_size: hard cap on batch occupancy.
        window_s: how long to hold an under-full batch open waiting for
            compatible companions (0 disables accumulation).
        interactive_cutoff: entries with ``priority <= cutoff`` skip the
            accumulation window entirely.
        clock: time source driving the accumulation window (tests
            inject a :class:`~repro.testkit.clock.FakeClock` so the
            window elapses in virtual time).
    """

    def __init__(self, scheduler: DeadlineScheduler,
                 max_batch_size: int = 8, window_s: float = 0.005,
                 interactive_cutoff: int = 0,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.scheduler = scheduler
        self.max_batch_size = max_batch_size
        self.window_s = window_s
        self.interactive_cutoff = interactive_cutoff
        self.clock = clock

    async def next_batch(self) -> Batch:
        """Pop the most urgent entry and fill its batch; awaits if idle."""
        first = await self.scheduler.pop()
        entries = [first]
        entries.extend(self.scheduler.take_compatible(
            first.request.shard_key, self.max_batch_size - len(entries)))
        hold_open = (self.window_s > 0
                     and len(entries) < self.max_batch_size
                     and first.request.priority > self.interactive_cutoff)
        if hold_open:
            deadline = self.clock.monotonic() + self.window_s
            poll = max(self.window_s / 4.0, 1e-4)
            while len(entries) < self.max_batch_size:
                remaining = deadline - self.clock.monotonic()
                if remaining <= 0:
                    break
                await self.clock.sleep(min(poll, remaining))
                entries.extend(self.scheduler.take_compatible(
                    first.request.shard_key,
                    self.max_batch_size - len(entries)))
        return Batch(shard_key=first.request.shard_key, entries=entries)
