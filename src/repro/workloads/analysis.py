"""Trace analysis: gap sizes, bursts, rates (paper section 5.1).

Produces the representations behind Figs 5 and 7: for each faultable
instruction, the log10 size of the gap since the previous one, plotted
over the instruction index — bursts appear as vertical drops, idle spans
as high horizontal segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.workloads.trace import FaultableTrace


def gap_sizes(trace: FaultableTrace) -> np.ndarray:
    """Gap (instructions) preceding each event."""
    return trace.gaps()


def gap_size_timeline(trace: FaultableTrace) -> Tuple[np.ndarray, np.ndarray]:
    """(instruction_index, log10_gap) series for Fig 5/7-style plots."""
    gaps = trace.gaps()
    return trace.indices, np.log10(np.maximum(gaps, 1))


@dataclass(frozen=True)
class BurstStatistics:
    """Summary of the burst structure of a trace.

    Attributes:
        n_events: faultable executions.
        n_bursts: bursts found at the given threshold.
        mean_burst_length: mean events per burst.
        mean_intra_gap: mean instruction gap within bursts.
        median_inter_gap: median instruction gap between bursts.
        burst_instruction_fraction: fraction of all instructions covered
            by bursts (first to last event of each).
    """

    n_events: int
    n_bursts: int
    mean_burst_length: float
    mean_intra_gap: float
    median_inter_gap: float
    burst_instruction_fraction: float


def burst_statistics(trace: FaultableTrace,
                     burst_threshold: int = 1_000_000) -> BurstStatistics:
    """Segment the trace into bursts at gaps above *burst_threshold*.

    A new burst starts wherever the gap since the previous faultable
    instruction exceeds the threshold.
    """
    if burst_threshold < 1:
        raise ValueError("burst_threshold must be positive")
    gaps = trace.gaps()
    if gaps.size == 0:
        return BurstStatistics(0, 0, 0.0, 0.0, 0.0, 0.0)
    breaks = np.flatnonzero(gaps > burst_threshold)
    starts = np.concatenate([[0], breaks])
    ends = np.concatenate([breaks, [gaps.size]])  # exclusive
    nonempty = ends > starts  # a break at event 0 would create an empty burst
    starts, ends = starts[nonempty], ends[nonempty]
    lengths = ends - starts
    spans = trace.indices[ends - 1] - trace.indices[starts]
    intra = gaps.copy()
    intra[breaks] = 0
    intra_count = gaps.size - breaks.size
    inter = gaps[breaks]
    return BurstStatistics(
        n_events=int(gaps.size),
        n_bursts=int(starts.size),
        mean_burst_length=float(lengths.mean()),
        mean_intra_gap=float(intra.sum() / intra_count) if intra_count else 0.0,
        median_inter_gap=float(np.median(inter)) if inter.size else 0.0,
        burst_instruction_fraction=float(spans.sum() / trace.n_instructions),
    )


def faultable_rate(trace: FaultableTrace) -> float:
    """Faultable instructions per retired instruction."""
    return trace.faultable_rate


def instructions_per_faultable(trace: FaultableTrace) -> float:
    """Mean instructions between faultable executions (inf if none)."""
    if trace.n_events == 0:
        return float("inf")
    return trace.n_instructions / trace.n_events
