"""Workload-name resolution shared by the CLI and the service workers.

Accepts an exact profile name ("557.xz", "nginx", "vlc") or any
unambiguous fragment ("xz", "leela").  Ambiguity and unknown names
raise dedicated exceptions carrying the candidate lists, so callers can
render precise errors (the CLI lists the *matching* candidates for an
ambiguous fragment, not the whole catalogue).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec import SPEC_PROFILES


class UnknownWorkloadError(ValueError):
    """No workload matches the requested name.

    Attributes:
        name: the requested name.
        known: every resolvable workload name, sorted.
    """

    def __init__(self, name: str, known: List[str]) -> None:
        """Build the error with the full catalogue for the message."""
        super().__init__(
            f"unknown workload {name!r}; known: {', '.join(known)}")
        self.name = name
        self.known = known


class AmbiguousWorkloadError(ValueError):
    """A name fragment matches more than one workload.

    Attributes:
        name: the requested fragment.
        candidates: the matching workload names, sorted.
    """

    def __init__(self, name: str, candidates: List[str]) -> None:
        """Build the error listing only the matching candidates."""
        super().__init__(
            f"ambiguous workload {name!r}; matches: "
            f"{', '.join(candidates)}")
        self.name = name
        self.candidates = candidates


def workload_catalogue() -> Dict[str, WorkloadProfile]:
    """Every resolvable workload profile, keyed by canonical name."""
    catalogue: Dict[str, WorkloadProfile] = dict(SPEC_PROFILES)
    catalogue["nginx"] = NGINX_PROFILE
    catalogue["vlc"] = VLC_PROFILE
    return catalogue


def resolve_profile(name: str) -> WorkloadProfile:
    """Resolve *name* (exact or unambiguous fragment) to a profile.

    Raises:
        UnknownWorkloadError: nothing matches.
        AmbiguousWorkloadError: several workloads match the fragment.
    """
    catalogue = workload_catalogue()
    if name in catalogue:
        return catalogue[name]
    matches = sorted(k for k in catalogue if name in k)
    if len(matches) == 1:
        return catalogue[matches[0]]
    if matches:
        raise AmbiguousWorkloadError(name, matches)
    raise UnknownWorkloadError(name, sorted(catalogue))
