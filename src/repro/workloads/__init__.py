"""Workload traces (paper section 5.1).

The paper drives its evaluation with instruction traces of SPEC CPU2017,
Nginx and VLC recorded by a QEMU plugin: for every executed faultable
instruction, its position in the retired-instruction stream.  Here the
traces are synthesised from per-benchmark :class:`WorkloadProfile`
objects calibrated against the statistics the paper reports (faultable
instructions arrive in dense bursts separated by large gaps; per-
benchmark burst structure, IMUL densities and no-SIMD overheads).

:mod:`repro.workloads.analysis` computes the gap-size representations of
Figs 5 and 7 and summary statistics.
"""

from repro.workloads.trace import FaultableTrace
from repro.workloads.gaps import burst_positions, lognormal_gaps
from repro.workloads.profile import WorkloadProfile
from repro.workloads.generator import generate_trace
from repro.workloads.spec import (
    SPEC_PROFILES,
    spec_profile,
    all_spec_profiles,
    SPEC_INT_NAMES,
    SPEC_FP_NAMES,
)
from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE, network_profiles
from repro.workloads.resolve import (
    AmbiguousWorkloadError,
    UnknownWorkloadError,
    resolve_profile,
    workload_catalogue,
)
from repro.workloads.phases import Phase, PhasedWorkload
from repro.workloads.recorder import InstructionRecorder
from repro.workloads.programs import (
    aes_ctr_encrypt,
    ghash_tag,
    tls_record_server,
    record_tls_server_trace,
)
from repro.workloads.analysis import (
    gap_sizes,
    gap_size_timeline,
    burst_statistics,
    faultable_rate,
)

__all__ = [
    "FaultableTrace",
    "burst_positions",
    "lognormal_gaps",
    "WorkloadProfile",
    "generate_trace",
    "SPEC_PROFILES",
    "spec_profile",
    "all_spec_profiles",
    "SPEC_INT_NAMES",
    "SPEC_FP_NAMES",
    "NGINX_PROFILE",
    "VLC_PROFILE",
    "network_profiles",
    "AmbiguousWorkloadError",
    "UnknownWorkloadError",
    "resolve_profile",
    "workload_catalogue",
    "Phase",
    "PhasedWorkload",
    "InstructionRecorder",
    "aes_ctr_encrypt",
    "ghash_tag",
    "tls_record_server",
    "record_tls_server_trace",
    "gap_sizes",
    "gap_size_timeline",
    "burst_statistics",
    "faultable_rate",
]
