"""SPEC CPU2017 workload profiles (paper sections 5.1, 5.8, 6.2).

One profile per rate benchmark of SPEC CPU2017.  The calibration sources:

* ``efficient_occupancy`` — fraction of time on the efficient curve under
  the reference fV configuration.  The paper reports 72.7 % on average,
  97.1 % for 557.xz, 76.6 % for 502.gcc and 3.2 % for 520.omnetpp
  (section 6.4); the remaining benchmarks are ranked following the
  per-benchmark ordering of Fig 16.
* ``dense_gap`` — denser episodes for low-occupancy benchmarks, sized so
  instruction *emulation* reproduces the Table 6 spread (slightly
  positive for trap-sparse benchmarks, catastrophic for trap-dense ones).
* ``imul_density`` — 0.99 % for 525.x264, 0.07 % on average elsewhere
  (section 6.1).
* ``nosimd_overhead`` — Table 4 per-vendor score impacts; benchmarks the
  table omits are below the 5 % reporting threshold and get small values
  consistent with the suite means.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile

#: Default mixes of trapped opcodes by suite (Table 1 instructions seen in
#: integer vs floating-point code).
_INT_MIX: Mapping[Opcode, float] = {
    Opcode.VPCMP: 0.30, Opcode.VOR: 0.25, Opcode.VXOR: 0.20,
    Opcode.VPADDQ: 0.15, Opcode.VPMAX: 0.10,
}
_FP_MIX: Mapping[Opcode, float] = {
    Opcode.VOR: 0.25, Opcode.VXOR: 0.20, Opcode.VAND: 0.20,
    Opcode.VANDN: 0.15, Opcode.VSQRTPD: 0.10, Opcode.VPSRAD: 0.10,
}


def _dense_gap_for(occupancy: float) -> float:
    """Episode density tier: trap-heavy benchmarks have denser episodes."""
    if occupancy < 0.10:
        return 600.0
    if occupancy < 0.40:
        return 2500.0
    if occupancy < 0.60:
        return 4000.0
    if occupancy < 0.80:
        return 8000.0
    if occupancy < 0.93:
        return 15000.0
    return 25000.0


# name -> (suite, ipc, occupancy, episodes, imul_density, imul_chain,
#          nosimd_intel, nosimd_amd)
_SPEC_DATA: Dict[str, Tuple[str, float, float, int, float, float, float, float]] = {
    # --- SPECint 2017 rate ------------------------------------------------
    "500.perlbench": ("SPECint", 2.0, 0.60, 300, 0.0010, 0.10, -0.020, -0.010),
    "502.gcc":       ("SPECint", 1.2, 0.766, 420, 0.0010, 0.12, -0.010, -0.020),
    "505.mcf":       ("SPECint", 0.6, 0.95, 80, 0.0005, 0.08, -0.002, -0.010),
    "520.omnetpp":   ("SPECint", 0.8, 0.032, 16, 0.0020, 0.15, -0.005, -0.010),
    "523.xalancbmk": ("SPECint", 1.6, 0.97, 50, 0.0008, 0.08, -0.005, 0.000),
    "525.x264":      ("SPECint", 2.4, 0.87, 140, 0.0099, 0.90, 0.070, 0.220),
    "531.deepsjeng": ("SPECint", 1.7, 0.94, 70, 0.0020, 0.15, -0.010, -0.010),
    "541.leela":     ("SPECint", 1.4, 0.90, 110, 0.0015, 0.12, -0.010, -0.010),
    "548.exchange2": ("SPECint", 2.2, 0.93, 80, 0.0010, 0.10, 0.077, 0.068),
    "557.xz":        ("SPECint", 1.1, 0.971, 40, 0.0020, 0.18, -0.005, -0.010),
    # --- SPECfp 2017 rate -------------------------------------------------
    "503.bwaves":    ("SPECfp", 2.1, 0.55, 320, 0.0003, 0.05, -0.020, -0.030),
    "507.cactuBSSN": ("SPECfp", 1.8, 0.65, 280, 0.0004, 0.05, -0.040, -0.045),
    "508.namd":      ("SPECfp", 2.3, 0.75, 220, 0.0004, 0.05, -0.220, -0.350),
    "510.parest":    ("SPECfp", 1.9, 0.85, 160, 0.0005, 0.06, -0.030, -0.040),
    "511.povray":    ("SPECfp", 2.0, 0.70, 240, 0.0006, 0.08, -0.020, -0.030),
    "519.lbm":       ("SPECfp", 1.3, 0.92, 90, 0.0002, 0.04, -0.010, -0.020),
    "521.wrf":       ("SPECfp", 1.6, 0.08, 20, 0.0004, 0.05, -0.014, -0.053),
    "526.blender":   ("SPECfp", 1.9, 0.72, 230, 0.0006, 0.08, -0.045, -0.040),
    "527.cam4":      ("SPECfp", 1.7, 0.35, 300, 0.0005, 0.06, -0.030, -0.040),
    "538.imagick":   ("SPECfp", 2.5, 0.88, 130, 0.0007, 0.10, -0.120, -0.090),
    "544.nab":       ("SPECfp", 2.0, 0.45, 330, 0.0005, 0.06, -0.020, -0.030),
    "549.fotonik3d": ("SPECfp", 1.8, 0.96, 60, 0.0003, 0.04, -0.010, -0.020),
    "554.roms":      ("SPECfp", 1.9, 0.50, 310, 0.0004, 0.05, -0.033, -0.190),
}

#: Instruction budget per synthesised run.  Dense benchmarks are scaled
#: shorter to bound event counts; everything downstream works in ratios.
_DEFAULT_INSTRUCTIONS = 4_000_000_000
_DENSE_INSTRUCTIONS = 2_000_000_000

SPEC_INT_NAMES: List[str] = [n for n, d in _SPEC_DATA.items() if d[0] == "SPECint"]
SPEC_FP_NAMES: List[str] = [n for n, d in _SPEC_DATA.items() if d[0] == "SPECfp"]


def _build(name: str) -> WorkloadProfile:
    suite, ipc, occ, episodes, imul, chain, ns_intel, ns_amd = _SPEC_DATA[name]
    n_instr = _DENSE_INSTRUCTIONS if occ < 0.40 else _DEFAULT_INSTRUCTIONS
    return WorkloadProfile(
        name=name,
        suite=suite,
        n_instructions=n_instr,
        ipc=ipc,
        efficient_occupancy=occ,
        n_episodes=episodes,
        dense_gap=_dense_gap_for(occ),
        sparse_events=12,
        imul_density=imul,
        imul_chain_fraction=chain,
        nosimd_overhead={"intel": ns_intel, "amd": ns_amd},
        opcode_mix=_INT_MIX if suite == "SPECint" else _FP_MIX,
    )


#: All SPEC CPU2017 profiles by benchmark name.
SPEC_PROFILES: Dict[str, WorkloadProfile] = {name: _build(name) for name in _SPEC_DATA}


def spec_profile(name: str) -> WorkloadProfile:
    """Profile of one SPEC benchmark (raises KeyError for unknown names)."""
    return SPEC_PROFILES[name]


def all_spec_profiles() -> List[WorkloadProfile]:
    """All 23 SPEC CPU2017 profiles, integer suite first."""
    return [SPEC_PROFILES[n] for n in SPEC_INT_NAMES + SPEC_FP_NAMES]
