"""Layered trace cache: per-process LRU over the shared trace store.

One call — :func:`cached_trace` — serves every consumer of synthesised
traces (experiments, ``SuitSystem``, the service worker tier).  Lookup
order:

1. **L1, per-process LRU** (bounded, thread-safe): repeated use within
   a process is a dictionary hit.
2. **L2, shared store** (:mod:`repro.workloads.tracestore`), when a
   store is active via ``REPRO_TRACE_STORE``: the trace arrays are
   attached as read-only views of another process's pages — zero-copy.
3. **Synthesis**: ``generate_trace`` builds the trace, which is then
   published to the active store (if any) so sibling workers attach
   instead of re-synthesising, and cached in L1.

The key covers the profile's full field ``repr`` plus the seed, so two
distinct profiles sharing a name can never alias each other's traces;
``generate_trace`` is pure, which is what makes every layer safe.

This module supersedes the cache that lived in
``repro.experiments.common`` (which now re-exports it unchanged).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from repro.obs.registry import get_registry
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace
from repro.workloads.tracestore import active_store

#: Upper bound on retained traces; oldest-used entries are evicted first.
#: Sized to hold the full SPEC suite plus the network workloads at two
#: seeds (23 SPEC + nginx + vlc = 25 per seed) without thrashing.
TRACE_CACHE_MAX_ENTRIES = 56

_TRACE_CACHE: "OrderedDict[Tuple[str, int], FaultableTrace]" = OrderedDict()
_TRACE_CACHE_LOCK = threading.Lock()


def _trace_cache_key(profile: WorkloadProfile, seed: int) -> Tuple[str, int]:
    """Value-based cache key for ``(profile, seed)``.

    Keyed on the profile's full field repr rather than its name: two
    distinct profiles that happen to share a name (common in tests and
    ad-hoc sweeps) must not alias each other's traces.
    """
    return (repr(profile), int(seed))


def store_key(profile: WorkloadProfile, seed: int) -> str:
    """The shared-store key for ``(profile, seed)``."""
    return f"{int(seed)}\x1f{repr(profile)}"


def _cache_put(key: Tuple[str, int], trace: FaultableTrace) -> FaultableTrace:
    with _TRACE_CACHE_LOCK:
        existing = _TRACE_CACHE.get(key)
        if existing is not None:
            _TRACE_CACHE.move_to_end(key)
            return existing
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > TRACE_CACHE_MAX_ENTRIES:
            _TRACE_CACHE.popitem(last=False)
    return trace


def cached_trace(profile: WorkloadProfile, seed: int = 0) -> FaultableTrace:
    """The synthesised trace for ``(profile, seed)``, served from the
    nearest layer (process LRU, shared store, synthesis).

    The cache is bounded (:data:`TRACE_CACHE_MAX_ENTRIES`, LRU
    eviction) and thread-safe.  L1 is deliberately **per process**;
    with an active shared store the trace *arrays* are nevertheless
    shared machine-wide, because the L1 entry is just a view of the
    store's pages.  That cannot diverge results — ``generate_trace``
    is a pure function of ``(profile, seed)`` and the key covers every
    profile field.
    """
    registry = get_registry()
    hits = registry.counter("trace_cache_hits_total",
                            "synthesised traces served from cache")
    misses = registry.counter("trace_cache_misses_total",
                              "traces synthesised on a cache miss")
    key = _trace_cache_key(profile, seed)
    with _TRACE_CACHE_LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is not None:
            _TRACE_CACHE.move_to_end(key)
            hits.inc()
            return trace

    store = active_store()
    if store is not None:
        shared = store.get(store_key(profile, seed))
        if shared is not None:
            hits.inc()
            return _cache_put(key, shared)

    misses.inc()
    trace = generate_trace(profile, seed=seed)
    if store is not None:
        trace = store.publish(store_key(profile, seed), trace)
    return _cache_put(key, trace)


def clear_trace_cache() -> None:
    """Drop every cached trace (tests and memory-sensitive callers)."""
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()


def trace_cache_info() -> Dict[str, int]:
    """Current size and capacity of this process's trace cache."""
    with _TRACE_CACHE_LOCK:
        return {"entries": len(_TRACE_CACHE),
                "max_entries": TRACE_CACHE_MAX_ENTRIES}
