"""Recording traces from real computations (the QEMU-plugin equivalent).

Section 5.1's data collection instruments QEMU to log every faultable
instruction a real program executes.  The same instrument for this
repository: programs written against :class:`InstructionRecorder`
perform *actual* computation (through the functional emulation layer)
while the recorder counts retired instructions and logs each faultable
execution — producing a :class:`~repro.workloads.trace.FaultableTrace`
whose structure comes from the computation itself rather than from a
statistical profile.

See :mod:`repro.workloads.programs` for recorded programs (AES-CTR,
AES-GCM-style records, a TLS-server loop).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.emulation.dispatch import reference_result
from repro.emulation.vector import Vec128
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.workloads.trace import FaultableTrace


class InstructionRecorder:
    """Execution environment that records a faultable-instruction trace.

    Args:
        name: name of the resulting trace.
        ipc: IPC attributed to the recorded program.

    The recorder models the dynamic instruction stream with two calls:
    :meth:`retire` advances the stream by non-faultable instructions
    (loop control, loads, stores, protocol logic), and :meth:`execute`
    performs one faultable instruction *functionally* (returning its
    real result) while logging its stream position.
    """

    def __init__(self, name: str, ipc: float = 1.5) -> None:
        if ipc <= 0:
            raise ValueError("IPC must be positive")
        self.name = name
        self.ipc = ipc
        self._position = 0
        self._events: List[Tuple[int, Opcode]] = []
        self._finished = False

    @property
    def position(self) -> int:
        """Retired instructions so far."""
        return self._position

    @property
    def n_events(self) -> int:
        return len(self._events)

    def retire(self, count: int) -> None:
        """Advance the stream by *count* non-faultable instructions."""
        if count < 0:
            raise ValueError("cannot retire a negative instruction count")
        self._check_open()
        self._position += count

    def execute(self, opcode: Opcode, *operands: Vec128,
                imm8: int = 0) -> Vec128:
        """Execute one trapped-class instruction; log it; return the
        architecturally correct result."""
        self._check_open()
        if opcode not in TRAPPED_OPCODES:
            raise ValueError(
                f"{opcode.name} is not a trapped instruction; use retire() "
                "for ordinary work and imul() for multiplies")
        result = reference_result(opcode, operands, imm8)
        self._events.append((self._position, opcode))
        self._position += 1
        return result

    def imul(self, a: int, b: int, bits: int = 64) -> int:
        """A multiply: counted in the stream but never logged — on SUIT
        hardware IMUL is statically hardened, not trapped."""
        self._check_open()
        self._position += 1
        return (a * b) & ((1 << bits) - 1)

    def finish(self, trailing_instructions: int = 0) -> FaultableTrace:
        """Seal the recording and build the trace."""
        self._check_open()
        self.retire(trailing_instructions)
        self._finished = True
        if self._events:
            indices = np.array([p for p, _ in self._events], dtype=np.int64)
            table = tuple(dict.fromkeys(op for _, op in self._events))
            code_of = {op: i for i, op in enumerate(table)}
            codes = np.array([code_of[op] for _, op in self._events],
                             dtype=np.uint8)
        else:
            indices = np.array([], dtype=np.int64)
            codes = np.array([], dtype=np.uint8)
            table = (Opcode.VOR,)
        return FaultableTrace(
            name=self.name,
            n_instructions=max(self._position, 1),
            ipc=self.ipc,
            indices=indices,
            opcodes=codes,
            opcode_table=table,
        )

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("recorder already finished")
