"""Faultable-instruction traces.

A :class:`FaultableTrace` is the event-level view the QEMU plugin of
section 5.1 produces: the total retired-instruction count of a run, the
average IPC (used to convert instruction counts to cycles, as the paper
does with the INSTRUCTIONS_RETIRED counter), and one event per executed
faultable instruction — its instruction index and opcode.

Only events are stored (numpy arrays), so traces covering billions of
instructions stay small and the event-based simulator stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.isa.opcodes import Opcode


@dataclass
class FaultableTrace:
    """Event trace of faultable-instruction executions.

    Attributes:
        name: workload name (links back to its profile).
        n_instructions: total retired instructions of the run.
        ipc: average instructions per cycle (for time conversion).
        indices: sorted instruction indices of faultable executions
            (int64, each in ``[0, n_instructions)``).
        opcodes: per-event opcode, encoded as indices into
            ``opcode_table`` (uint8).
        opcode_table: the opcodes appearing in this trace.
    """

    name: str
    n_instructions: int
    ipc: float
    indices: np.ndarray
    opcodes: np.ndarray
    opcode_table: Tuple[Opcode, ...]
    _gaps: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _emul_cycles: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.opcodes = np.asarray(self.opcodes, dtype=np.uint8)
        if self.n_instructions <= 0:
            raise ValueError("trace must cover a positive instruction count")
        if self.ipc <= 0:
            raise ValueError("IPC must be positive")
        if self.indices.shape != self.opcodes.shape:
            raise ValueError("indices and opcodes must have equal length")
        if self.indices.size:
            if self.indices[0] < 0 or self.indices[-1] >= self.n_instructions:
                raise ValueError("event indices outside the instruction range")
            if np.any(np.diff(self.indices) < 0):
                raise ValueError("event indices must be sorted")
        if self.opcodes.size and self.opcodes.max() >= len(self.opcode_table):
            raise ValueError("opcode code outside opcode_table")

    @property
    def n_events(self) -> int:
        """Number of faultable-instruction executions."""
        return int(self.indices.size)

    @property
    def faultable_rate(self) -> float:
        """Faultable instructions per retired instruction."""
        return self.n_events / self.n_instructions

    def gaps(self) -> np.ndarray:
        """Instruction gaps: ``indices[0]`` then successive differences.

        Cached; the event simulator and the gap analyses share it.
        """
        if self._gaps is None:
            if self.indices.size == 0:
                self._gaps = np.empty(0, dtype=np.int64)
            else:
                self._gaps = np.diff(self.indices, prepend=np.int64(0))
        return self._gaps

    def emulation_cycle_table(self) -> np.ndarray:
        """Emulation cycle cost per ``opcode_table`` entry (int64).

        Cached; index with :attr:`opcodes` to price every event.  Raises
        ``KeyError`` if the table contains an opcode without an
        emulation routine, exactly like pricing it on the fly would.
        """
        if self._emul_cycles is None:
            # Imported here: workloads stays importable without pulling
            # the emulation package in at module load.
            from repro.emulation.dispatch import emulation_cycles
            self._emul_cycles = np.array(
                [emulation_cycles(op) for op in self.opcode_table])
        return self._emul_cycles

    def event_opcode(self, event: int) -> Opcode:
        """Decoded opcode of event number *event*."""
        return self.opcode_table[int(self.opcodes[event])]

    def duration_s(self, frequency: float) -> float:
        """Wall-clock duration of the run at *frequency* (no SUIT)."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.n_instructions / (self.ipc * frequency)

    def slice_events(self, start_instr: int, stop_instr: int) -> "FaultableTrace":
        """Sub-trace covering ``[start_instr, stop_instr)``, re-based to 0."""
        if not 0 <= start_instr < stop_instr <= self.n_instructions:
            raise ValueError("invalid slice bounds")
        lo = int(np.searchsorted(self.indices, start_instr, side="left"))
        hi = int(np.searchsorted(self.indices, stop_instr, side="left"))
        return FaultableTrace(
            name=f"{self.name}[{start_instr}:{stop_instr}]",
            n_instructions=stop_instr - start_instr,
            ipc=self.ipc,
            indices=self.indices[lo:hi] - start_instr,
            opcodes=self.opcodes[lo:hi].copy(),
            opcode_table=self.opcode_table,
        )

    def save(self, path: Union[str, Path]) -> None:
        """Persist to a ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            n_instructions=np.array(self.n_instructions, dtype=np.int64),
            ipc=np.array(self.ipc),
            indices=self.indices,
            opcodes=self.opcodes,
            opcode_table=np.array([op.value for op in self.opcode_table]),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultableTrace":
        """Load a trace written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                name=str(data["name"]),
                n_instructions=int(data["n_instructions"]),
                ipc=float(data["ipc"]),
                indices=data["indices"],
                opcodes=data["opcodes"],
                opcode_table=tuple(Opcode(v) for v in data["opcode_table"]),
            )
