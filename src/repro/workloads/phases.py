"""Phase-structured workloads.

Real programs move through phases with different faultable-instruction
behaviour (a build system alternating compile and link, a server
alternating crypto-heavy peaks and idle maintenance).  A
:class:`PhasedWorkload` concatenates per-phase profiles into one trace
while remembering the boundaries, so phase-aware policies (section 6.8's
dynamic strategy choice) can re-decide at each transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


@dataclass(frozen=True)
class Phase:
    """One workload phase.

    Attributes:
        profile: the phase's statistical description (its
            ``n_instructions`` is the phase length).
    """

    profile: WorkloadProfile

    @property
    def n_instructions(self) -> int:
        return self.profile.n_instructions


@dataclass
class PhasedWorkload:
    """A sequence of phases forming one run.

    Attributes:
        name: workload name.
        phases: the phases in execution order.
    """

    name: str
    phases: List[Phase]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phased workload needs at least one phase")

    @property
    def n_instructions(self) -> int:
        return sum(p.n_instructions for p in self.phases)

    def boundaries(self) -> List[int]:
        """Instruction indices where each phase starts (first is 0)."""
        starts = [0]
        for phase in self.phases[:-1]:
            starts.append(starts[-1] + phase.n_instructions)
        return starts

    def concatenated_trace(self, seed: int = 0) -> FaultableTrace:
        """One trace covering all phases back to back."""
        offset = 0
        parts_idx: List[np.ndarray] = []
        parts_ops: List[np.ndarray] = []
        table: List = []
        code_of = {}
        mean_ipc = 0.0
        for k, phase in enumerate(self.phases):
            trace = generate_trace(phase.profile, seed=seed + k)
            ops = np.empty(trace.n_events, dtype=np.uint8)
            for local, op in enumerate(trace.opcode_table):
                if op not in code_of:
                    code_of[op] = len(table)
                    table.append(op)
                ops[trace.opcodes == local] = code_of[op]
            parts_idx.append(trace.indices + offset)
            parts_ops.append(ops)
            mean_ipc += phase.profile.ipc * phase.n_instructions
            offset += phase.n_instructions
        return FaultableTrace(
            name=self.name,
            n_instructions=self.n_instructions,
            ipc=mean_ipc / self.n_instructions,
            indices=np.concatenate(parts_idx),
            opcodes=np.concatenate(parts_ops),
            opcode_table=tuple(table),
        )

    def phase_traces(self, seed: int = 0) -> List[Tuple[Phase, FaultableTrace]]:
        """Per-phase traces (for phase-aware policies)."""
        return [(phase, generate_trace(phase.profile, seed=seed + k))
                for k, phase in enumerate(self.phases)]
