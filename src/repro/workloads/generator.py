"""Trace synthesis from workload profiles.

Lays out the dense episodes and sparse events a profile describes into a
concrete :class:`~repro.workloads.trace.FaultableTrace`.  The episode
budget is derived from the profile's calibrated efficient-curve occupancy
target: time on the conservative curve is spent either *inside* an
episode or waiting out the deadline after one, so

    dense_instructions ~ (1 - occupancy) * n  -  episodes * deadline_instr

with the deadline converted to instructions at the reference
configuration the profiles were calibrated for (CPU C, 30 us deadline,
3 GHz).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.opcodes import Opcode
from repro.workloads.gaps import burst_positions, interleave_sparse_events
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

#: Reference configuration the occupancy targets are calibrated against.
REFERENCE_DEADLINE_S: float = 30e-6
REFERENCE_FREQUENCY_HZ: float = 3.0e9
#: Per-episode switching overhead (exception, frequency changes and the
#: Cf-phase slowdown) at the reference configuration, in seconds.
REFERENCE_EPISODE_OVERHEAD_S: float = 60e-6


def generate_trace(profile: WorkloadProfile,
                   rng: Optional[np.random.Generator] = None,
                   seed: int = 0) -> FaultableTrace:
    """Synthesise the faultable-instruction trace of *profile*.

    Args:
        profile: the workload description.
        rng: randomness source; if None, a fresh generator seeded with
            *seed* (plus a stable hash of the profile name) is used so
            every workload gets a distinct but reproducible trace.
    """
    if rng is None:
        name_salt = sum(ord(c) for c in profile.name)
        rng = np.random.default_rng(seed * 100003 + name_salt)

    n = profile.n_instructions
    m = profile.n_episodes
    instr_per_s = profile.ipc * REFERENCE_FREQUENCY_HZ
    deadline_instr = (REFERENCE_DEADLINE_S + REFERENCE_EPISODE_OVERHEAD_S) * instr_per_s

    conservative_budget = (1.0 - profile.efficient_occupancy) * n
    dense_total = conservative_budget - m * deadline_instr
    # Keep at least a sliver of dense time so the trace has its episodes.
    dense_total = max(dense_total, 0.05 * conservative_budget)
    episode_len = max(int(dense_total / m), int(2 * profile.dense_gap))

    sparse_total = n - episode_len * m
    if sparse_total <= 0:
        raise ValueError(
            f"profile {profile.name}: episodes do not fit the trace; "
            "reduce n_episodes or raise efficient_occupancy")

    # Episode start positions: sparse segments with lognormal weights.
    weights = rng.lognormal(mean=0.0, sigma=0.6, size=m + 1)
    seg = weights / weights.sum() * sparse_total
    starts = np.cumsum(seg)[:m] + np.arange(m) * episode_len
    starts = starts.astype(np.int64)

    chunks = [
        burst_positions(rng, int(s), episode_len, profile.dense_gap)
        for s in starts
    ]
    chunks.append(interleave_sparse_events(rng, profile.sparse_events, 0, n))
    indices = np.sort(np.concatenate(chunks))
    indices = indices[(indices >= 0) & (indices < n)]

    mix = profile.normalized_mix()
    table = tuple(mix)
    codes = rng.choice(len(table), size=indices.size,
                       p=[mix[op] for op in table]).astype(np.uint8)
    return FaultableTrace(
        name=profile.name,
        n_instructions=n,
        ipc=profile.ipc,
        indices=indices,
        opcodes=codes,
        opcode_table=table,
    )


def single_burst_trace(name: str, n_instructions: int, ipc: float,
                       burst_start: int, burst_length: int, dense_gap: float,
                       opcode: Opcode = Opcode.AESENC,
                       seed: int = 0) -> FaultableTrace:
    """A minimal trace with exactly one dense burst (Figs 5 and 6).

    Useful for illustrating a single trap/curve-switch episode.
    """
    rng = np.random.default_rng(seed)
    if not 0 <= burst_start < burst_start + burst_length <= n_instructions:
        raise ValueError("burst does not fit the trace")
    indices = burst_positions(rng, burst_start, burst_length, dense_gap)
    return FaultableTrace(
        name=name,
        n_instructions=n_instructions,
        ipc=ipc,
        indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(opcode,),
    )
