"""Network workload profiles: Nginx and VLC (paper sections 5.1, 6.2).

Nginx serves 100 kB files over HTTPS under the wrk load generator: every
request triggers a dense burst of AES-NI (AESENC) and carry-less-multiply
(VPCLMULQDQ, for GHASH) instructions while the response is encrypted,
followed by protocol and filesystem work without faultable instructions.
VLC streams a 1080p video over HTTPS: the same crypto bursts, driven by
segment downloads, at a lower duty cycle (Fig 7).

These are the workloads where trap density decides everything: curve
switching handles the bursts gracefully while per-instruction emulation
is catastrophic (Table 6: -98 % performance for Nginx under emulation).
"""

from __future__ import annotations

from typing import List

from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile

_CRYPTO_MIX = {
    Opcode.AESENC: 0.78,
    Opcode.VPCLMULQDQ: 0.16,
    Opcode.VXOR: 0.06,
}

#: Nginx serving 100 kB files over HTTPS (wrk, keep-alive connections).
NGINX_PROFILE = WorkloadProfile(
    name="nginx",
    suite="network",
    n_instructions=600_000_000,
    ipc=1.5,
    efficient_occupancy=0.36,
    n_episodes=24,  # sustained load phases (wrk hammers continuously)
    dense_gap=45.0,  # ~1 crypto instruction per 45 during bulk encryption
    sparse_events=40,
    imul_density=0.0008,
    imul_chain_fraction=0.10,
    # Crypto/SIMD-heavy server code suffers heavily without SIMD.
    nosimd_overhead={"intel": -0.06, "amd": -0.07},
    opcode_mix=_CRYPTO_MIX,
)

#: VLC streaming a 1080p HTTPS video (client side).
VLC_PROFILE = WorkloadProfile(
    name="vlc",
    suite="network",
    n_instructions=600_000_000,
    ipc=1.5,
    efficient_occupancy=0.34,
    n_episodes=16,  # segment downloads
    dense_gap=140.0,
    sparse_events=60,
    imul_density=0.0010,
    imul_chain_fraction=0.12,
    nosimd_overhead={"intel": -0.05, "amd": -0.06},
    opcode_mix=_CRYPTO_MIX,
)


def network_profiles() -> List[WorkloadProfile]:
    """Both network workload profiles."""
    return [NGINX_PROFILE, VLC_PROFILE]
