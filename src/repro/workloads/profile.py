"""Workload profile: everything the evaluation knows about one workload.

A profile captures, per workload, the statistics the paper extracts from
its QEMU traces and SPEC runs: how faultable instructions cluster
(episodes and in-episode density), how often IMUL occurs and how
chained it is (section 6.1), and the measured no-SIMD compile overhead
(Table 4, per vendor).  Trace synthesis (:mod:`repro.workloads.generator`)
turns a profile into a concrete :class:`~repro.workloads.trace.FaultableTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one workload.

    Attributes:
        name: workload name ("502.gcc", "nginx", ...).
        suite: "SPECint", "SPECfp" or "network".
        n_instructions: retired instructions of the (scaled) run.
        ipc: average instructions per cycle.
        efficient_occupancy: calibration target — fraction of run time on
            the efficient curve under the reference fV configuration
            (CPU C, 30 us deadline).  Drives the episode layout.
        n_episodes: number of dense faultable episodes in the run.
        dense_gap: mean instructions between faultable executions inside
            an episode.
        sparse_events: isolated faultable executions outside episodes.
        imul_density: IMUL instructions per retired instruction.
        imul_chain_fraction: fraction of IMULs whose result feeds the next
            IMUL (dependent multiply chains; drives latency exposure).
        nosimd_overhead: per-vendor score impact of compiling without
            SSE/AVX (fraction; negative = slower without SIMD, Table 4).
        in_enclave: whether the workload runs inside a trusted execution
            environment.  SUIT cannot emulate enclave instructions (the
            kernel cannot inject code into the enclave, section 4.3);
            only curve switching is available.
        opcode_mix: relative weights of the trapped opcodes appearing in
            the faultable events.
    """

    name: str
    suite: str
    n_instructions: int
    ipc: float
    efficient_occupancy: float
    n_episodes: int
    dense_gap: float
    sparse_events: int = 10
    imul_density: float = 0.0007
    imul_chain_fraction: float = 0.10
    nosimd_overhead: Mapping[str, float] = field(
        default_factory=lambda: {"intel": -0.01, "amd": -0.015})
    opcode_mix: Mapping[Opcode, float] = field(
        default_factory=lambda: {Opcode.VOR: 0.4, Opcode.VXOR: 0.3,
                                 Opcode.VPADDQ: 0.2, Opcode.VPCMP: 0.1})
    in_enclave: bool = False

    def __post_init__(self) -> None:
        if self.n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        if self.ipc <= 0:
            raise ValueError("ipc must be positive")
        if not 0.0 <= self.efficient_occupancy <= 1.0:
            raise ValueError("efficient_occupancy must be a fraction")
        if self.n_episodes < 1:
            raise ValueError("need at least one episode")
        if self.dense_gap < 1:
            raise ValueError("dense_gap must be at least 1 instruction")
        if not 0.0 <= self.imul_density < 1.0:
            raise ValueError("imul_density must be a fraction")
        if not 0.0 <= self.imul_chain_fraction <= 1.0:
            raise ValueError("imul_chain_fraction must be a fraction")
        for op in self.opcode_mix:
            if op not in TRAPPED_OPCODES:
                raise ValueError(f"{op} is not a trapped opcode")
        if self.opcode_mix and sum(self.opcode_mix.values()) <= 0:
            raise ValueError("opcode_mix weights must sum to a positive value")

    def nosimd_for(self, vendor: str) -> float:
        """No-SIMD score impact for *vendor* ("intel"/"amd")."""
        try:
            return self.nosimd_overhead[vendor]
        except KeyError:
            raise KeyError(f"no no-SIMD overhead recorded for vendor {vendor!r}")

    @property
    def is_spec(self) -> bool:
        return self.suite in ("SPECint", "SPECfp")

    def normalized_mix(self) -> Dict[Opcode, float]:
        """Opcode mix normalised to sum 1."""
        total = sum(self.opcode_mix.values())
        return {op: w / total for op, w in self.opcode_mix.items()}
