"""Zero-copy shared trace store over POSIX shared memory.

Multi-million-event traces are the largest objects in the system, and
both fan-out tiers used to duplicate them per process: every
``ExperimentEngine --jobs`` worker and every ``repro.service`` shard
re-synthesised (or would have to unpickle) its own private copy of the
same ``FaultableTrace``.  This module puts the trace arrays —
``indices``, ``gaps`` and ``opcodes``, laid out back-to-back in one
``multiprocessing.shared_memory`` segment per trace — behind a small
on-disk manifest, so cooperating processes **attach read-only views**
instead of copying:

* The *owner* (engine run or service) calls :meth:`SharedTraceStore.create`,
  then :meth:`~SharedTraceStore.activate` to export the store location
  through the ``REPRO_TRACE_STORE`` environment variable; worker
  processes inherit it and attach lazily via :func:`active_store`.
* Any process may :meth:`~SharedTraceStore.publish` a trace (first
  publisher wins, serialised by an advisory file lock); everyone else
  gets NumPy views of the same physical pages via
  :meth:`~SharedTraceStore.get`.  Views are marked non-writeable.
* Lifecycle is refcounted at two levels: each process holds its
  segment handles open for as long as its store object lives (the OS
  keeps the pages alive while *any* handle is open), and the owner
  unlinks every published segment on :meth:`~SharedTraceStore.cleanup`
  — called explicitly on drain and, as a crash net, from ``atexit``.
  Publishing workers hand ownership to the store owner: segments are
  explicitly unregistered from ``multiprocessing``'s resource tracker
  so a worker's death never unlinks pages other processes still map.

The tiny derived per-trace tables (the emulation-cycle table) travel in
the manifest itself; the compiled block-maximum index of
``repro.core.batchsim`` stays per-process (it is a few kilobytes).

Everything here degrades gracefully: if shared memory or the manifest
directory is unavailable the callers fall back to private traces, and
the ``trace_store_errors_total`` counter records it.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.isa.opcodes import Opcode
from repro.obs.registry import get_registry
from repro.testkit.chaos import inject
from repro.workloads.trace import FaultableTrace

try:  # advisory locking: POSIX only, and optional (worst case: a
    import fcntl  # racing publisher wastes one duplicate segment).
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Environment variable carrying the store root to worker processes.
ENV_VAR = "REPRO_TRACE_STORE"

#: Owner-liveness marker file inside a store directory (hidden so the
#: ``*.json`` manifest globs never see it).
OWNER_MARKER = ".owner"

#: Segment handles whose mappings could not be handed off to their
#: surviving views (unexpected SharedMemory internals): held forever so
#: their __del__ never fires mid-use; the OS reclaims them at exit.
_PARKED: list = []


def _park(shm: shared_memory.SharedMemory) -> None:
    """Disarm a handle whose buffer is still exported to live views.

    The mapping's lifetime transfers to the views: the mmap object
    stays referenced through their memoryview chain and is reclaimed
    by refcount once the last view dies, while the SharedMemory
    object's own close()/__del__ becomes a no-op (otherwise it would
    raise BufferError noise at arbitrary GC points).
    """
    try:
        if shm._fd >= 0:  # the fd is not needed once mapped
            os.close(shm._fd)
            shm._fd = -1
        shm._buf = None
        shm._mmap = None
    except (AttributeError, OSError):  # pragma: no cover - internals moved
        _PARKED.append(shm)

_MANIFEST_VERSION = 1


def _unregister(name: str) -> None:
    """Detach *name* from the multiprocessing resource tracker.

    The tracker unlinks every segment a process registered when that
    process exits; with many processes sharing one segment that is
    exactly wrong — lifecycle belongs to the store owner alone.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class SharedTraceStore:
    """A directory of trace manifests plus one shm segment per trace.

    Args:
        root: manifest directory (created by :meth:`create`).
        owner: whether this instance is responsible for unlinking the
            segments at the end of the run.
    """

    def __init__(self, root: Path, owner: bool = False) -> None:
        self.root = Path(root)
        self.owner = owner
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._traces: Dict[str, FaultableTrace] = {}
        self._refcounts: Dict[str, int] = {}
        self._closed = False
        if owner:
            atexit.register(self.cleanup)

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, tag: str = "traces") -> "SharedTraceStore":
        """Create an owning store under a fresh temporary directory.

        Also garbage-collects leftover stores whose owner process died
        without running :meth:`cleanup` (see :func:`gc_stale_stores`),
        so crashed runs cannot leak shm segments indefinitely.
        """
        gc_stale_stores()
        root = Path(tempfile.mkdtemp(prefix=f"repro-{tag}-"))
        store = cls(root, owner=True)
        # Liveness marker: lets the *next* run's gc_stale_stores tell a
        # crashed owner's leftovers apart from a store still in use.
        try:
            (root / OWNER_MARKER).write_text(
                json.dumps({"pid": os.getpid(), "tag": tag}))
        except OSError:  # pragma: no cover - tmpdir raced away
            pass
        return store

    def activate(self) -> None:
        """Export this store to child processes via ``REPRO_TRACE_STORE``."""
        os.environ[ENV_VAR] = str(self.root)
        _reset_active_cache()

    def deactivate(self) -> None:
        """Stop exporting this store to new child processes."""
        if os.environ.get(ENV_VAR) == str(self.root):
            del os.environ[ENV_VAR]
        _reset_active_cache()

    # -- publishing / attaching ----------------------------------------

    @staticmethod
    def _digest(key: str) -> str:
        return hashlib.sha256(key.encode()).hexdigest()[:24]

    def _meta_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def _pending_path(self, digest: str) -> Path:
        return self.root / f"{digest}.pending"

    @contextmanager
    def _lock(self) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.root / ".lock"
        with open(lock_path, "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def contains(self, key: str) -> bool:
        """Whether a trace was published under *key*."""
        return self._meta_path(self._digest(key)).exists()

    def publish(self, key: str, trace: FaultableTrace) -> FaultableTrace:
        """Publish *trace* under *key*; return the shared-memory view.

        First publisher wins: when another process already published
        this key, its copy is attached and returned instead.  On any
        shared-memory failure the private *trace* is returned unshared.
        """
        registry = get_registry()
        digest = self._digest(key)
        try:
            inject("tracestore.publish", key=key)
            with self._lock():
                if not self._meta_path(digest).exists():
                    _reap_pending(self._pending_path(digest))
                    self._write_segment(key, digest, trace)
                    registry.counter(
                        "trace_store_publish_total",
                        "traces published to the shared store").inc()
        except OSError:
            registry.counter("trace_store_errors_total",
                             "shared trace store failures").inc()
            return trace
        shared = self.get(key)
        return shared if shared is not None else trace

    def _write_segment(self, key: str, digest: str,
                       trace: FaultableTrace) -> None:
        indices = np.ascontiguousarray(trace.indices, dtype=np.int64)
        gaps = np.ascontiguousarray(trace.gaps(), dtype=np.int64)
        opcodes = np.ascontiguousarray(trace.opcodes, dtype=np.uint8)
        n = int(indices.size)
        total = indices.nbytes + gaps.nbytes + opcodes.nbytes
        shm_name = f"repro_{digest[:12]}_{os.getpid()}"
        # Crash-recovery marker: names the segment *before* it exists,
        # and survives a publisher dying anywhere between segment
        # creation and manifest publish.  _reap_pending / cleanup /
        # gc_stale_stores use it to unlink the orphan.
        pending = self._pending_path(digest)
        pending.write_text(json.dumps({"shm": shm_name,
                                       "pid": os.getpid()}))
        shm = shared_memory.SharedMemory(name=shm_name, create=True,
                                         size=max(total, 1))
        # Ownership belongs to the store owner, not whichever worker
        # happened to publish first (see _unregister).
        _unregister(shm.name)
        buf = shm.buf
        buf[:indices.nbytes] = indices.tobytes()
        off = indices.nbytes
        buf[off:off + gaps.nbytes] = gaps.tobytes()
        off += gaps.nbytes
        buf[off:off + opcodes.nbytes] = opcodes.tobytes()
        self._segments[digest] = shm

        try:
            emul = [int(c) for c in trace.emulation_cycle_table()]
        except KeyError:
            emul = None  # opcode without an emulation routine
        meta = {
            "version": _MANIFEST_VERSION,
            "key": key,
            "shm": shm.name,
            "name": trace.name,
            "n_instructions": int(trace.n_instructions),
            "ipc": float(trace.ipc),
            "n_events": n,
            "opcode_table": [op.value for op in trace.opcode_table],
            "emul_cycles": emul,
        }
        # The canonical mid-publish crash window: segment exists, the
        # manifest does not.  A "crash" fault here is exactly the
        # publisher death the .pending marker recovers from.
        inject("tracestore.segment", shm=shm_name, digest=digest)
        tmp = self._meta_path(digest).with_suffix(".tmp")
        tmp.write_text(json.dumps(meta))
        os.replace(tmp, self._meta_path(digest))
        try:
            pending.unlink()
        except OSError:  # pragma: no cover - marker raced away
            pass

    def get(self, key: str) -> Optional[FaultableTrace]:
        """Attach the trace published under *key*, or None.

        The returned trace's arrays are read-only views of the shared
        pages; repeated calls in one process return the same object.
        """
        digest = self._digest(key)
        cached = self._traces.get(digest)
        if cached is not None:
            self._refcounts[digest] = self._refcounts.get(digest, 0) + 1
            return cached
        meta_path = self._meta_path(digest)
        registry = get_registry()
        try:
            inject("tracestore.attach", path=meta_path)
            meta = json.loads(meta_path.read_text())
            shm_name = str(meta["shm"])
            n = int(meta["n_events"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, stale or corrupt manifest: a miss, never a crash.
            return None
        try:
            inject("tracestore.shm", shm=shm_name)
            shm = self._segments.get(digest)
            if shm is None:
                shm = shared_memory.SharedMemory(name=shm_name)
                _unregister(shm.name)
                self._segments[digest] = shm
        except OSError:
            registry.counter("trace_store_errors_total",
                             "shared trace store failures").inc()
            return None
        try:
            indices = np.frombuffer(shm.buf, dtype=np.int64, count=n)
            gaps = np.frombuffer(shm.buf, dtype=np.int64, count=n,
                                 offset=indices.nbytes)
            opcodes = np.frombuffer(shm.buf, dtype=np.uint8, count=n,
                                    offset=2 * indices.nbytes)
        except ValueError:
            # Manifest/segment mismatch (stale manifest naming a
            # smaller segment): refuse the attach rather than read
            # garbage.
            registry.counter("trace_store_errors_total",
                             "shared trace store failures").inc()
            return None
        for arr in (indices, gaps, opcodes):
            arr.flags.writeable = False
        trace = FaultableTrace(
            name=str(meta["name"]),
            n_instructions=int(meta["n_instructions"]),
            ipc=float(meta["ipc"]),
            indices=indices,
            opcodes=opcodes,
            opcode_table=tuple(Opcode(v) for v in meta["opcode_table"]),
        )
        trace._gaps = gaps
        if meta.get("emul_cycles") is not None:
            trace._emul_cycles = np.array(meta["emul_cycles"])
        self._traces[digest] = trace
        self._refcounts[digest] = self._refcounts.get(digest, 0) + 1
        registry.counter("trace_store_attach_hits_total",
                         "traces attached from the shared store").inc()
        return trace

    def release(self, key: str) -> None:
        """Drop one reference to *key*; the last release in a process
        closes its mapping (the segment survives until the owner
        unlinks it)."""
        digest = self._digest(key)
        count = self._refcounts.get(digest)
        if count is None:
            return
        if count > 1:
            self._refcounts[digest] = count - 1
            return
        self._refcounts.pop(digest, None)
        self._traces.pop(digest, None)
        shm = self._segments.pop(digest, None)
        if shm is not None:
            try:
                shm.close()
            except (OSError, BufferError):  # views still alive
                _park(shm)

    # -- lifecycle -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Published / attached segment counts for this process."""
        published = len(list(self.root.glob("*.json"))) \
            if self.root.is_dir() else 0
        return {"published": published,
                "attached": len(self._segments),
                "refcounts": sum(self._refcounts.values())}

    def close(self) -> None:
        """Close every mapping this process holds (keeps segments
        alive for other processes)."""
        self._traces.clear()
        self._refcounts.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except (OSError, BufferError):  # views still alive
                _park(shm)
        self._segments.clear()

    def cleanup(self) -> None:
        """Owner teardown: close mappings, unlink every published
        segment and remove the manifest directory.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.close()
        self.deactivate()
        if not self.owner:
            return
        _destroy_store_dir(self.root)

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


# -- crash recovery -----------------------------------------------------

def _unlink_segment(name: str) -> bool:
    """Unlink the shm segment *name*; True when it existed."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return False
    try:
        shm.unlink()
    except OSError:  # pragma: no cover - concurrent unlink
        pass
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover
        pass
    return True


def _reap_pending(pending: Path) -> None:
    """Recover from a publisher that died mid-publish.

    A ``.pending`` marker without its manifest means the segment (if it
    got as far as existing) is an orphan no manifest will ever name:
    unlink both so the next publisher starts clean.
    """
    try:
        info = json.loads(pending.read_text())
        shm_name = str(info["shm"])
    except (OSError, ValueError, KeyError, TypeError):
        return
    _unlink_segment(shm_name)
    try:
        pending.unlink()
    except OSError:  # pragma: no cover - raced with another reaper
        pass


def _destroy_store_dir(root: Path) -> None:
    """Unlink every segment a store directory names, then remove it.

    Shared by owner :meth:`SharedTraceStore.cleanup` and
    :func:`gc_stale_stores`; tolerates every partial-state shape a
    crash can leave (manifests, pending markers, both, neither).
    """
    if not root.is_dir():
        return
    for meta_path in root.glob("*.json"):
        try:
            meta = json.loads(meta_path.read_text())
            _unlink_segment(str(meta["shm"]))
        except (OSError, ValueError, KeyError, TypeError):
            pass
        try:
            meta_path.unlink()
        except OSError:  # pragma: no cover
            pass
    for pending in root.glob("*.pending"):
        _reap_pending(pending)
    for leftover in (root / ".lock", root / OWNER_MARKER):
        try:
            leftover.unlink()
        except OSError:
            pass
    try:
        root.rmdir()
    except OSError:  # pragma: no cover - non-empty/races
        pass


def gc_stale_stores(tmp_root: Optional[Path] = None) -> int:
    """Remove sibling store directories whose owner process is dead.

    Scans *tmp_root* (default: the system temp directory) for
    ``repro-*`` directories carrying an :data:`OWNER_MARKER` whose
    recorded pid no longer exists, and destroys them — manifests,
    pending markers and the shm segments they name.  Directories
    without a marker, or with a live owner, are left alone.  Returns
    the number of stores collected.
    """
    base = Path(tmp_root) if tmp_root is not None \
        else Path(tempfile.gettempdir())
    collected = 0
    try:
        candidates = list(base.glob("repro-*"))
    except OSError:  # pragma: no cover - tmpdir unreadable
        return 0
    for root in candidates:
        marker = root / OWNER_MARKER
        if not marker.is_file():
            continue
        try:
            pid = int(json.loads(marker.read_text())["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if _pid_alive(pid):
            continue
        _destroy_store_dir(root)
        collected += 1
    if collected:
        get_registry().counter(
            "trace_store_gc_total",
            "stale trace stores collected at startup").inc(collected)
    return collected


def _pid_alive(pid: int) -> bool:
    """Whether a process with *pid* currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover
        return False
    return True


# -- process-wide attachment (workers) ---------------------------------

_active: Optional[SharedTraceStore] = None
_active_root: Optional[str] = None


def _reset_active_cache() -> None:
    global _active, _active_root
    if _active is not None and not _active.owner:
        _active.close()
    _active = None
    _active_root = None


def active_store() -> Optional[SharedTraceStore]:
    """The store exported through ``REPRO_TRACE_STORE``, if any.

    Worker-side entry point: attaches (read/publish, non-owning) to the
    store the parent process activated.  Returns None when no store is
    active or its directory is gone.
    """
    global _active, _active_root
    root = os.environ.get(ENV_VAR)
    if not root:
        if _active is not None:
            _reset_active_cache()
        return None
    if _active is not None and _active_root == root:
        return _active
    _reset_active_cache()
    if not Path(root).is_dir():
        return None
    _active = SharedTraceStore(Path(root), owner=False)
    _active_root = root
    return _active
